//! The x86-64 subset decoder.
//!
//! `decode_one` never panics on arbitrary bytes: every malformed, truncated
//! or out-of-subset sequence is a [`DecodeError`]. The decoder also enforces
//! *canonical form* — after structurally decoding an instruction it
//! re-encodes it and rejects the input unless the bytes match exactly. This
//! single check rules out redundant REX prefixes, oversized displacements
//! and immediates, and alias encodings (e.g. `8B` with mod=11 where the
//! canonical reg-reg mov is `89`), and it makes the fuzz round-trip property
//! `encode(decode(bytes)) == bytes` hold by construction.

use std::fmt;

use crate::encode::encode_to_vec;
use crate::inst::{Alu, Cc, Gpr, Inst, Mem, OpWidth, Rm};

/// A decode failure at a byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// Description of what went wrong.
    pub message: String,
}

impl DecodeError {
    fn new(message: impl Into<String>) -> DecodeError {
        DecodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over the input bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| DecodeError::new("truncated instruction"))?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut buf = [0u8; 4];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(i32::from_le_bytes(buf))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let mut buf = [0u8; 8];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(i64::from_le_bytes(buf))
    }

    fn i16(&mut self) -> Result<i16, DecodeError> {
        let mut buf = [0u8; 2];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(i16::from_le_bytes(buf))
    }
}

/// Decoded ModRM: the reg field plus a register-or-memory r/m operand.
struct ModRm {
    reg: u8,
    rm: Rm,
}

/// Parses ModRM (+ SIB + displacement) using the REX `R`/`X`/`B` bits.
fn parse_modrm(r: &mut Reader<'_>, rex: u8) -> Result<ModRm, DecodeError> {
    let rex_r = (rex >> 2) & 1;
    let rex_x = (rex >> 1) & 1;
    let rex_b = rex & 1;
    let modrm = r.u8()?;
    let mod_bits = modrm >> 6;
    let reg = (modrm >> 3) & 7 | rex_r << 3;
    let rm_bits = modrm & 7;

    if mod_bits == 0b11 {
        return Ok(ModRm {
            reg,
            rm: Rm::Reg(Gpr(rm_bits | rex_b << 3)),
        });
    }

    if mod_bits == 0b00 && rm_bits == 0b101 {
        // RIP-relative.
        let disp = r.i32()?;
        return Ok(ModRm {
            reg,
            rm: Rm::Mem(Mem::Rip { disp }),
        });
    }

    let mem = if rm_bits == 0b100 {
        // SIB byte follows.
        let sib = r.u8()?;
        let ss = sib >> 6;
        let index_bits = (sib >> 3) & 7;
        let base_bits = sib & 7;
        if mod_bits == 0b00 && base_bits == 0b101 {
            return Err(DecodeError::new(
                "SIB with no base register is outside the subset",
            ));
        }
        let base = Gpr(base_bits | rex_b << 3);
        let disp = read_disp(r, mod_bits)?;
        if index_bits == 0b100 && rex_x == 0 {
            // No index: this is how rsp/r12 bases are addressed.
            Mem::Base { base, disp }
        } else {
            Mem::BaseIndex {
                base,
                index: Gpr(index_bits | rex_x << 3),
                scale: 1 << ss,
                disp,
            }
        }
    } else {
        let base = Gpr(rm_bits | rex_b << 3);
        let disp = read_disp(r, mod_bits)?;
        Mem::Base { base, disp }
    };
    Ok(ModRm {
        reg,
        rm: Rm::Mem(mem),
    })
}

fn read_disp(r: &mut Reader<'_>, mod_bits: u8) -> Result<i32, DecodeError> {
    match mod_bits {
        0b00 => Ok(0),
        0b01 => Ok(r.u8()? as i8 as i32),
        0b10 => r.i32(),
        _ => unreachable!("mod=11 handled by caller"),
    }
}

fn expect_reg(rm: Rm, what: &str) -> Result<Gpr, DecodeError> {
    match rm {
        Rm::Reg(r) => Ok(r),
        Rm::Mem(_) => Err(DecodeError::new(format!(
            "{what} requires a register operand"
        ))),
    }
}

fn expect_mem(rm: Rm, what: &str) -> Result<Mem, DecodeError> {
    match rm {
        Rm::Mem(m) => Ok(m),
        Rm::Reg(_) => Err(DecodeError::new(format!(
            "{what} requires a memory operand"
        ))),
    }
}

/// The `83`/`81` immediate group and `01..39` MR group share operation order.
fn alu_from_ext(ext: u8) -> Result<Alu, DecodeError> {
    match ext {
        0 => Ok(Alu::Add),
        1 => Ok(Alu::Or),
        4 => Ok(Alu::And),
        5 => Ok(Alu::Sub),
        6 => Ok(Alu::Xor),
        7 => Ok(Alu::Cmp),
        _ => Err(DecodeError::new(format!(
            "ALU opcode extension /{ext} is outside the subset"
        ))),
    }
}

fn alu_from_mr_opcode(op: u8) -> Option<Alu> {
    match op {
        0x01 => Some(Alu::Add),
        0x09 => Some(Alu::Or),
        0x21 => Some(Alu::And),
        0x29 => Some(Alu::Sub),
        0x31 => Some(Alu::Xor),
        0x39 => Some(Alu::Cmp),
        _ => None,
    }
}

fn alu_from_rm_opcode(op: u8) -> Option<Alu> {
    match op {
        0x03 => Some(Alu::Add),
        0x0b => Some(Alu::Or),
        0x23 => Some(Alu::And),
        0x2b => Some(Alu::Sub),
        0x33 => Some(Alu::Xor),
        0x3b => Some(Alu::Cmp),
        _ => None,
    }
}

fn cc_from_number(n: u8) -> Result<Cc, DecodeError> {
    match n {
        0x2 => Ok(Cc::B),
        0x3 => Ok(Cc::Ae),
        0x4 => Ok(Cc::E),
        0x5 => Ok(Cc::Ne),
        0x6 => Ok(Cc::Be),
        0x7 => Ok(Cc::A),
        0xc => Ok(Cc::L),
        0xd => Ok(Cc::Ge),
        0xe => Ok(Cc::Le),
        0xf => Ok(Cc::G),
        _ => Err(DecodeError::new(format!(
            "condition code {n:#x} is outside the subset"
        ))),
    }
}

/// Decodes one instruction from the front of `bytes`.
///
/// On success returns the instruction and the number of bytes it occupied.
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated input, opcodes outside the subset,
/// and structurally valid but non-canonical encodings (see module docs).
pub fn decode_one(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    let mut r = Reader { bytes, pos: 0 };

    let mut prefix66 = false;
    if r.peek() == Some(0x66) {
        prefix66 = true;
        r.pos += 1;
    }
    let mut rex = 0u8;
    let mut has_rex = false;
    if let Some(b) = r.peek() {
        if b & 0xf0 == 0x40 {
            rex = b & 0x0f;
            has_rex = true;
            r.pos += 1;
        }
    }
    let rex_w = rex & 0x8 != 0;
    let rex_b = rex & 0x1;

    let opcode = r.u8()?;
    let inst = match opcode {
        0x88 => {
            let m = parse_modrm(&mut r, rex)?;
            let mem = expect_mem(m.rm, "byte store")?;
            Inst::MovStore {
                w: OpWidth::B8,
                mem,
                src: Gpr(m.reg),
            }
        }
        0x89 => {
            let m = parse_modrm(&mut r, rex)?;
            if prefix66 {
                let mem = expect_mem(m.rm, "16-bit mov")?;
                Inst::MovStore {
                    w: OpWidth::B16,
                    mem,
                    src: Gpr(m.reg),
                }
            } else {
                let w = if rex_w { OpWidth::B64 } else { OpWidth::B32 };
                match m.rm {
                    Rm::Reg(dst) => Inst::MovRR {
                        w,
                        dst,
                        src: Gpr(m.reg),
                    },
                    Rm::Mem(mem) => Inst::MovStore {
                        w,
                        mem,
                        src: Gpr(m.reg),
                    },
                }
            }
        }
        0x8b => {
            let m = parse_modrm(&mut r, rex)?;
            let mem = expect_mem(m.rm, "mov load (canonical reg-reg mov is 89)")?;
            let w = if rex_w { OpWidth::B64 } else { OpWidth::B32 };
            Inst::MovLoad {
                w,
                dst: Gpr(m.reg),
                mem,
            }
        }
        0x8d => {
            if !rex_w {
                return Err(DecodeError::new("lea without REX.W is outside the subset"));
            }
            let m = parse_modrm(&mut r, rex)?;
            let mem = expect_mem(m.rm, "lea")?;
            Inst::Lea {
                dst: Gpr(m.reg),
                mem,
            }
        }
        0xc6 => {
            let m = parse_modrm(&mut r, rex)?;
            if m.reg & 7 != 0 {
                return Err(DecodeError::new("C6 requires opcode extension /0"));
            }
            let mem = expect_mem(m.rm, "byte store-immediate")?;
            let imm = r.u8()? as i8 as i32;
            Inst::MovStoreImm {
                w: OpWidth::B8,
                mem,
                imm,
            }
        }
        0xc7 => {
            let m = parse_modrm(&mut r, rex)?;
            if m.reg & 7 != 0 {
                return Err(DecodeError::new("C7 requires opcode extension /0"));
            }
            match m.rm {
                Rm::Reg(dst) => {
                    if !rex_w {
                        return Err(DecodeError::new(
                            "32-bit mov-immediate to register is outside the subset",
                        ));
                    }
                    let imm = r.i32()? as i64;
                    Inst::MovRI { dst, imm }
                }
                Rm::Mem(mem) => {
                    if prefix66 {
                        let imm = r.i16()? as i32;
                        Inst::MovStoreImm {
                            w: OpWidth::B16,
                            mem,
                            imm,
                        }
                    } else {
                        let w = if rex_w { OpWidth::B64 } else { OpWidth::B32 };
                        let imm = r.i32()?;
                        Inst::MovStoreImm { w, mem, imm }
                    }
                }
            }
        }
        0xb8..=0xbf => {
            if !rex_w {
                return Err(DecodeError::new(
                    "B8+r without REX.W (32-bit mov-immediate) is outside the subset",
                ));
            }
            let dst = Gpr((opcode - 0xb8) | rex_b << 3);
            let imm = r.i64()?;
            Inst::MovRI { dst, imm }
        }
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 => {
            if !rex_w {
                return Err(DecodeError::new("32-bit ALU forms are outside the subset"));
            }
            let op = alu_from_mr_opcode(opcode).unwrap_or(Alu::Add);
            let m = parse_modrm(&mut r, rex)?;
            let dst = expect_reg(m.rm, "register-register ALU")?;
            Inst::AluRR {
                op,
                dst,
                src: Gpr(m.reg),
            }
        }
        0x03 | 0x0b | 0x23 | 0x2b | 0x33 | 0x3b => {
            if !rex_w {
                return Err(DecodeError::new("32-bit ALU forms are outside the subset"));
            }
            let op = alu_from_rm_opcode(opcode).unwrap_or(Alu::Add);
            let m = parse_modrm(&mut r, rex)?;
            let mem = expect_mem(m.rm, "memory-source ALU (canonical reg-reg is MR form)")?;
            Inst::AluRM {
                op,
                dst: Gpr(m.reg),
                mem,
            }
        }
        0x83 | 0x81 => {
            if !rex_w {
                return Err(DecodeError::new("32-bit ALU forms are outside the subset"));
            }
            let m = parse_modrm(&mut r, rex)?;
            let op = alu_from_ext(m.reg & 7)?;
            let dst = expect_reg(m.rm, "immediate ALU")?;
            let imm = if opcode == 0x83 {
                r.u8()? as i8 as i32
            } else {
                r.i32()?
            };
            Inst::AluRI { op, dst, imm }
        }
        0x69 => {
            if !rex_w {
                return Err(DecodeError::new("32-bit imul is outside the subset"));
            }
            let m = parse_modrm(&mut r, rex)?;
            let src = expect_reg(m.rm, "imul-immediate")?;
            if src != Gpr(m.reg) {
                return Err(DecodeError::new(
                    "three-operand imul with distinct registers is outside the subset",
                ));
            }
            let imm = r.i32()?;
            Inst::AluRI {
                op: Alu::Mul,
                dst: src,
                imm,
            }
        }
        0x85 => {
            if !rex_w {
                return Err(DecodeError::new("32-bit test is outside the subset"));
            }
            let m = parse_modrm(&mut r, rex)?;
            let a = expect_reg(m.rm, "test")?;
            Inst::TestRR { a, b: Gpr(m.reg) }
        }
        0xc1 => {
            if !rex_w {
                return Err(DecodeError::new("32-bit shifts are outside the subset"));
            }
            let m = parse_modrm(&mut r, rex)?;
            let sh = match m.reg & 7 {
                4 => crate::inst::Shift::Shl,
                5 => crate::inst::Shift::Shr,
                ext => {
                    return Err(DecodeError::new(format!(
                        "shift opcode extension /{ext} is outside the subset"
                    )))
                }
            };
            let dst = expect_reg(m.rm, "shift")?;
            let amt = r.u8()?;
            if amt >= 64 {
                return Err(DecodeError::new("shift amount must be 0-63"));
            }
            Inst::ShiftRI { sh, dst, amt }
        }
        0x50..=0x57 => Inst::Push {
            reg: Gpr((opcode - 0x50) | rex_b << 3),
        },
        0x58..=0x5f => Inst::Pop {
            reg: Gpr((opcode - 0x58) | rex_b << 3),
        },
        0xe8 => Inst::Call { rel: r.i32()? },
        0xe9 => Inst::Jmp { rel: r.i32()? },
        0xeb => {
            return Err(DecodeError::new(
                "rel8 jmp is outside the subset; use rel32 (E9)",
            ))
        }
        0x70..=0x7f => {
            return Err(DecodeError::new(
                "rel8 jcc is outside the subset; use rel32 (0F 8x)",
            ))
        }
        0xff => {
            let m = parse_modrm(&mut r, rex)?;
            if m.reg & 7 != 2 {
                return Err(DecodeError::new(
                    "FF group: only /2 (call r/m) is supported",
                ));
            }
            let reg = expect_reg(m.rm, "indirect call")?;
            Inst::CallInd { reg }
        }
        0xc3 => Inst::Ret,
        0x63 => {
            if !rex_w {
                return Err(DecodeError::new(
                    "movsxd without REX.W is outside the subset",
                ));
            }
            let m = parse_modrm(&mut r, rex)?;
            Inst::MovSx {
                from: OpWidth::B32,
                dst: Gpr(m.reg),
                src: m.rm,
            }
        }
        0x0f => {
            let second = r.u8()?;
            match second {
                0xaf => {
                    if !rex_w {
                        return Err(DecodeError::new("32-bit imul is outside the subset"));
                    }
                    let m = parse_modrm(&mut r, rex)?;
                    match m.rm {
                        Rm::Reg(src) => Inst::AluRR {
                            op: Alu::Mul,
                            dst: Gpr(m.reg),
                            src,
                        },
                        Rm::Mem(mem) => Inst::AluRM {
                            op: Alu::Mul,
                            dst: Gpr(m.reg),
                            mem,
                        },
                    }
                }
                0xb6 | 0xb7 => {
                    if !rex_w {
                        return Err(DecodeError::new(
                            "movzx without REX.W is outside the subset",
                        ));
                    }
                    let m = parse_modrm(&mut r, rex)?;
                    Inst::MovZx {
                        from: if second == 0xb6 {
                            OpWidth::B8
                        } else {
                            OpWidth::B16
                        },
                        dst: Gpr(m.reg),
                        src: m.rm,
                    }
                }
                0xbe | 0xbf => {
                    if !rex_w {
                        return Err(DecodeError::new(
                            "movsx without REX.W is outside the subset",
                        ));
                    }
                    let m = parse_modrm(&mut r, rex)?;
                    Inst::MovSx {
                        from: if second == 0xbe {
                            OpWidth::B8
                        } else {
                            OpWidth::B16
                        },
                        dst: Gpr(m.reg),
                        src: m.rm,
                    }
                }
                0x80..=0x8f => {
                    let cc = cc_from_number(second & 0x0f)?;
                    Inst::Jcc { cc, rel: r.i32()? }
                }
                _ => {
                    return Err(DecodeError::new(format!(
                        "opcode 0F {second:02X} is outside the subset"
                    )))
                }
            }
        }
        _ => {
            return Err(DecodeError::new(format!(
                "opcode {opcode:02X} is outside the subset"
            )))
        }
    };

    let len = r.pos;
    // Canonical-form check: the bytes must be exactly what we would emit.
    let reencoded = encode_to_vec(&inst);
    if reencoded != bytes[..len] {
        return Err(DecodeError::new(format!(
            "non-canonical encoding of `{inst}`"
        )));
    }
    // A REX prefix that survived the byte comparison is canonical by
    // definition; `has_rex` exists so truncation can't hide a dangling REX.
    let _ = has_rex;
    Ok((inst, len))
}

/// Decodes a complete instruction stream; `start` offsets errors for
/// reporting.
///
/// # Errors
///
/// Returns the first [`DecodeError`] with its byte offset prepended.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<(Inst, usize, usize)>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (inst, len) = decode_one(&bytes[pos..])
            .map_err(|e| DecodeError::new(format!("at byte {pos}: {}", e.message)))?;
        out.push((inst, pos, len));
        pos += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_to_vec;
    use crate::inst::Shift;

    fn roundtrip(inst: Inst) {
        let bytes = encode_to_vec(&inst);
        let (decoded, len) = decode_one(&bytes).unwrap_or_else(|e| panic!("{inst}: {e}"));
        assert_eq!(len, bytes.len(), "{inst}");
        assert_eq!(decoded, inst, "{inst}");
    }

    #[test]
    fn encode_decode_roundtrip_across_forms() {
        let mems = [
            Mem::Base {
                base: Gpr::RAX,
                disp: 0,
            },
            Mem::Base {
                base: Gpr::RBP,
                disp: -24,
            },
            Mem::Base {
                base: Gpr::RSP,
                disp: 8,
            },
            Mem::Base {
                base: Gpr::R13,
                disp: 0,
            },
            Mem::Base {
                base: Gpr::R12,
                disp: 400,
            },
            Mem::BaseIndex {
                base: Gpr::RBX,
                index: Gpr::RCX,
                scale: 8,
                disp: 16,
            },
            Mem::BaseIndex {
                base: Gpr::R9,
                index: Gpr::R12,
                scale: 4,
                disp: -4,
            },
            Mem::Rip { disp: 0x1234 },
        ];
        for mem in mems {
            roundtrip(Inst::MovLoad {
                w: OpWidth::B64,
                dst: Gpr::RDX,
                mem,
            });
            roundtrip(Inst::MovStore {
                w: OpWidth::B8,
                mem,
                src: Gpr::RSI,
            });
            roundtrip(Inst::MovStoreImm {
                w: OpWidth::B32,
                mem,
                imm: -7,
            });
            roundtrip(Inst::Lea { dst: Gpr::R15, mem });
            roundtrip(Inst::AluRM {
                op: Alu::Mul,
                dst: Gpr::RAX,
                mem,
            });
            roundtrip(Inst::MovZx {
                from: OpWidth::B16,
                dst: Gpr::RCX,
                src: Rm::Mem(mem),
            });
        }
        for op in [
            Alu::Add,
            Alu::Sub,
            Alu::And,
            Alu::Or,
            Alu::Xor,
            Alu::Cmp,
            Alu::Mul,
        ] {
            roundtrip(Inst::AluRR {
                op,
                dst: Gpr::R11,
                src: Gpr::RDI,
            });
            roundtrip(Inst::AluRI {
                op,
                dst: Gpr::RBX,
                imm: 1000,
            });
            roundtrip(Inst::AluRI {
                op,
                dst: Gpr::RBX,
                imm: -1,
            });
        }
        roundtrip(Inst::MovRI {
            dst: Gpr::R8,
            imm: i64::MAX,
        });
        roundtrip(Inst::MovRI {
            dst: Gpr::R8,
            imm: -1,
        });
        roundtrip(Inst::TestRR {
            a: Gpr::RAX,
            b: Gpr::RAX,
        });
        roundtrip(Inst::ShiftRI {
            sh: Shift::Shl,
            dst: Gpr::RSI,
            amt: 3,
        });
        roundtrip(Inst::ShiftRI {
            sh: Shift::Shr,
            dst: Gpr::R14,
            amt: 63,
        });
        roundtrip(Inst::Push { reg: Gpr::RBP });
        roundtrip(Inst::Pop { reg: Gpr::R15 });
        roundtrip(Inst::Jcc {
            cc: Cc::Le,
            rel: -128,
        });
        roundtrip(Inst::Jmp { rel: 5 });
        roundtrip(Inst::Call { rel: -1000 });
        roundtrip(Inst::CallInd { reg: Gpr::R10 });
        roundtrip(Inst::Ret);
        roundtrip(Inst::MovSx {
            from: OpWidth::B32,
            dst: Gpr::RAX,
            src: Rm::Reg(Gpr::RDI),
        });
        roundtrip(Inst::MovZx {
            from: OpWidth::B8,
            dst: Gpr::RAX,
            src: Rm::Reg(Gpr::RSI),
        });
    }

    #[test]
    fn non_canonical_encodings_are_rejected() {
        // 8B with mod=11 (mov rax, rbx via RM form) — canonical is 89.
        assert!(decode_one(&[0x48, 0x8b, 0xc3]).is_err());
        // Redundant REX (0x40) on a plain ret-adjacent op: 40 89 D8.
        assert!(decode_one(&[0x40, 0x89, 0xd8]).is_err());
        // disp32 where disp8 fits: mov rax, [rbx+1] with mod=10.
        assert!(decode_one(&[0x48, 0x8b, 0x83, 0x01, 0x00, 0x00, 0x00]).is_err());
        // 81 /0 with an imm that fits i8 — canonical is 83.
        assert!(decode_one(&[0x48, 0x81, 0xc0, 0x01, 0x00, 0x00, 0x00]).is_err());
        // B8+r imm64 holding a value that fits i32 — canonical is C7.
        let mut b = vec![0x48, 0xb8];
        b.extend_from_slice(&1i64.to_le_bytes());
        assert!(decode_one(&b).is_err());
    }

    #[test]
    fn out_of_subset_opcodes_error() {
        assert!(decode_one(&[0x90]).is_err()); // nop
        assert!(decode_one(&[0xeb, 0x02]).is_err()); // rel8 jmp
        assert!(decode_one(&[0x74, 0x02]).is_err()); // rel8 je
        assert!(decode_one(&[0x0f, 0x05]).is_err()); // syscall
        assert!(decode_one(&[]).is_err()); // empty
        assert!(decode_one(&[0x48]).is_err()); // dangling REX
        assert!(decode_one(&[0x48, 0x8b]).is_err()); // truncated modrm
    }

    #[test]
    fn every_truncation_of_a_valid_encoding_fails() {
        let insts = [
            Inst::MovRI {
                dst: Gpr::RAX,
                imm: 123456789,
            },
            Inst::MovLoad {
                w: OpWidth::B64,
                dst: Gpr::RAX,
                mem: Mem::Base {
                    base: Gpr::RSP,
                    disp: 1000,
                },
            },
            Inst::Jcc {
                cc: Cc::Ne,
                rel: 77,
            },
        ];
        for inst in insts {
            let bytes = encode_to_vec(&inst);
            for cut in 0..bytes.len() {
                assert!(decode_one(&bytes[..cut]).is_err(), "{inst} cut at {cut}");
            }
        }
    }
}
