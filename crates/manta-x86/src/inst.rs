//! The x86-64 instruction subset.
//!
//! One variant per canonical encoding form, so the decoder can map opcode
//! bytes onto variants deterministically and the encoder can reproduce the
//! exact input bytes (see `decode` for the canonical-form contract). The
//! subset covers what compilers emit for the workloads this repo analyzes:
//! `mov`/`movzx`/`movsx`/`lea`, the classic two-address ALU group, `cmp`/
//! `test` + `jcc`, `call`/`ret`, `push`/`pop`, and rel32 control flow only.

use std::fmt;

use manta_ir::Width;

/// A 64-bit general-purpose register, numbered in hardware encoding order:
/// `rax`=0, `rcx`=1, `rdx`=2, `rbx`=3, `rsp`=4, `rbp`=5, `rsi`=6, `rdi`=7,
/// `r8`–`r15`=8–15.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Gpr(pub u8);

impl Gpr {
    /// `rax` — return value.
    pub const RAX: Gpr = Gpr(0);
    /// `rcx` — 4th SysV argument.
    pub const RCX: Gpr = Gpr(1);
    /// `rdx` — 3rd SysV argument.
    pub const RDX: Gpr = Gpr(2);
    /// `rbx` — callee-saved.
    pub const RBX: Gpr = Gpr(3);
    /// `rsp` — stack pointer.
    pub const RSP: Gpr = Gpr(4);
    /// `rbp` — frame pointer.
    pub const RBP: Gpr = Gpr(5);
    /// `rsi` — 2nd SysV argument.
    pub const RSI: Gpr = Gpr(6);
    /// `rdi` — 1st SysV argument.
    pub const RDI: Gpr = Gpr(7);
    /// `r8` — 5th SysV argument.
    pub const R8: Gpr = Gpr(8);
    /// `r9` — 6th SysV argument.
    pub const R9: Gpr = Gpr(9);
    /// `r10` — caller-saved scratch.
    pub const R10: Gpr = Gpr(10);
    /// `r11` — caller-saved scratch.
    pub const R11: Gpr = Gpr(11);
    /// `r12` — callee-saved.
    pub const R12: Gpr = Gpr(12);
    /// `r13` — callee-saved.
    pub const R13: Gpr = Gpr(13);
    /// `r14` — callee-saved.
    pub const R14: Gpr = Gpr(14);
    /// `r15` — callee-saved.
    pub const R15: Gpr = Gpr(15);

    /// The SysV AMD64 integer argument registers in order.
    pub const SYSV_ARGS: [Gpr; 6] = [Gpr::RDI, Gpr::RSI, Gpr::RDX, Gpr::RCX, Gpr::R8, Gpr::R9];

    /// The register carrying SysV argument `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`; the subset passes at most six register arguments.
    pub fn arg(i: usize) -> Gpr {
        assert!(i < 6, "SysV passes at most 6 integer register arguments");
        Gpr::SYSV_ARGS[i]
    }

    /// 64-bit register name (`rax`, `r12`, ...).
    pub fn name64(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        NAMES[self.0 as usize]
    }

    /// 32-bit sub-register name (`eax`, `r12d`, ...).
    pub fn name32(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "r8d", "r9d", "r10d", "r11d",
            "r12d", "r13d", "r14d", "r15d",
        ];
        NAMES[self.0 as usize]
    }

    /// 16-bit sub-register name (`ax`, `r12w`, ...).
    pub fn name16(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "ax", "cx", "dx", "bx", "sp", "bp", "si", "di", "r8w", "r9w", "r10w", "r11w", "r12w",
            "r13w", "r14w", "r15w",
        ];
        NAMES[self.0 as usize]
    }

    /// 8-bit sub-register name, REX convention (`al`, `spl`, `r12b`, ...).
    pub fn name8(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil", "r8b", "r9b", "r10b", "r11b",
            "r12b", "r13b", "r14b", "r15b",
        ];
        NAMES[self.0 as usize]
    }

    /// Name at an operand width.
    pub fn name(self, w: OpWidth) -> &'static str {
        match w {
            OpWidth::B8 => self.name8(),
            OpWidth::B16 => self.name16(),
            OpWidth::B32 => self.name32(),
            OpWidth::B64 => self.name64(),
        }
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name64())
    }
}

/// Operand width of a memory access or sub-register operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpWidth {
    /// Byte.
    B8,
    /// Word.
    B16,
    /// Doubleword.
    B32,
    /// Quadword.
    B64,
}

impl OpWidth {
    /// Width in bits.
    pub fn bits(self) -> u32 {
        match self {
            OpWidth::B8 => 8,
            OpWidth::B16 => 16,
            OpWidth::B32 => 32,
            OpWidth::B64 => 64,
        }
    }

    /// The matching IR width.
    pub fn ir(self) -> Width {
        match self {
            OpWidth::B8 => Width::W8,
            OpWidth::B16 => Width::W16,
            OpWidth::B32 => Width::W32,
            OpWidth::B64 => Width::W64,
        }
    }

    /// Size keyword used in memory operands (`byte`, `qword`, ...).
    pub fn keyword(self) -> &'static str {
        match self {
            OpWidth::B8 => "byte",
            OpWidth::B16 => "word",
            OpWidth::B32 => "dword",
            OpWidth::B64 => "qword",
        }
    }
}

/// A memory operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mem {
    /// `[base + disp]`.
    Base {
        /// Base register.
        base: Gpr,
        /// Signed byte displacement.
        disp: i32,
    },
    /// `[base + index*scale + disp]`; `index` must not be `rsp`.
    BaseIndex {
        /// Base register.
        base: Gpr,
        /// Index register (not `rsp`).
        index: Gpr,
        /// Scale factor: 1, 2, 4 or 8.
        scale: u8,
        /// Signed byte displacement.
        disp: i32,
    },
    /// `[rip + disp]` — position-independent data/function references.
    Rip {
        /// Displacement from the end of the instruction.
        disp: i32,
    },
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn disp_suffix(f: &mut fmt::Formatter<'_>, disp: i32) -> fmt::Result {
            match disp.cmp(&0) {
                std::cmp::Ordering::Greater => write!(f, "+{disp}"),
                std::cmp::Ordering::Less => write!(f, "-{}", disp.unsigned_abs()),
                std::cmp::Ordering::Equal => Ok(()),
            }
        }
        match self {
            Mem::Base { base, disp } => {
                write!(f, "[{base}")?;
                disp_suffix(f, *disp)?;
                write!(f, "]")
            }
            Mem::BaseIndex {
                base,
                index,
                scale,
                disp,
            } => {
                write!(f, "[{base}+{index}*{scale}")?;
                disp_suffix(f, *disp)?;
                write!(f, "]")
            }
            Mem::Rip { disp } => {
                write!(f, "[rip")?;
                disp_suffix(f, *disp)?;
                write!(f, "]")
            }
        }
    }
}

/// A register-or-memory source operand (RM-form instructions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rm {
    /// A register.
    Reg(Gpr),
    /// A memory operand.
    Mem(Mem),
}

/// Two-address ALU operations sharing the classic opcode group layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Alu {
    /// `add` — also the pointer-arithmetic workhorse.
    Add,
    /// `sub`.
    Sub,
    /// `and`.
    And,
    /// `or`.
    Or,
    /// `xor`.
    Xor,
    /// `cmp` — sets flags only, writes no register.
    Cmp,
    /// `imul` (0F AF / 69 forms).
    Mul,
}

impl Alu {
    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Alu::Add => "add",
            Alu::Sub => "sub",
            Alu::And => "and",
            Alu::Or => "or",
            Alu::Xor => "xor",
            Alu::Cmp => "cmp",
            Alu::Mul => "imul",
        }
    }
}

/// Shift operations (`C1 /n` group).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Shift {
    /// `shl`.
    Shl,
    /// `shr` (logical).
    Shr,
}

impl Shift {
    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Shift::Shl => "shl",
            Shift::Shr => "shr",
        }
    }
}

/// Condition codes for `jcc`, in the subset the lifter understands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cc {
    /// `je` / ZF=1.
    E,
    /// `jne` / ZF=0.
    Ne,
    /// `jl` — signed less.
    L,
    /// `jle` — signed less-or-equal.
    Le,
    /// `jg` — signed greater.
    G,
    /// `jge` — signed greater-or-equal.
    Ge,
    /// `jb` — unsigned below.
    B,
    /// `jbe` — unsigned below-or-equal.
    Be,
    /// `ja` — unsigned above.
    A,
    /// `jae` — unsigned above-or-equal.
    Ae,
}

impl Cc {
    /// Assembly mnemonic (without the `j` prefix this is the `cc` suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::L => "l",
            Cc::Le => "le",
            Cc::G => "g",
            Cc::Ge => "ge",
            Cc::B => "b",
            Cc::Be => "be",
            Cc::A => "a",
            Cc::Ae => "ae",
        }
    }

    /// The condition that branches exactly when `self` does not.
    pub fn negate(self) -> Cc {
        match self {
            Cc::E => Cc::Ne,
            Cc::Ne => Cc::E,
            Cc::L => Cc::Ge,
            Cc::Ge => Cc::L,
            Cc::Le => Cc::G,
            Cc::G => Cc::Le,
            Cc::B => Cc::Ae,
            Cc::Ae => Cc::B,
            Cc::Be => Cc::A,
            Cc::A => Cc::Be,
        }
    }

    /// The IR compare predicate with the same truth table. The subset treats
    /// unsigned condition codes as their signed counterparts — the IR has a
    /// single ordering predicate family, exactly like SB-ISA's `cmp.<pred>`.
    pub fn pred(self) -> manta_ir::CmpPred {
        use manta_ir::CmpPred;
        match self {
            Cc::E => CmpPred::Eq,
            Cc::Ne => CmpPred::Ne,
            Cc::L | Cc::B => CmpPred::Lt,
            Cc::Le | Cc::Be => CmpPred::Le,
            Cc::G | Cc::A => CmpPred::Gt,
            Cc::Ge | Cc::Ae => CmpPred::Ge,
        }
    }
}

/// One decoded instruction. Each variant corresponds to one canonical
/// encoding form; `encode` picks exactly one byte sequence per value and
/// `decode` only accepts sequences `encode` would produce.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `mov r, r` at 32 or 64 bits (`89 /r`, mod=11).
    MovRR {
        /// Operand width (`B32` or `B64`).
        w: OpWidth,
        /// Destination.
        dst: Gpr,
        /// Source.
        src: Gpr,
    },
    /// `mov r64, imm` (`REX.W C7 /0 id` or `REX.W B8+r io`).
    MovRI {
        /// Destination.
        dst: Gpr,
        /// Immediate, sign-extended from 32 bits when it fits.
        imm: i64,
    },
    /// `mov r, [mem]` at 32 or 64 bits (`8B /r`); narrower loads use
    /// [`Inst::MovZx`].
    MovLoad {
        /// Operand width (`B32` or `B64`).
        w: OpWidth,
        /// Destination.
        dst: Gpr,
        /// Source address.
        mem: Mem,
    },
    /// `mov [mem], r` at any width (`88` / `66 89` / `89` / `REX.W 89`).
    MovStore {
        /// Operand width.
        w: OpWidth,
        /// Destination address.
        mem: Mem,
        /// Stored register.
        src: Gpr,
    },
    /// `mov <w> [mem], imm` (`C6` / `66 C7` / `C7` / `REX.W C7`, `/0`).
    MovStoreImm {
        /// Operand width.
        w: OpWidth,
        /// Destination address.
        mem: Mem,
        /// Immediate (truncated to the operand width when stored).
        imm: i32,
    },
    /// `movzx r64, <w> r/m` (`REX.W 0F B6/B7`), zero-extending.
    MovZx {
        /// Source width (`B8` or `B16`).
        from: OpWidth,
        /// Destination (full 64-bit register).
        dst: Gpr,
        /// Source register or memory.
        src: Rm,
    },
    /// `movsx r64, <w> r/m` (`REX.W 0F BE/BF`, or `REX.W 63` for `B32`).
    MovSx {
        /// Source width (`B8`, `B16` or `B32`).
        from: OpWidth,
        /// Destination (full 64-bit register).
        dst: Gpr,
        /// Source register or memory.
        src: Rm,
    },
    /// `lea r64, [mem]` (`REX.W 8D /r`).
    Lea {
        /// Destination.
        dst: Gpr,
        /// Address expression (never dereferenced).
        mem: Mem,
    },
    /// Two-address ALU, register source (`REX.W 01/29/21/09/31/39` mod=11;
    /// `imul` is `REX.W 0F AF /r`).
    AluRR {
        /// Operation.
        op: Alu,
        /// Destination and left operand.
        dst: Gpr,
        /// Right operand.
        src: Gpr,
    },
    /// Two-address ALU, memory source (`REX.W 03/2B/23/0B/33/3B /r`).
    AluRM {
        /// Operation.
        op: Alu,
        /// Destination and left operand.
        dst: Gpr,
        /// Right operand address.
        mem: Mem,
    },
    /// Two-address ALU, immediate source (`REX.W 83 /n ib` or `81 /n id`;
    /// `imul` is `REX.W 69 /r id` with dst = src).
    AluRI {
        /// Operation.
        op: Alu,
        /// Destination and left operand.
        dst: Gpr,
        /// Right operand, sign-extended.
        imm: i32,
    },
    /// `test r64, r64` (`REX.W 85 /r`, mod=11) — flags only.
    TestRR {
        /// Left operand (r/m slot).
        a: Gpr,
        /// Right operand (reg slot).
        b: Gpr,
    },
    /// `shl`/`shr` by immediate (`REX.W C1 /4|/5 ib`).
    ShiftRI {
        /// Direction.
        sh: Shift,
        /// Destination and operand.
        dst: Gpr,
        /// Shift amount (0–63).
        amt: u8,
    },
    /// `push r64` (`50+r`).
    Push {
        /// Pushed register.
        reg: Gpr,
    },
    /// `pop r64` (`58+r`).
    Pop {
        /// Destination register.
        reg: Gpr,
    },
    /// `j<cc> rel32` (`0F 8x cd`) — rel8 forms are outside the subset.
    Jcc {
        /// Condition.
        cc: Cc,
        /// Displacement from the end of this instruction.
        rel: i32,
    },
    /// `jmp rel32` (`E9 cd`).
    Jmp {
        /// Displacement from the end of this instruction.
        rel: i32,
    },
    /// `call rel32` (`E8 cd`).
    Call {
        /// Displacement from the end of this instruction.
        rel: i32,
    },
    /// `call r64` (`FF /2`, mod=11).
    CallInd {
        /// Register holding the target address.
        reg: Gpr,
    },
    /// `ret` (`C3`).
    Ret,
}

impl Inst {
    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jcc { .. } | Inst::Jmp { .. } | Inst::Ret)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::MovRR { w, dst, src } => {
                write!(f, "mov {}, {}", dst.name(*w), src.name(*w))
            }
            Inst::MovRI { dst, imm } => write!(f, "mov {dst}, {imm}"),
            Inst::MovLoad { w, dst, mem } => {
                write!(f, "mov {}, {} {mem}", dst.name(*w), w.keyword())
            }
            Inst::MovStore { w, mem, src } => {
                write!(f, "mov {} {mem}, {}", w.keyword(), src.name(*w))
            }
            Inst::MovStoreImm { w, mem, imm } => {
                write!(f, "mov {} {mem}, {imm}", w.keyword())
            }
            Inst::MovZx { from, dst, src } => match src {
                Rm::Reg(r) => write!(f, "movzx {dst}, {}", r.name(*from)),
                Rm::Mem(m) => write!(f, "movzx {dst}, {} {m}", from.keyword()),
            },
            Inst::MovSx { from, dst, src } => match src {
                Rm::Reg(r) => write!(f, "movsx {dst}, {}", r.name(*from)),
                Rm::Mem(m) => write!(f, "movsx {dst}, {} {m}", from.keyword()),
            },
            Inst::Lea { dst, mem } => write!(f, "lea {dst}, {mem}"),
            Inst::AluRR { op, dst, src } => {
                write!(f, "{} {dst}, {src}", op.mnemonic())
            }
            Inst::AluRM { op, dst, mem } => {
                write!(f, "{} {dst}, qword {mem}", op.mnemonic())
            }
            Inst::AluRI { op, dst, imm } => {
                write!(f, "{} {dst}, {imm}", op.mnemonic())
            }
            Inst::TestRR { a, b } => write!(f, "test {a}, {b}"),
            Inst::ShiftRI { sh, dst, amt } => {
                write!(f, "{} {dst}, {amt}", sh.mnemonic())
            }
            Inst::Push { reg } => write!(f, "push {reg}"),
            Inst::Pop { reg } => write!(f, "pop {reg}"),
            Inst::Jcc { cc, rel } => write!(f, "j{} {rel:+}", cc.mnemonic()),
            Inst::Jmp { rel } => write!(f, "jmp {rel:+}"),
            Inst::Call { rel } => write!(f, "call {rel:+}"),
            Inst::CallInd { reg } => write!(f, "call {reg}"),
            Inst::Ret => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_cover_all_widths() {
        assert_eq!(Gpr::RAX.name(OpWidth::B64), "rax");
        assert_eq!(Gpr::RAX.name(OpWidth::B32), "eax");
        assert_eq!(Gpr::RAX.name(OpWidth::B16), "ax");
        assert_eq!(Gpr::RAX.name(OpWidth::B8), "al");
        assert_eq!(Gpr::RSP.name(OpWidth::B8), "spl");
        assert_eq!(Gpr::R13.name(OpWidth::B32), "r13d");
    }

    #[test]
    fn sysv_argument_order() {
        assert_eq!(Gpr::arg(0), Gpr::RDI);
        assert_eq!(Gpr::arg(3), Gpr::RCX);
        assert_eq!(Gpr::arg(5), Gpr::R9);
    }

    #[test]
    fn cc_negation_round_trips() {
        for cc in [
            Cc::E,
            Cc::Ne,
            Cc::L,
            Cc::Le,
            Cc::G,
            Cc::Ge,
            Cc::B,
            Cc::Be,
            Cc::A,
            Cc::Ae,
        ] {
            assert_eq!(cc.negate().negate(), cc);
            assert_eq!(cc.pred().negate(), cc.negate().pred());
        }
    }

    #[test]
    fn mem_display() {
        assert_eq!(
            Mem::Base {
                base: Gpr::RBP,
                disp: -8
            }
            .to_string(),
            "[rbp-8]"
        );
        assert_eq!(
            Mem::BaseIndex {
                base: Gpr::RAX,
                index: Gpr::RCX,
                scale: 8,
                disp: 16
            }
            .to_string(),
            "[rax+rcx*8+16]"
        );
        assert_eq!(Mem::Rip { disp: 0 }.to_string(), "[rip]");
    }
}
