//! The canonical x86-64 encoder.
//!
//! Every [`Inst`] value has exactly one byte sequence: REX prefixes carry no
//! dead bits, displacements and immediates use the smallest form that fits,
//! and `rsp`/`r12` bases take the mandatory SIB byte while `rbp`/`r13` bases
//! take the mandatory `disp8 == 0` escape. The decoder leans on this: it
//! re-encodes everything it decodes and rejects any byte sequence the
//! encoder would not produce, which is what makes the fuzz round-trip
//! property (`encode(decode(bytes)) == bytes`) hold by construction.

use crate::inst::{Alu, Cc, Gpr, Inst, Mem, OpWidth, Rm, Shift};

/// REX bit positions.
const REX_BASE: u8 = 0x40;
const REX_W: u8 = 0x08;
const REX_R: u8 = 0x04;
const REX_X: u8 = 0x02;
const REX_B: u8 = 0x01;

/// How the r/m slot of a ModRM byte is filled.
enum RmSlot {
    Reg(Gpr),
    Mem(Mem),
}

/// Condition-code number (the low nibble of the `0F 8x` opcode).
pub(crate) fn cc_number(cc: Cc) -> u8 {
    match cc {
        Cc::B => 0x2,
        Cc::Ae => 0x3,
        Cc::E => 0x4,
        Cc::Ne => 0x5,
        Cc::Be => 0x6,
        Cc::A => 0x7,
        Cc::L => 0xc,
        Cc::Ge => 0xd,
        Cc::Le => 0xe,
        Cc::G => 0xf,
    }
}

/// Opcode-extension digit for the `83`/`81` immediate ALU group.
fn alu_ext(op: Alu) -> u8 {
    match op {
        Alu::Add => 0,
        Alu::Or => 1,
        Alu::And => 4,
        Alu::Sub => 5,
        Alu::Xor => 6,
        Alu::Cmp => 7,
        Alu::Mul => unreachable!("imul has no 83/81 form"),
    }
}

/// MR-form opcode (`op r/m64, r64`) for the register-register ALU group.
fn alu_mr_opcode(op: Alu) -> u8 {
    match op {
        Alu::Add => 0x01,
        Alu::Or => 0x09,
        Alu::And => 0x21,
        Alu::Sub => 0x29,
        Alu::Xor => 0x31,
        Alu::Cmp => 0x39,
        Alu::Mul => unreachable!("imul uses 0F AF"),
    }
}

/// RM-form opcode (`op r64, r/m64`) for the memory-source ALU group.
fn alu_rm_opcode(op: Alu) -> u8 {
    match op {
        Alu::Add => 0x03,
        Alu::Or => 0x0b,
        Alu::And => 0x23,
        Alu::Sub => 0x2b,
        Alu::Xor => 0x33,
        Alu::Cmp => 0x3b,
        Alu::Mul => unreachable!("imul uses 0F AF"),
    }
}

/// Emits one instruction built around a ModRM byte.
///
/// `force_rex` is set for 8-bit operands naming `spl`/`bpl`/`sil`/`dil`,
/// which are only addressable with a (possibly empty) REX prefix.
#[allow(clippy::too_many_arguments)]
fn emit_modrm(
    out: &mut Vec<u8>,
    prefix66: bool,
    rex_w: bool,
    force_rex: bool,
    opcode: &[u8],
    reg: u8,
    rm: &RmSlot,
    imm: &[u8],
) {
    let mut rex = REX_BASE;
    if rex_w {
        rex |= REX_W;
    }
    if reg >= 8 {
        rex |= REX_R;
    }

    let (mod_bits, rm_bits, sib, disp): (u8, u8, Option<u8>, Vec<u8>) = match rm {
        RmSlot::Reg(r) => {
            if r.0 >= 8 {
                rex |= REX_B;
            }
            (0b11, r.0 & 7, None, vec![])
        }
        RmSlot::Mem(Mem::Rip { disp }) => (0b00, 0b101, None, disp.to_le_bytes().to_vec()),
        RmSlot::Mem(Mem::Base { base, disp }) => {
            if base.0 >= 8 {
                rex |= REX_B;
            }
            let low = base.0 & 7;
            let (m, d) = disp_form(low, *disp);
            if low == 4 {
                // rsp/r12 base: the r/m=100 slot means "SIB follows".
                (m, 0b100, Some(0b00_100_000 | low), d)
            } else {
                (m, low, None, d)
            }
        }
        RmSlot::Mem(Mem::BaseIndex {
            base,
            index,
            scale,
            disp,
        }) => {
            assert!(*index != Gpr::RSP, "rsp cannot be an index register");
            assert!(matches!(scale, 1 | 2 | 4 | 8), "scale must be 1, 2, 4 or 8");
            if base.0 >= 8 {
                rex |= REX_B;
            }
            if index.0 >= 8 {
                rex |= REX_X;
            }
            let ss = scale.trailing_zeros() as u8;
            let (m, d) = disp_form(base.0 & 7, *disp);
            (
                m,
                0b100,
                Some(ss << 6 | (index.0 & 7) << 3 | (base.0 & 7)),
                d,
            )
        }
    };

    if prefix66 {
        out.push(0x66);
    }
    if rex != REX_BASE || force_rex {
        out.push(rex);
    }
    out.extend_from_slice(opcode);
    out.push(mod_bits << 6 | (reg & 7) << 3 | rm_bits);
    if let Some(s) = sib {
        out.push(s);
    }
    out.extend_from_slice(&disp);
    out.extend_from_slice(imm);
}

/// Picks the smallest displacement form. `base_low == 5` (`rbp`/`r13`) has
/// no mod=00 form — that slot encodes RIP-relative — so it always carries at
/// least a disp8.
fn disp_form(base_low: u8, disp: i32) -> (u8, Vec<u8>) {
    if disp == 0 && base_low != 5 {
        (0b00, vec![])
    } else if let Ok(d8) = i8::try_from(disp) {
        (0b01, vec![d8 as u8])
    } else {
        (0b10, disp.to_le_bytes().to_vec())
    }
}

/// Whether an 8-bit register operand requires a REX prefix even when no REX
/// bit is set (`spl`/`bpl`/`sil`/`dil` vs. the legacy `ah`..`bh` bank).
fn byte_reg_needs_rex(r: Gpr) -> bool {
    (4..=7).contains(&r.0)
}

fn rm_slot(src: Rm) -> RmSlot {
    match src {
        Rm::Reg(r) => RmSlot::Reg(r),
        Rm::Mem(m) => RmSlot::Mem(m),
    }
}

/// Encodes one instruction into its canonical byte sequence.
pub fn encode(inst: &Inst, out: &mut Vec<u8>) {
    match *inst {
        Inst::MovRR { w, dst, src } => {
            assert!(
                matches!(w, OpWidth::B32 | OpWidth::B64),
                "reg-reg mov is 32- or 64-bit only"
            );
            emit_modrm(
                out,
                false,
                w == OpWidth::B64,
                false,
                &[0x89],
                src.0,
                &RmSlot::Reg(dst),
                &[],
            );
        }
        Inst::MovRI { dst, imm } => {
            if let Ok(imm32) = i32::try_from(imm) {
                emit_modrm(
                    out,
                    false,
                    true,
                    false,
                    &[0xc7],
                    0,
                    &RmSlot::Reg(dst),
                    &imm32.to_le_bytes(),
                );
            } else {
                let mut rex = REX_BASE | REX_W;
                if dst.0 >= 8 {
                    rex |= REX_B;
                }
                out.push(rex);
                out.push(0xb8 + (dst.0 & 7));
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::MovLoad { w, dst, mem } => {
            assert!(
                matches!(w, OpWidth::B32 | OpWidth::B64),
                "narrow loads use movzx/movsx"
            );
            emit_modrm(
                out,
                false,
                w == OpWidth::B64,
                false,
                &[0x8b],
                dst.0,
                &RmSlot::Mem(mem),
                &[],
            );
        }
        Inst::MovStore { w, mem, src } => {
            let (prefix66, rex_w, opcode) = match w {
                OpWidth::B8 => (false, false, 0x88),
                OpWidth::B16 => (true, false, 0x89),
                OpWidth::B32 => (false, false, 0x89),
                OpWidth::B64 => (false, true, 0x89),
            };
            let force = w == OpWidth::B8 && byte_reg_needs_rex(src);
            emit_modrm(
                out,
                prefix66,
                rex_w,
                force,
                &[opcode],
                src.0,
                &RmSlot::Mem(mem),
                &[],
            );
        }
        Inst::MovStoreImm { w, mem, imm } => {
            let (prefix66, rex_w, opcode, imm_bytes): (bool, bool, u8, Vec<u8>) = match w {
                OpWidth::B8 => {
                    let b = i8::try_from(imm).expect("byte store immediate must fit i8");
                    (false, false, 0xc6, vec![b as u8])
                }
                OpWidth::B16 => {
                    let h = i16::try_from(imm).expect("word store immediate must fit i16");
                    (true, false, 0xc7, h.to_le_bytes().to_vec())
                }
                OpWidth::B32 => (false, false, 0xc7, imm.to_le_bytes().to_vec()),
                OpWidth::B64 => (false, true, 0xc7, imm.to_le_bytes().to_vec()),
            };
            emit_modrm(
                out,
                prefix66,
                rex_w,
                false,
                &[opcode],
                0,
                &RmSlot::Mem(mem),
                &imm_bytes,
            );
        }
        Inst::MovZx { from, dst, src } => {
            let opcode: &[u8] = match from {
                OpWidth::B8 => &[0x0f, 0xb6],
                OpWidth::B16 => &[0x0f, 0xb7],
                _ => unreachable!("movzx widens 8- or 16-bit sources"),
            };
            emit_modrm(out, false, true, false, opcode, dst.0, &rm_slot(src), &[]);
        }
        Inst::MovSx { from, dst, src } => {
            let opcode: &[u8] = match from {
                OpWidth::B8 => &[0x0f, 0xbe],
                OpWidth::B16 => &[0x0f, 0xbf],
                OpWidth::B32 => &[0x63],
                OpWidth::B64 => unreachable!("movsx widens sub-64-bit sources"),
            };
            emit_modrm(out, false, true, false, opcode, dst.0, &rm_slot(src), &[]);
        }
        Inst::Lea { dst, mem } => {
            emit_modrm(
                out,
                false,
                true,
                false,
                &[0x8d],
                dst.0,
                &RmSlot::Mem(mem),
                &[],
            );
        }
        Inst::AluRR { op, dst, src } => {
            if op == Alu::Mul {
                // imul is RM-form: reg = destination.
                emit_modrm(
                    out,
                    false,
                    true,
                    false,
                    &[0x0f, 0xaf],
                    dst.0,
                    &RmSlot::Reg(src),
                    &[],
                );
            } else {
                emit_modrm(
                    out,
                    false,
                    true,
                    false,
                    &[alu_mr_opcode(op)],
                    src.0,
                    &RmSlot::Reg(dst),
                    &[],
                );
            }
        }
        Inst::AluRM { op, dst, mem } => {
            let opcode: &[u8] = if op == Alu::Mul {
                &[0x0f, 0xaf]
            } else {
                &[alu_rm_opcode(op)]
            };
            emit_modrm(
                out,
                false,
                true,
                false,
                opcode,
                dst.0,
                &RmSlot::Mem(mem),
                &[],
            );
        }
        Inst::AluRI { op, dst, imm } => {
            if op == Alu::Mul {
                // Canonical three-operand imul with dst == src.
                emit_modrm(
                    out,
                    false,
                    true,
                    false,
                    &[0x69],
                    dst.0,
                    &RmSlot::Reg(dst),
                    &imm.to_le_bytes(),
                );
            } else if let Ok(imm8) = i8::try_from(imm) {
                emit_modrm(
                    out,
                    false,
                    true,
                    false,
                    &[0x83],
                    alu_ext(op),
                    &RmSlot::Reg(dst),
                    &[imm8 as u8],
                );
            } else {
                emit_modrm(
                    out,
                    false,
                    true,
                    false,
                    &[0x81],
                    alu_ext(op),
                    &RmSlot::Reg(dst),
                    &imm.to_le_bytes(),
                );
            }
        }
        Inst::TestRR { a, b } => {
            emit_modrm(out, false, true, false, &[0x85], b.0, &RmSlot::Reg(a), &[]);
        }
        Inst::ShiftRI { sh, dst, amt } => {
            assert!(amt < 64, "64-bit shift amount must be 0-63");
            let ext = match sh {
                Shift::Shl => 4,
                Shift::Shr => 5,
            };
            emit_modrm(
                out,
                false,
                true,
                false,
                &[0xc1],
                ext,
                &RmSlot::Reg(dst),
                &[amt],
            );
        }
        Inst::Push { reg } => {
            if reg.0 >= 8 {
                out.push(REX_BASE | REX_B);
            }
            out.push(0x50 + (reg.0 & 7));
        }
        Inst::Pop { reg } => {
            if reg.0 >= 8 {
                out.push(REX_BASE | REX_B);
            }
            out.push(0x58 + (reg.0 & 7));
        }
        Inst::Jcc { cc, rel } => {
            out.push(0x0f);
            out.push(0x80 + cc_number(cc));
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::Jmp { rel } => {
            out.push(0xe9);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::Call { rel } => {
            out.push(0xe8);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::CallInd { reg } => {
            if reg.0 >= 8 {
                out.push(REX_BASE | REX_B);
            }
            out.push(0xff);
            out.push(0b11_010_000 | (reg.0 & 7));
        }
        Inst::Ret => out.push(0xc3),
    }
}

/// Encodes one instruction into a fresh buffer.
pub fn encode_to_vec(inst: &Inst) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    encode(inst, &mut out);
    out
}

/// Byte length of the canonical encoding.
pub fn encoded_len(inst: &Inst) -> usize {
    encode_to_vec(inst).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // mov rax, rbx => REX.W 89 D8
        assert_eq!(
            encode_to_vec(&Inst::MovRR {
                w: OpWidth::B64,
                dst: Gpr::RAX,
                src: Gpr::RBX
            }),
            vec![0x48, 0x89, 0xd8]
        );
        // mov eax, ebx => 89 D8 (no REX)
        assert_eq!(
            encode_to_vec(&Inst::MovRR {
                w: OpWidth::B32,
                dst: Gpr::RAX,
                src: Gpr::RBX
            }),
            vec![0x89, 0xd8]
        );
        // add r8, rdi => REX.WB 01 F8... reg=rdi(7), rm=r8 -> 49 01 F8
        assert_eq!(
            encode_to_vec(&Inst::AluRR {
                op: Alu::Add,
                dst: Gpr::R8,
                src: Gpr::RDI
            }),
            vec![0x49, 0x01, 0xf8]
        );
        // push rbp => 55 ; push r12 => 41 54
        assert_eq!(encode_to_vec(&Inst::Push { reg: Gpr::RBP }), vec![0x55]);
        assert_eq!(
            encode_to_vec(&Inst::Push { reg: Gpr::R12 }),
            vec![0x41, 0x54]
        );
        // ret => C3
        assert_eq!(encode_to_vec(&Inst::Ret), vec![0xc3]);
    }

    #[test]
    fn rbp_base_always_carries_disp() {
        // mov rax, [rbp] must use mod=01 disp8=0: 48 8B 45 00
        assert_eq!(
            encode_to_vec(&Inst::MovLoad {
                w: OpWidth::B64,
                dst: Gpr::RAX,
                mem: Mem::Base {
                    base: Gpr::RBP,
                    disp: 0
                }
            }),
            vec![0x48, 0x8b, 0x45, 0x00]
        );
    }

    #[test]
    fn rsp_base_takes_sib() {
        // mov rax, [rsp+8] => 48 8B 44 24 08
        assert_eq!(
            encode_to_vec(&Inst::MovLoad {
                w: OpWidth::B64,
                dst: Gpr::RAX,
                mem: Mem::Base {
                    base: Gpr::RSP,
                    disp: 8
                }
            }),
            vec![0x48, 0x8b, 0x44, 0x24, 0x08]
        );
    }

    #[test]
    fn mov_imm_picks_smallest_form() {
        // mov rax, 1 => REX.W C7 C0 imm32
        assert_eq!(
            encode_to_vec(&Inst::MovRI {
                dst: Gpr::RAX,
                imm: 1
            }),
            vec![0x48, 0xc7, 0xc0, 0x01, 0x00, 0x00, 0x00]
        );
        // mov rax, 0x1_0000_0000 => REX.W B8 imm64
        assert_eq!(
            encode_to_vec(&Inst::MovRI {
                dst: Gpr::RAX,
                imm: 0x1_0000_0000
            }),
            vec![0x48, 0xb8, 0, 0, 0, 0, 1, 0, 0, 0]
        );
    }

    #[test]
    fn byte_store_of_sil_forces_rex() {
        // mov byte [rax], sil => 40 88 30
        assert_eq!(
            encode_to_vec(&Inst::MovStore {
                w: OpWidth::B8,
                mem: Mem::Base {
                    base: Gpr::RAX,
                    disp: 0
                },
                src: Gpr::RSI
            }),
            vec![0x40, 0x88, 0x30]
        );
        // mov byte [rax], cl needs no REX => 88 08
        assert_eq!(
            encode_to_vec(&Inst::MovStore {
                w: OpWidth::B8,
                mem: Mem::Base {
                    base: Gpr::RAX,
                    disp: 0
                },
                src: Gpr::RCX
            }),
            vec![0x88, 0x08]
        );
    }

    #[test]
    fn rip_relative_lea() {
        // lea rdi, [rip+0x10] => 48 8D 3D 10 00 00 00
        assert_eq!(
            encode_to_vec(&Inst::Lea {
                dst: Gpr::RDI,
                mem: Mem::Rip { disp: 0x10 }
            }),
            vec![0x48, 0x8d, 0x3d, 0x10, 0x00, 0x00, 0x00]
        );
    }

    #[test]
    fn scaled_index_sib() {
        // mov rax, [rbx+rcx*8+4] => 48 8B 44 CB 04
        assert_eq!(
            encode_to_vec(&Inst::MovLoad {
                w: OpWidth::B64,
                dst: Gpr::RAX,
                mem: Mem::BaseIndex {
                    base: Gpr::RBX,
                    index: Gpr::RCX,
                    scale: 8,
                    disp: 4
                }
            }),
            vec![0x48, 0x8b, 0x44, 0xcb, 0x04]
        );
    }
}
