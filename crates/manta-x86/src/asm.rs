//! A line-oriented Intel-syntax assembler and disassembler for the subset.
//!
//! Grammar (mirrors the SB-ISA assembler's shape):
//!
//! ```text
//! module <name>
//! extern <name>, <nparams>[, ret]
//! global <name>, <size>
//! func <name>(<nparams>) -> ret|void {
//! <label>:
//!     push rbp            mov rbp, rsp       sub rsp, 32
//!     mov rax, rbx        mov eax, ebx       mov rax, 42
//!     mov rax, qword [rbp-8]                 mov dword [rbp-8], eax
//!     mov qword [rax+8], 7
//!     movzx rax, byte [rdi]                  movzx rax, cl
//!     movsx rax, dword [rdi]                 lea rax, [rbp-16]
//!     lea rax, func <name>                   lea rax, global <name>
//!     add rax, rbx        cmp rax, 0         imul rax, qword [rbp-8]
//!     test rax, rax       shl rax, 3
//!     je <label>          jmp <label>
//!     call <func|extern>  call rax           ret
//! }
//! ```
//!
//! Labels bind to the next instruction. `call` resolves function names
//! first, then externs (through their PLT stub), then registers.
//! [`disassemble`] renders an image back to text that [`assemble`] parses
//! to an identical image.

use std::fmt;
use std::fmt::Write as _;

use crate::decode::decode_all;
use crate::image::{rip_target, Image, ImageBuilder, ImageError, SymInst, TEXT_BASE};
use crate::inst::{Alu, Cc, Gpr, Inst, Mem, OpWidth, Rm, Shift};

/// Assembly failure with its 1-based line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number (0 for link-stage errors).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Parses a register name at any width.
fn parse_reg(tok: &str) -> Option<(Gpr, OpWidth)> {
    for i in 0..16u8 {
        let g = Gpr(i);
        if tok == g.name64() {
            return Some((g, OpWidth::B64));
        }
        if tok == g.name32() {
            return Some((g, OpWidth::B32));
        }
        if tok == g.name16() {
            return Some((g, OpWidth::B16));
        }
        if tok == g.name8() {
            return Some((g, OpWidth::B8));
        }
    }
    None
}

fn parse_imm(tok: &str) -> Option<i64> {
    let tok = tok.trim();
    if let Some(hex) = tok.strip_prefix("0x") {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = tok.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| -v);
    }
    tok.parse().ok()
}

fn parse_size_keyword(tok: &str) -> Option<OpWidth> {
    match tok {
        "byte" => Some(OpWidth::B8),
        "word" => Some(OpWidth::B16),
        "dword" => Some(OpWidth::B32),
        "qword" => Some(OpWidth::B64),
        _ => None,
    }
}

/// A parsed operand.
enum Operand {
    Reg(Gpr, OpWidth),
    Imm(i64),
    Mem(Option<OpWidth>, Mem),
}

/// Parses `[base]`, `[base+disp]`, `[base-disp]`, `[base+index*scale+disp]`,
/// `[rip+disp]`, with an optional size keyword in front.
fn parse_operand(ln: usize, tok: &str) -> Result<Operand> {
    let tok = tok.trim();
    // Optional `qword [...]` size prefix.
    if let Some((kw, rest)) = tok.split_once(char::is_whitespace) {
        if let Some(w) = parse_size_keyword(kw) {
            let Operand::Mem(None, mem) = parse_operand(ln, rest.trim())? else {
                return err(ln, format!("size keyword `{kw}` must precede `[...]`"));
            };
            return Ok(Operand::Mem(Some(w), mem));
        }
    }
    if let Some((r, w)) = parse_reg(tok) {
        return Ok(Operand::Reg(r, w));
    }
    if let Some(v) = parse_imm(tok) {
        return Ok(Operand::Imm(v));
    }
    let Some(inner) = tok.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return err(ln, format!("bad operand `{tok}`"));
    };
    // Split `a+b-c` into signed terms.
    let mut terms: Vec<(bool, String)> = Vec::new();
    let mut cur = String::new();
    let mut neg = false;
    for ch in inner.chars() {
        match ch {
            '+' | '-' if !cur.trim().is_empty() => {
                terms.push((neg, cur.trim().to_string()));
                cur = String::new();
                neg = ch == '-';
            }
            '-' if cur.trim().is_empty() => neg = true,
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        terms.push((neg, cur.trim().to_string()));
    }

    let mut base: Option<Gpr> = None;
    let mut rip = false;
    let mut index: Option<(Gpr, u8)> = None;
    let mut disp: i64 = 0;
    for (neg, term) in terms {
        if let Some((r_tok, s_tok)) = term.split_once('*') {
            let Some((r, OpWidth::B64)) = parse_reg(r_tok.trim()) else {
                return err(ln, format!("bad index register `{r_tok}`"));
            };
            let Some(scale) = s_tok
                .trim()
                .parse::<u8>()
                .ok()
                .filter(|s| matches!(s, 1 | 2 | 4 | 8))
            else {
                return err(ln, format!("bad scale `{s_tok}` (want 1, 2, 4 or 8)"));
            };
            if neg || index.is_some() {
                return err(ln, "at most one positive scaled index allowed");
            }
            index = Some((r, scale));
        } else if term == "rip" {
            if neg || rip || base.is_some() {
                return err(ln, "rip must be the sole (positive) base");
            }
            rip = true;
        } else if let Some((r, OpWidth::B64)) = parse_reg(&term) {
            if neg {
                return err(ln, "registers cannot be subtracted");
            }
            if base.is_none() {
                base = Some(r);
            } else if index.is_none() {
                index = Some((r, 1));
            } else {
                return err(ln, "too many registers in memory operand");
            }
        } else if let Some(v) = parse_imm(&term) {
            disp += if neg { -v } else { v };
        } else {
            return err(ln, format!("bad memory term `{term}`"));
        }
    }
    let disp = i32::try_from(disp).map_err(|_| AsmError {
        line: ln,
        message: "displacement overflows i32".into(),
    })?;
    let mem = match (rip, base, index) {
        (true, None, None) => Mem::Rip { disp },
        (false, Some(base), None) => Mem::Base { base, disp },
        (false, Some(base), Some((index, scale))) => {
            if index == Gpr::RSP {
                return err(ln, "rsp cannot be an index register");
            }
            Mem::BaseIndex {
                base,
                index,
                scale,
                disp,
            }
        }
        _ => return err(ln, format!("unsupported memory operand `[{inner}]`")),
    };
    Ok(Operand::Mem(None, mem))
}

fn alu_of(mn: &str) -> Option<Alu> {
    match mn {
        "add" => Some(Alu::Add),
        "sub" => Some(Alu::Sub),
        "and" => Some(Alu::And),
        "or" => Some(Alu::Or),
        "xor" => Some(Alu::Xor),
        "cmp" => Some(Alu::Cmp),
        "imul" => Some(Alu::Mul),
        _ => None,
    }
}

fn cc_of(mn: &str) -> Option<Cc> {
    match mn {
        "je" => Some(Cc::E),
        "jne" => Some(Cc::Ne),
        "jl" => Some(Cc::L),
        "jle" => Some(Cc::Le),
        "jg" => Some(Cc::G),
        "jge" => Some(Cc::Ge),
        "jb" => Some(Cc::B),
        "jbe" => Some(Cc::Be),
        "ja" => Some(Cc::A),
        "jae" => Some(Cc::Ae),
        _ => None,
    }
}

/// Assembles a whole program into a linked [`Image`].
///
/// # Errors
///
/// Returns [`AsmError`] pointing at the offending line; link-stage failures
/// (undefined labels/functions) report line 0.
pub fn assemble(text: &str) -> Result<Image> {
    // Pre-scan names so `call` can distinguish functions from externs and
    // forward references work.
    let mut func_names: Vec<String> = Vec::new();
    let mut extern_names: Vec<String> = Vec::new();
    for line in text.lines() {
        let line = line.split(';').next().unwrap_or("").trim();
        if let Some(rest) = line.strip_prefix("func ") {
            func_names.push(rest.split('(').next().unwrap_or("").trim().to_string());
        } else if let Some(rest) = line.strip_prefix("extern ") {
            let name = rest.split(',').next().unwrap_or("").trim();
            extern_names.push(name.to_string());
        }
    }

    let mut builder = ImageBuilder::new("");
    let mut module_name = String::new();
    // An open function: (name, nparams, has_ret, body).
    let mut current: Option<(String, u8, bool, Vec<SymInst>)> = None;

    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some((_, _, _, ref mut body)) = current {
            if line == "}" {
                let (name, nparams, has_ret, body) = current.take().unwrap();
                builder.function(name, nparams, has_ret, body);
                continue;
            }
            if let Some(label) = line.strip_suffix(':') {
                body.push(SymInst::Label(label.trim().to_string()));
                continue;
            }
            let inst = parse_inst(ln, line, &func_names, &extern_names)?;
            body.push(inst);
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            module_name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("extern ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() < 2 {
                return err(ln, "extern expects `name, nparams[, ret]`");
            }
            let nparams: u8 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: format!("bad nparams `{}`", parts[1]),
            })?;
            builder.declare_extern(parts[0], nparams, parts.get(2) == Some(&"ret"));
        } else if let Some(rest) = line.strip_prefix("global ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return err(ln, "global expects `name, size`");
            }
            let size: u64 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: format!("bad size `{}`", parts[1]),
            })?;
            builder.declare_global(parts[0], size);
        } else if let Some(rest) = line.strip_prefix("func ") {
            let rest = rest
                .strip_suffix('{')
                .ok_or(AsmError {
                    line: ln,
                    message: "expected `{`".into(),
                })?
                .trim();
            let open = rest.find('(').ok_or(AsmError {
                line: ln,
                message: "expected `(`".into(),
            })?;
            let close = rest.rfind(')').ok_or(AsmError {
                line: ln,
                message: "expected `)`".into(),
            })?;
            let name = rest[..open].trim().to_string();
            let nparams: u8 = rest[open + 1..close].trim().parse().map_err(|_| AsmError {
                line: ln,
                message: "func expects `(nparams)`".into(),
            })?;
            let has_ret = rest[close..].contains("->") && !rest[close..].contains("void");
            current = Some((name, nparams, has_ret, Vec::new()));
        } else {
            return err(ln, format!("unexpected top-level line `{line}`"));
        }
    }
    if current.is_some() {
        return err(usize::MAX, "unterminated function body");
    }

    let mut image = builder.build().map_err(|e: ImageError| AsmError {
        line: 0,
        message: e.message,
    })?;
    image.name = module_name;
    Ok(image)
}

fn parse_inst(
    ln: usize,
    line: &str,
    func_names: &[String],
    extern_names: &[String],
) -> Result<SymInst> {
    let (mn, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let parts: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        split_operands(rest)
    };
    let need = |n: usize| -> Result<()> {
        if parts.len() == n {
            Ok(())
        } else {
            err(
                ln,
                format!("`{mn}` expects {n} operands, got {}", parts.len()),
            )
        }
    };

    if let Some(cc) = cc_of(mn) {
        need(1)?;
        return Ok(SymInst::JccLabel(cc, parts[0].to_string()));
    }

    Ok(match mn {
        "mov" => {
            need(2)?;
            let dst = parse_operand(ln, parts[0])?;
            let src = parse_operand(ln, parts[1])?;
            match (dst, src) {
                (Operand::Reg(d, wd), Operand::Reg(s, ws)) => {
                    if wd != ws {
                        return err(ln, "mov operand widths differ");
                    }
                    if !matches!(wd, OpWidth::B32 | OpWidth::B64) {
                        return err(ln, "narrow reg-reg mov: use movzx/movsx");
                    }
                    SymInst::Real(Inst::MovRR {
                        w: wd,
                        dst: d,
                        src: s,
                    })
                }
                (Operand::Reg(d, OpWidth::B64), Operand::Imm(imm)) => {
                    SymInst::Real(Inst::MovRI { dst: d, imm })
                }
                (Operand::Reg(d, w), Operand::Mem(kw, mem)) => {
                    if let Some(kw) = kw {
                        if kw != w {
                            return err(ln, "size keyword disagrees with register width");
                        }
                    }
                    if !matches!(w, OpWidth::B32 | OpWidth::B64) {
                        return err(ln, "narrow loads: use movzx/movsx");
                    }
                    SymInst::Real(Inst::MovLoad { w, dst: d, mem })
                }
                (Operand::Mem(kw, mem), Operand::Reg(s, w)) => {
                    if let Some(kw) = kw {
                        if kw != w {
                            return err(ln, "size keyword disagrees with register width");
                        }
                    }
                    SymInst::Real(Inst::MovStore { w, mem, src: s })
                }
                (Operand::Mem(Some(w), mem), Operand::Imm(imm)) => {
                    let imm = i32::try_from(imm).map_err(|_| AsmError {
                        line: ln,
                        message: "store immediate overflows i32".into(),
                    })?;
                    SymInst::Real(Inst::MovStoreImm { w, mem, imm })
                }
                (Operand::Mem(None, _), Operand::Imm(_)) => {
                    return err(ln, "store of immediate needs a size keyword")
                }
                _ => return err(ln, "unsupported mov operand combination"),
            }
        }
        "movzx" | "movsx" => {
            need(2)?;
            let Operand::Reg(dst, OpWidth::B64) = parse_operand(ln, parts[0])? else {
                return err(ln, format!("{mn} destination must be a 64-bit register"));
            };
            let (from, src) = match parse_operand(ln, parts[1])? {
                Operand::Reg(r, w) => (w, Rm::Reg(r)),
                Operand::Mem(Some(w), mem) => (w, Rm::Mem(mem)),
                Operand::Mem(None, _) => {
                    return err(ln, format!("{mn} memory source needs a size keyword"))
                }
                Operand::Imm(_) => return err(ln, format!("{mn} source cannot be immediate")),
            };
            let ok = matches!(
                (mn, from),
                ("movzx", OpWidth::B8 | OpWidth::B16)
                    | ("movsx", OpWidth::B8 | OpWidth::B16 | OpWidth::B32)
            );
            if !ok {
                return err(ln, format!("{mn} cannot widen from {} bits", from.bits()));
            }
            if mn == "movzx" {
                SymInst::Real(Inst::MovZx { from, dst, src })
            } else {
                SymInst::Real(Inst::MovSx { from, dst, src })
            }
        }
        "lea" => {
            need(2)?;
            let Operand::Reg(dst, OpWidth::B64) = parse_operand(ln, parts[0])? else {
                return err(ln, "lea destination must be a 64-bit register");
            };
            if let Some(name) = parts[1].strip_prefix("func ") {
                SymInst::LeaFunc(dst, name.trim().to_string())
            } else if let Some(name) = parts[1].strip_prefix("global ") {
                SymInst::LeaGlobal(dst, name.trim().to_string())
            } else {
                let Operand::Mem(_, mem) = parse_operand(ln, parts[1])? else {
                    return err(ln, "lea source must be a memory operand");
                };
                SymInst::Real(Inst::Lea { dst, mem })
            }
        }
        _ if alu_of(mn).is_some() => {
            let op = alu_of(mn).unwrap();
            need(2)?;
            let Operand::Reg(dst, OpWidth::B64) = parse_operand(ln, parts[0])? else {
                return err(ln, format!("{mn} destination must be a 64-bit register"));
            };
            match parse_operand(ln, parts[1])? {
                Operand::Reg(src, OpWidth::B64) => SymInst::Real(Inst::AluRR { op, dst, src }),
                Operand::Reg(..) => return err(ln, format!("{mn} source must be 64-bit")),
                Operand::Imm(imm) => {
                    let imm = i32::try_from(imm).map_err(|_| AsmError {
                        line: ln,
                        message: "ALU immediate overflows i32".into(),
                    })?;
                    SymInst::Real(Inst::AluRI { op, dst, imm })
                }
                Operand::Mem(kw, mem) => {
                    if matches!(kw, Some(w) if w != OpWidth::B64) {
                        return err(ln, format!("{mn} memory source must be qword"));
                    }
                    SymInst::Real(Inst::AluRM { op, dst, mem })
                }
            }
        }
        "test" => {
            need(2)?;
            let (Operand::Reg(a, OpWidth::B64), Operand::Reg(b, OpWidth::B64)) =
                (parse_operand(ln, parts[0])?, parse_operand(ln, parts[1])?)
            else {
                return err(ln, "test expects two 64-bit registers");
            };
            SymInst::Real(Inst::TestRR { a, b })
        }
        "shl" | "shr" => {
            need(2)?;
            let Operand::Reg(dst, OpWidth::B64) = parse_operand(ln, parts[0])? else {
                return err(ln, format!("{mn} destination must be a 64-bit register"));
            };
            let Operand::Imm(amt) = parse_operand(ln, parts[1])? else {
                return err(ln, format!("{mn} amount must be immediate"));
            };
            let amt = u8::try_from(amt).ok().filter(|a| *a < 64).ok_or(AsmError {
                line: ln,
                message: "shift amount must be 0-63".into(),
            })?;
            let sh = if mn == "shl" { Shift::Shl } else { Shift::Shr };
            SymInst::Real(Inst::ShiftRI { sh, dst, amt })
        }
        "push" | "pop" => {
            need(1)?;
            let Operand::Reg(reg, OpWidth::B64) = parse_operand(ln, parts[0])? else {
                return err(ln, format!("{mn} expects a 64-bit register"));
            };
            if mn == "push" {
                SymInst::Real(Inst::Push { reg })
            } else {
                SymInst::Real(Inst::Pop { reg })
            }
        }
        "jmp" => {
            need(1)?;
            SymInst::JmpLabel(parts[0].to_string())
        }
        "call" => {
            need(1)?;
            let target = parts[0];
            if func_names.iter().any(|n| n == target) {
                SymInst::CallFunc(target.to_string())
            } else if extern_names.iter().any(|n| n == target) {
                SymInst::CallExtern(target.to_string())
            } else if let Some((reg, OpWidth::B64)) = parse_reg(target) {
                SymInst::Real(Inst::CallInd { reg })
            } else {
                return err(ln, format!("unknown call target `{target}`"));
            }
        }
        "ret" => {
            need(0)?;
            SymInst::Real(Inst::Ret)
        }
        other => return err(ln, format!("unknown mnemonic `{other}`")),
    })
}

/// Splits operands on top-level commas (commas inside `[...]` don't occur in
/// this syntax, but keep the split simple and explicit).
fn split_operands(rest: &str) -> Vec<&str> {
    rest.split(',').map(str::trim).collect()
}

/// Renders an image back to assembly text that [`assemble`] parses to an
/// identical image.
///
/// # Errors
///
/// Returns [`ImageError`] when the text bytes don't decode, or when a call
/// or RIP reference points at no known function, extern or global.
pub fn disassemble(image: &Image) -> std::result::Result<String, ImageError> {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", image.name);
    for e in &image.externs {
        let ret = if e.has_ret { ", ret" } else { "" };
        let _ = writeln!(out, "extern {}, {}{}", e.name, e.nparams, ret);
    }
    for g in &image.globals {
        let _ = writeln!(out, "global {}, {}", g.name, g.size);
    }
    for (fi, f) in image.functions.iter().enumerate() {
        let ret = if f.has_ret { "ret" } else { "void" };
        let _ = writeln!(out, "\nfunc {}({}) -> {} {{", f.name, f.nparams, ret);
        let code = &image.text[f.offset as usize..(f.offset + f.len) as usize];
        let insts = decode_all(code).map_err(|e| ImageError {
            message: format!("function `{}`: {}", f.name, e.message),
        })?;
        // Collect branch-target offsets for labels.
        let mut targets: Vec<u64> = Vec::new();
        for (inst, off, len) in &insts {
            let next = *off as u64 + *len as u64;
            match inst {
                Inst::Jmp { rel } | Inst::Jcc { rel, .. } => {
                    targets.push(next.wrapping_add(*rel as i64 as u64));
                }
                _ => {}
            }
        }
        targets.sort_unstable();
        targets.dedup();

        for (inst, off, len) in &insts {
            if targets.contains(&(*off as u64)) {
                let _ = writeln!(out, "L{off}:");
            }
            let next_off = *off as u64 + *len as u64;
            match inst {
                Inst::Jmp { rel } => {
                    let t = next_off.wrapping_add(*rel as i64 as u64);
                    let _ = writeln!(out, "    jmp L{t}");
                }
                Inst::Jcc { cc, rel } => {
                    let t = next_off.wrapping_add(*rel as i64 as u64);
                    let _ = writeln!(out, "    j{} L{t}", cc.mnemonic());
                }
                Inst::Call { rel } => {
                    let addr =
                        (TEXT_BASE + f.offset as u64 + next_off).wrapping_add(*rel as i64 as u64);
                    if let Some(ti) = image.func_at_addr(addr) {
                        let _ = writeln!(out, "    call {}", image.functions[ti].name);
                    } else if let Some(ei) = image.plt_at_addr(addr) {
                        let _ = writeln!(out, "    call {}", image.externs[ei].name);
                    } else {
                        return Err(ImageError {
                            message: format!("call target {addr:#x} matches no symbol"),
                        });
                    }
                }
                Inst::Lea {
                    dst,
                    mem: Mem::Rip { disp },
                } => {
                    let addr = rip_target(image, fi, next_off, *disp);
                    if let Some(ti) = image.func_at_addr(addr) {
                        let _ = writeln!(out, "    lea {dst}, func {}", image.functions[ti].name);
                    } else if let Some((gi, 0)) = image.global_at_addr(addr) {
                        let _ = writeln!(out, "    lea {dst}, global {}", image.globals[gi].name);
                    } else {
                        return Err(ImageError {
                            message: format!("rip reference {addr:#x} matches no symbol"),
                        });
                    }
                }
                other => {
                    let _ = writeln!(out, "    {other}");
                }
            }
        }
        out.push_str("}\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
module demo
extern malloc, 1, ret
global table, 64

func helper(1) -> ret {
    mov rax, rdi
    add rax, 1
    ret
}

func main(0) -> ret {
    push rbp
    mov rbp, rsp
    sub rsp, 16
    mov rdi, 16
    call malloc
    mov qword [rbp-8], rax
    mov rax, qword [rbp-8]
    test rax, rax
    je out
    mov rdi, rax
    call helper
out:
    lea rsi, global table
    lea rdx, func helper
    mov rsp, rbp
    pop rbp
    ret
}
"#;

    #[test]
    fn assembles_sample() {
        let img = assemble(SAMPLE).unwrap();
        assert_eq!(img.name, "demo");
        assert_eq!(img.externs.len(), 1);
        assert_eq!(img.globals.len(), 1);
        assert_eq!(img.functions.len(), 2);
        // Every function body decodes cleanly.
        for f in &img.functions {
            let code = &img.text[f.offset as usize..(f.offset + f.len) as usize];
            decode_all(code).unwrap();
        }
    }

    #[test]
    fn disassemble_roundtrip() {
        let img = assemble(SAMPLE).unwrap();
        let text = disassemble(&img).unwrap();
        let img2 = assemble(&text).unwrap();
        assert_eq!(img, img2);
    }

    #[test]
    fn memory_operand_forms() {
        let text = "module m\nfunc f(0) -> void {\n    mov rax, qword [rbx+rcx*8+16]\n    mov rdx, qword [rsp+8]\n    mov ecx, dword [rbp-4]\n    ret\n}\n";
        let img = assemble(text).unwrap();
        let f = &img.functions[0];
        let code = &img.text[f.offset as usize..(f.offset + f.len) as usize];
        let insts = decode_all(code).unwrap();
        assert!(matches!(
            insts[0].0,
            Inst::MovLoad {
                mem: Mem::BaseIndex { scale: 8, .. },
                ..
            }
        ));
    }

    #[test]
    fn unknown_call_target_reports_line() {
        let bad = "module m\nfunc f(0) -> void {\n    call ghost\n}\n";
        let e = assemble(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn sub_register_mnemonics() {
        let text = "module m\nfunc f(1) -> ret {\n    movzx rax, dil\n    movsx rcx, eax\n    mov eax, ecx\n    ret\n}\n";
        let img = assemble(text).unwrap();
        let f = &img.functions[0];
        let code = &img.text[f.offset as usize..(f.offset + f.len) as usize];
        let insts = decode_all(code).unwrap();
        assert!(matches!(
            insts[0].0,
            Inst::MovZx {
                from: OpWidth::B8,
                src: Rm::Reg(Gpr::RDI),
                ..
            }
        ));
        assert!(matches!(
            insts[2].0,
            Inst::MovRR {
                w: OpWidth::B32,
                ..
            }
        ));
    }
}
