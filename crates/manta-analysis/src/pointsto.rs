//! Field-sensitive inclusion-based points-to analysis over the block memory
//! model (paper §3, "Points-to Analysis").
//!
//! Global and stack memory is partitioned into disjoint abstract objects;
//! heap objects use allocation-site abstraction; `gep` materializes *field*
//! objects beneath their parent (the block memory model). The analysis
//! reproduces the paper's well-identified unsound choices:
//!
//! * function pointers are **not** modeled (no objects flow through
//!   indirect calls);
//! * symbolic indexing (`ptr + variable`) collapses an array/object into a
//!   monolithic object — the result aliases the base;
//! * calls whose call-graph edge was broken (recursion) are opaque;
//! * unmodeled externals have no effect;
//! * parameters of a function are assumed not to alias each other.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use manta_ir::{
    BinOp, Callee, ExternEffect, FuncId, GlobalId, InstId, InstKind, Terminator, ValueId,
};

use crate::callgraph::CallGraph;
use crate::preprocess::Preprocessed;
use crate::VarRef;

/// Identifies an abstract memory object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// What an abstract object abstracts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectKind {
    /// A stack slot (`alloca` site).
    Stack {
        /// Function containing the slot.
        func: FuncId,
        /// The `alloca` instruction.
        site: InstId,
        /// Slot size in bytes.
        size: u64,
    },
    /// A heap allocation site (`malloc`/`calloc` call).
    Heap {
        /// Function containing the allocation.
        func: FuncId,
        /// The call instruction.
        site: InstId,
    },
    /// A module global.
    Global(GlobalId),
    /// A field at a constant offset inside another object (block memory
    /// model).
    Field {
        /// The enclosing object.
        parent: ObjectId,
        /// Byte offset of the field.
        offset: u64,
    },
    /// A buffer returned by a modeled external (e.g. `nvram_get`).
    ExternBuf {
        /// Function containing the call.
        func: FuncId,
        /// The call instruction.
        site: InstId,
    },
}

/// Internal propagation-graph node: a variable or an object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Node {
    Var(VarRef),
    Obj(ObjectId),
}

/// Points-to results: the map `ℙ : 𝕍 ∪ 𝕆 → 2^𝕆` of Figure 5.
#[derive(Debug)]
pub struct PointsTo {
    objects: Vec<ObjectKind>,
    field_intern: HashMap<(ObjectId, u64), ObjectId>,
    pts: HashMap<Node, BTreeSet<ObjectId>>,
    /// Number of solver iterations used (reported by scalability figures).
    pub iterations: usize,
}

static EMPTY: BTreeSet<ObjectId> = BTreeSet::new();

impl PointsTo {
    /// Solves points-to constraints for the preprocessed module.
    pub fn solve(pre: &Preprocessed, _cg: &CallGraph) -> PointsTo {
        let unlimited = manta_resilience::Budget::unlimited();
        match Solver::new(pre).run(&unlimited) {
            Ok(p) => p,
            // A fresh unlimited budget never trips.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// Solves points-to constraints under a cooperative budget. Fuel is
    /// charged per propagation-graph node visited and per solver round,
    /// so runaway fixpoints are cut off mid-flight.
    ///
    /// # Errors
    ///
    /// Returns [`manta_resilience::BudgetExceeded`] when `budget` trips;
    /// partial solver state is discarded (points-to results are only
    /// meaningful at fixpoint).
    pub fn solve_budgeted(
        pre: &Preprocessed,
        _cg: &CallGraph,
        budget: &manta_resilience::Budget,
    ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
        Solver::new(pre).run(budget)
    }

    /// Points-to set of variable `v`.
    pub fn pts_var(&self, v: VarRef) -> &BTreeSet<ObjectId> {
        self.pts.get(&Node::Var(v)).unwrap_or(&EMPTY)
    }

    /// Points-to set of the contents of object `o`.
    pub fn pts_obj(&self, o: ObjectId) -> &BTreeSet<ObjectId> {
        self.pts.get(&Node::Obj(o)).unwrap_or(&EMPTY)
    }

    /// The kind of object `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not an object of this analysis.
    pub fn object_kind(&self, o: ObjectId) -> ObjectKind {
        self.objects[o.index()]
    }

    /// Iterates over all objects.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, ObjectKind)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, &k)| (ObjectId(i as u32), k))
    }

    /// Number of abstract objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The field object `(parent, offset)` if it was materialized.
    pub fn field_of(&self, parent: ObjectId, offset: u64) -> Option<ObjectId> {
        self.field_intern.get(&(parent, offset)).copied()
    }

    /// Whether two variables may point to a common object.
    pub fn may_alias(&self, a: VarRef, b: VarRef) -> bool {
        let (pa, pb) = (self.pts_var(a), self.pts_var(b));
        if pa.len() <= pb.len() {
            pa.iter().any(|o| pb.contains(o))
        } else {
            pb.iter().any(|o| pa.contains(o))
        }
    }
}

struct Solver<'a> {
    pre: &'a Preprocessed,
    objects: Vec<ObjectKind>,
    field_intern: HashMap<(ObjectId, u64), ObjectId>,
    pts: HashMap<Node, BTreeSet<ObjectId>>,
    /// Simple inclusion edges `src ⊆ dst`.
    copy_edges: HashMap<Node, Vec<Node>>,
    /// Complex constraints re-evaluated each round.
    loads: Vec<(VarRef, VarRef)>, // (addr, dst)
    stores: Vec<(VarRef, VarRef)>,    // (addr, val)
    geps: Vec<(VarRef, VarRef, u64)>, // (base, dst, offset)
    collapses: Vec<(VarRef, VarRef)>, // (operand, dst) — symbolic indexing
}

impl<'a> Solver<'a> {
    fn new(pre: &'a Preprocessed) -> Self {
        Solver {
            pre,
            objects: Vec::new(),
            field_intern: HashMap::new(),
            pts: HashMap::new(),
            copy_edges: HashMap::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            geps: Vec::new(),
            collapses: Vec::new(),
        }
    }

    fn new_object(&mut self, kind: ObjectKind) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(kind);
        id
    }

    fn field(&mut self, parent: ObjectId, offset: u64) -> ObjectId {
        if let Some(&f) = self.field_intern.get(&(parent, offset)) {
            return f;
        }
        let f = self.new_object(ObjectKind::Field { parent, offset });
        self.field_intern.insert((parent, offset), f);
        f
    }

    fn add_obj(&mut self, n: Node, o: ObjectId) -> bool {
        self.pts.entry(n).or_default().insert(o)
    }

    fn add_copy(&mut self, src: Node, dst: Node) {
        self.copy_edges.entry(src).or_default().push(dst);
    }

    fn run(
        mut self,
        budget: &manta_resilience::Budget,
    ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
        self.collect_constraints();
        // Fixpoint: propagate along copy edges, then re-derive complex
        // constraints; repeat until stable.
        let mut iterations = 0;
        loop {
            iterations += 1;
            budget.tick()?;
            let mut changed = false;
            // Copy propagation to a local fixpoint.
            loop {
                budget.tick()?;
                let mut inner_changed = false;
                let srcs: Vec<Node> = self.copy_edges.keys().copied().collect();
                for src in srcs {
                    budget.tick()?;
                    let set = match self.pts.get(&src) {
                        Some(s) if !s.is_empty() => s.clone(),
                        _ => continue,
                    };
                    let dsts = self.copy_edges[&src].clone();
                    for dst in dsts {
                        for &o in &set {
                            if self.add_obj(dst, o) {
                                inner_changed = true;
                            }
                        }
                    }
                }
                if !inner_changed {
                    break;
                }
                changed = true;
            }
            // Complex constraints.
            budget.consume(
                (self.geps.len() + self.collapses.len() + self.loads.len() + self.stores.len())
                    as u64,
            )?;
            for (base, dst, offset) in self.geps.clone() {
                let bases = self.pts.get(&Node::Var(base)).cloned().unwrap_or_default();
                for b in bases {
                    let f = self.field(b, offset);
                    if self.add_obj(Node::Var(dst), f) {
                        changed = true;
                    }
                }
            }
            for (operand, dst) in self.collapses.clone() {
                // Symbolic indexing: the result aliases the base object
                // monolithically.
                let set = self
                    .pts
                    .get(&Node::Var(operand))
                    .cloned()
                    .unwrap_or_default();
                for o in set {
                    if self.add_obj(Node::Var(dst), o) {
                        changed = true;
                    }
                }
            }
            for (addr, dst) in self.loads.clone() {
                let addrs = self.pts.get(&Node::Var(addr)).cloned().unwrap_or_default();
                for o in addrs {
                    let contents = self.pts.get(&Node::Obj(o)).cloned().unwrap_or_default();
                    for c in contents {
                        if self.add_obj(Node::Var(dst), c) {
                            changed = true;
                        }
                    }
                }
            }
            for (addr, val) in self.stores.clone() {
                let addrs = self.pts.get(&Node::Var(addr)).cloned().unwrap_or_default();
                let vals = self.pts.get(&Node::Var(val)).cloned().unwrap_or_default();
                for o in addrs {
                    for &v in &vals {
                        if self.add_obj(Node::Obj(o), v) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        manta_telemetry::counter("pointsto.worklist_iters", iterations as u64);
        manta_telemetry::counter("pointsto.objects", self.objects.len() as u64);
        Ok(PointsTo {
            objects: self.objects,
            field_intern: self.field_intern,
            pts: self.pts,
            iterations,
        })
    }

    fn collect_constraints(&mut self) {
        let module = &self.pre.module;
        // Global objects exist once per global.
        let mut global_objs: HashMap<GlobalId, ObjectId> = HashMap::new();
        for g in module.globals() {
            let o = self.new_object(ObjectKind::Global(g.id));
            global_objs.insert(g.id, o);
        }

        for func in module.functions() {
            let fid = func.id();
            let var = |v: ValueId| Node::Var(VarRef::new(fid, v));
            // Address-of constraints for global-address constants.
            for (v, data) in func.values() {
                if let manta_ir::ValueKind::GlobalAddr(g) = data.kind {
                    let o = global_objs[&g];
                    self.add_obj(var(v), o);
                }
            }
            // Return values of this function, used for call-return binding.
            let mut rets: Vec<ValueId> = Vec::new();
            for b in func.blocks() {
                if let Terminator::Ret(Some(v)) = b.term {
                    rets.push(v);
                }
            }
            for inst in func.insts() {
                match &inst.kind {
                    InstKind::Copy { dst, src } => self.add_copy(var(*src), var(*dst)),
                    InstKind::Phi { dst, incomings } => {
                        for (_, v) in incomings {
                            self.add_copy(var(*v), var(*dst));
                        }
                    }
                    InstKind::Alloca { dst, size } => {
                        let o = self.new_object(ObjectKind::Stack {
                            func: fid,
                            site: inst.id,
                            size: *size,
                        });
                        self.add_obj(var(*dst), o);
                    }
                    InstKind::Gep { dst, base, offset } => {
                        self.geps
                            .push((VarRef::new(fid, *base), VarRef::new(fid, *dst), *offset));
                    }
                    InstKind::Load { dst, addr, .. } => {
                        self.loads
                            .push((VarRef::new(fid, *addr), VarRef::new(fid, *dst)));
                    }
                    InstKind::Store { addr, val } => {
                        self.stores
                            .push((VarRef::new(fid, *addr), VarRef::new(fid, *val)));
                    }
                    InstKind::BinOp {
                        op: BinOp::Add | BinOp::Sub,
                        dst,
                        lhs,
                        rhs,
                    } => {
                        // Pointer arithmetic with a non-constant offset:
                        // collapse to the base objects (both operands are
                        // candidates; non-pointers contribute nothing).
                        self.collapses
                            .push((VarRef::new(fid, *lhs), VarRef::new(fid, *dst)));
                        self.collapses
                            .push((VarRef::new(fid, *rhs), VarRef::new(fid, *dst)));
                    }
                    InstKind::BinOp { .. } | InstKind::Cmp { .. } => {}
                    InstKind::Call { dst, callee, args } => match callee {
                        Callee::Direct(target) => {
                            if self.pre.is_broken_call(fid, inst.id) {
                                continue;
                            }
                            let tf = module.function(*target);
                            for (i, &a) in args.iter().enumerate() {
                                if let Some(&p) = tf.params().get(i) {
                                    self.add_copy(var(a), Node::Var(VarRef::new(*target, p)));
                                }
                            }
                            if let Some(d) = dst {
                                // Bind all return values of the callee.
                                let mut trets: Vec<ValueId> = Vec::new();
                                for b in tf.blocks() {
                                    if let Terminator::Ret(Some(v)) = b.term {
                                        trets.push(v);
                                    }
                                }
                                for r in trets {
                                    self.add_copy(Node::Var(VarRef::new(*target, r)), var(*d));
                                }
                            }
                        }
                        Callee::Extern(e) => {
                            let decl = module.extern_decl(*e);
                            match decl.effect {
                                ExternEffect::AllocHeap => {
                                    if let Some(d) = dst {
                                        let o = self.new_object(ObjectKind::Heap {
                                            func: fid,
                                            site: inst.id,
                                        });
                                        self.add_obj(var(*d), o);
                                    }
                                }
                                ExternEffect::TaintSource => {
                                    if let Some(d) = dst {
                                        let o = self.new_object(ObjectKind::ExternBuf {
                                            func: fid,
                                            site: inst.id,
                                        });
                                        self.add_obj(var(*d), o);
                                    }
                                }
                                ExternEffect::StrCopy => {
                                    // strcpy returns its destination.
                                    if let (Some(d), Some(&a0)) = (dst, args.first()) {
                                        self.add_copy(var(a0), var(*d));
                                    }
                                }
                                _ => {}
                            }
                        }
                        // Function pointers are not modeled (paper §3).
                        Callee::Indirect(_) => {}
                    },
                }
            }
            let _ = rets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use manta_ir::{ModuleBuilder, Width};

    fn analyze(m: manta_ir::Module) -> (Preprocessed, PointsTo) {
        let pre = preprocess(m, PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let pts = PointsTo::solve(&pre, &cg);
        (pre, pts)
    }

    #[test]
    fn alloca_and_copy() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let a = fb.alloca(8);
        let b = fb.copy(a);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let va = VarRef::new(fid, a);
        let vb = VarRef::new(fid, b);
        assert_eq!(pts.pts_var(va).len(), 1);
        assert_eq!(pts.pts_var(va), pts.pts_var(vb));
        assert!(pts.may_alias(va, vb));
    }

    #[test]
    fn store_load_through_object() {
        // q = alloca; *q = p(heap); r = *q  ⇒  r points to the heap object.
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (fid, mut fb) = mb.function("f", &[], None);
        let sz = fb.const_int(16, Width::W64);
        let p = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
        let q = fb.alloca(8);
        fb.store(q, p);
        let r = fb.load(q, Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let heap: Vec<_> = pts.pts_var(VarRef::new(fid, p)).iter().copied().collect();
        assert_eq!(heap.len(), 1);
        assert!(matches!(pts.object_kind(heap[0]), ObjectKind::Heap { .. }));
        assert_eq!(
            pts.pts_var(VarRef::new(fid, r)),
            pts.pts_var(VarRef::new(fid, p))
        );
    }

    #[test]
    fn gep_materializes_fields() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let s = fb.alloca(16);
        let f0 = fb.gep(s, 0);
        let f8 = fb.gep(s, 8);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let base = *pts.pts_var(VarRef::new(fid, s)).iter().next().unwrap();
        let o0 = *pts.pts_var(VarRef::new(fid, f0)).iter().next().unwrap();
        let o8 = *pts.pts_var(VarRef::new(fid, f8)).iter().next().unwrap();
        assert_ne!(o0, o8, "distinct offsets are distinct field objects");
        assert_eq!(pts.field_of(base, 0), Some(o0));
        assert_eq!(pts.field_of(base, 8), Some(o8));
        assert!(!pts.may_alias(VarRef::new(fid, f0), VarRef::new(fid, f8)));
    }

    #[test]
    fn symbolic_indexing_collapses() {
        // r = base + i  ⇒  r aliases base (monolithic collapse).
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], None);
        let i = fb.param(0);
        let base = fb.alloca(64);
        let r = fb.binop(BinOp::Add, base, i, Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        assert!(pts.may_alias(VarRef::new(fid, base), VarRef::new(fid, r)));
    }

    #[test]
    fn interprocedural_param_and_return_binding() {
        // id(x) { return x; }  caller: y = id(stack_addr)
        let mut mb = ModuleBuilder::new("m");
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);
        let (caller, mut cb) = mb.function("caller", &[], None);
        let s = cb.alloca(8);
        let y = cb.call(id_f, &[s], Some(Width::W64)).unwrap();
        cb.ret(None);
        mb.finish_function(cb);
        let (pre, pts) = analyze(mb.finish());
        let id_f = pre.module.function_by_name("id").unwrap().id();
        let xp = pre.module.function(id_f).params()[0];
        assert_eq!(pts.pts_var(VarRef::new(id_f, xp)).len(), 1);
        assert_eq!(
            pts.pts_var(VarRef::new(caller, y)),
            pts.pts_var(VarRef::new(caller, s))
        );
    }

    #[test]
    fn globals_are_objects() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("cfg", 32);
        let (fid, mut fb) = mb.function("f", &[], None);
        let ga = fb.global_addr(g);
        let v = fb.load(ga, Width::W64);
        let _ = v;
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let set = pts.pts_var(VarRef::new(fid, ga));
        assert_eq!(set.len(), 1);
        assert!(matches!(
            pts.object_kind(*set.iter().next().unwrap()),
            ObjectKind::Global(_)
        ));
    }

    #[test]
    fn indirect_calls_are_opaque() {
        let mut mb = ModuleBuilder::new("m");
        let (target, mut tb) = mb.function("target", &[Width::W64], None);
        tb.ret(None);
        mb.finish_function(tb);
        mb.mark_address_taken(target);
        let (fid, mut fb) = mb.function("f", &[], None);
        let fp = fb.func_addr(target);
        let s = fb.alloca(8);
        fb.call_indirect(fp, &[s], None);
        fb.ret(None);
        mb.finish_function(fb);
        let (pre, pts) = analyze(mb.finish());
        let target = pre.module.function_by_name("target").unwrap().id();
        let p = pre.module.function(target).params()[0];
        // Function pointers unmodeled ⇒ nothing flows into the target param.
        assert!(pts.pts_var(VarRef::new(target, p)).is_empty());
        let _ = fid;
    }
}
