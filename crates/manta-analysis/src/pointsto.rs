//! Field-sensitive inclusion-based points-to analysis over the block memory
//! model (paper §3, "Points-to Analysis").
//!
//! Global and stack memory is partitioned into disjoint abstract objects;
//! heap objects use allocation-site abstraction; `gep` materializes *field*
//! objects beneath their parent (the block memory model). The analysis
//! reproduces the paper's well-identified unsound choices:
//!
//! * function pointers are **not** modeled (no objects flow through
//!   indirect calls);
//! * symbolic indexing (`ptr + variable`) collapses an array/object into a
//!   monolithic object — the result aliases the base;
//! * calls whose call-graph edge was broken (recursion) are opaque;
//! * unmodeled externals have no effect;
//! * parameters of a function are assumed not to alias each other.
//!
//! ## Solving
//!
//! The production solver ([`DeltaSolver`]) is a delta-propagation worklist
//! solver in the difference-propagation tradition: nodes live in a dense
//! `u32` arena (per-function variable bases, then object nodes), points-to
//! sets are hybrid sorted-vec/bitset [`ObjSet`]s with a `diff`/`union`
//! API, and each node carries a *delta* — the objects added since the node
//! was last visited — so the copy/load/store/gep rules only ever process
//! new objects. Copy edges are deduplicated at insertion, and copy-SCCs
//! are collapsed online into a union-find representative so cyclic copy
//! chains cannot ping-pong.
//!
//! The historical whole-set fixpoint solver is kept behind
//! `#[cfg(any(test, feature = "reference-solver"))]` as
//! [`PointsTo::solve_reference`] for differential testing: both solvers
//! consume the same [`Constraints`] and must agree on every points-to
//! relation (object *numbering* of field objects may differ — fields
//! materialize in solver-visit order — so comparisons go through
//! [`ObjectKind`] chains, not raw ids).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

use manta_ir::{
    BinOp, Callee, ExternEffect, FuncId, GlobalId, InstId, InstKind, Terminator, ValueId,
};

use crate::callgraph::CallGraph;
use crate::preprocess::Preprocessed;
use crate::VarRef;

/// Identifies an abstract memory object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// What an abstract object abstracts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectKind {
    /// A stack slot (`alloca` site).
    Stack {
        /// Function containing the slot.
        func: FuncId,
        /// The `alloca` instruction.
        site: InstId,
        /// Slot size in bytes.
        size: u64,
    },
    /// A heap allocation site (`malloc`/`calloc` call).
    Heap {
        /// Function containing the allocation.
        func: FuncId,
        /// The call instruction.
        site: InstId,
    },
    /// A module global.
    Global(GlobalId),
    /// A field at a constant offset inside another object (block memory
    /// model).
    Field {
        /// The enclosing object.
        parent: ObjectId,
        /// Byte offset of the field.
        offset: u64,
    },
    /// A buffer returned by a modeled external (e.g. `nvram_get`).
    ExternBuf {
        /// Function containing the call.
        func: FuncId,
        /// The call instruction.
        site: InstId,
    },
}

/// Internal propagation-graph node: a variable or an object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Node {
    Var(VarRef),
    Obj(ObjectId),
}

/// Per-visit delta cardinality: the work-shape of the delta solver (a
/// heavy tail means a few nodes re-propagate huge sets).
static DELTA_SIZES: manta_telemetry::Histogram =
    manta_telemetry::Histogram::new("pointsto.delta_size");
/// Largest points-to set cardinality seen at any fixpoint this run.
static PEAK_PTS: manta_telemetry::Counter = manta_telemetry::Counter::new("pointsto.peak_pts");

/// Why a points-to fact `n ∋ o` first appeared (first derivation wins —
/// later re-derivations of the same fact are not recorded).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PtsSource {
    /// An address-of seed (`alloca`, heap/extern allocation site,
    /// global address constant).
    Seed,
    /// Propagated along a copy edge from a variable.
    CopiedFromVar(VarRef),
    /// Propagated along a copy edge from an object's contents (the
    /// load/store rules materialize these edges).
    CopiedFromObj(ObjectId),
    /// A field object materialized by `gep` beneath this parent.
    FieldOf(ObjectId),
}

/// First-derivation provenance of the points-to relation, recorded only
/// while [`manta_telemetry::provenance_enabled`]. Facts whose node was
/// merged into a copy-SCC representative are recorded under the
/// representative's variable/object.
#[derive(Clone, Debug, Default)]
pub struct PointsToProvenance {
    /// `(v, o)` → how `v ∋ o` was first derived.
    pub var_origins: HashMap<(VarRef, ObjectId), PtsSource>,
    /// `(container, o)` → how `container ∋ o` was first derived.
    pub obj_origins: HashMap<(ObjectId, ObjectId), PtsSource>,
}

/// Points-to results: the map `ℙ : 𝕍 ∪ 𝕆 → 2^𝕆` of Figure 5.
#[derive(Debug)]
pub struct PointsTo {
    objects: Vec<ObjectKind>,
    field_intern: HashMap<(ObjectId, u64), ObjectId>,
    pts: HashMap<Node, BTreeSet<ObjectId>>,
    /// Number of solver worklist visits (reported by scalability figures).
    pub iterations: usize,
    /// Dense propagation-graph node count at fixpoint (variables plus
    /// objects, including materialized fields). 0 for the reference
    /// solver, which has no dense arena.
    pub constraint_nodes: usize,
    /// Copy edges inserted over the whole solve (deduplicated at
    /// insertion; includes edges the load/store rules added online).
    pub constraint_edges: usize,
    /// Copy-SCC collapse merges performed by the delta solver.
    pub scc_merges: usize,
    /// Largest points-to set cardinality at fixpoint.
    pub peak_pts: usize,
    /// Derivation provenance; `Some` only when provenance recording was
    /// on during the solve.
    pub provenance: Option<PointsToProvenance>,
}

static EMPTY: BTreeSet<ObjectId> = BTreeSet::new();

impl PointsTo {
    /// Solves points-to constraints for the preprocessed module with the
    /// delta-propagation solver.
    pub fn solve(pre: &Preprocessed, _cg: &CallGraph) -> PointsTo {
        let unlimited = manta_resilience::Budget::unlimited();
        match DeltaSolver::new(pre).run(&unlimited) {
            Ok(p) => p,
            // A fresh unlimited budget never trips.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// Solves points-to constraints under a cooperative budget. Fuel is
    /// charged per worklist visit and per delta element propagated, so
    /// runaway fixpoints are cut off mid-flight.
    ///
    /// # Errors
    ///
    /// Returns [`manta_resilience::BudgetExceeded`] when `budget` trips;
    /// partial solver state is discarded (points-to results are only
    /// meaningful at fixpoint).
    pub fn solve_budgeted(
        pre: &Preprocessed,
        _cg: &CallGraph,
        budget: &manta_resilience::Budget,
    ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
        DeltaSolver::new(pre).run(budget)
    }

    /// Solves with the historical whole-set fixpoint solver. Kept only as
    /// the differential-testing oracle for the delta solver.
    #[cfg(any(test, feature = "reference-solver"))]
    pub fn solve_reference(pre: &Preprocessed, _cg: &CallGraph) -> PointsTo {
        let unlimited = manta_resilience::Budget::unlimited();
        match reference::Solver::new(pre).run(&unlimited) {
            Ok(p) => p,
            // A fresh unlimited budget never trips.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// Points-to set of variable `v`.
    pub fn pts_var(&self, v: VarRef) -> &BTreeSet<ObjectId> {
        self.pts.get(&Node::Var(v)).unwrap_or(&EMPTY)
    }

    /// Points-to set of the contents of object `o`.
    pub fn pts_obj(&self, o: ObjectId) -> &BTreeSet<ObjectId> {
        self.pts.get(&Node::Obj(o)).unwrap_or(&EMPTY)
    }

    /// The kind of object `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not an object of this analysis.
    pub fn object_kind(&self, o: ObjectId) -> ObjectKind {
        self.objects[o.index()]
    }

    /// Iterates over all objects.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, ObjectKind)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, &k)| (ObjectId(i as u32), k))
    }

    /// Number of abstract objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The largest points-to set cardinality over all variables and
    /// objects (the "peak" reported by the benchmark harness).
    pub fn max_pts_len(&self) -> usize {
        self.pts.values().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// The field object `(parent, offset)` if it was materialized.
    pub fn field_of(&self, parent: ObjectId, offset: u64) -> Option<ObjectId> {
        self.field_intern.get(&(parent, offset)).copied()
    }

    /// Whether two variables may point to a common object.
    pub fn may_alias(&self, a: VarRef, b: VarRef) -> bool {
        let (pa, pb) = (self.pts_var(a), self.pts_var(b));
        if pa.len() <= pb.len() {
            pa.iter().any(|o| pb.contains(o))
        } else {
            pb.iter().any(|o| pa.contains(o))
        }
    }
}

// ---------------------------------------------------------------------------
// Constraint collection (shared by the delta and reference solvers)
// ---------------------------------------------------------------------------

/// The inclusion constraints of one module, in deterministic module order.
/// `objects` holds the pre-solve objects (globals, allocas, heap and extern
/// sites); field objects materialize during solving.
struct Constraints {
    objects: Vec<ObjectKind>,
    /// Address-of seeds `o ∈ pts(n)`.
    seeds: Vec<(Node, ObjectId)>,
    /// Simple inclusion edges `pts(src) ⊆ pts(dst)`. Includes the
    /// symbolic-indexing collapses, whose transfer function is identical.
    copies: Vec<(Node, Node)>,
    loads: Vec<(VarRef, VarRef)>,     // (addr, dst)
    stores: Vec<(VarRef, VarRef)>,    // (addr, val)
    geps: Vec<(VarRef, VarRef, u64)>, // (base, dst, offset)
}

impl Constraints {
    fn collect(pre: &Preprocessed) -> Constraints {
        let module = &pre.module;
        let mut c = Constraints {
            objects: Vec::new(),
            seeds: Vec::new(),
            copies: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            geps: Vec::new(),
        };
        let new_object = |objects: &mut Vec<ObjectKind>, kind: ObjectKind| {
            let id = ObjectId(objects.len() as u32);
            objects.push(kind);
            id
        };
        // Global objects exist once per global.
        let mut global_objs: HashMap<GlobalId, ObjectId> = HashMap::new();
        for g in module.globals() {
            let o = new_object(&mut c.objects, ObjectKind::Global(g.id));
            global_objs.insert(g.id, o);
        }

        for func in module.functions() {
            let fid = func.id();
            let var = |v: ValueId| Node::Var(VarRef::new(fid, v));
            // Address-of constraints for global-address constants.
            for (v, data) in func.values() {
                if let manta_ir::ValueKind::GlobalAddr(g) = data.kind {
                    c.seeds.push((var(v), global_objs[&g]));
                }
            }
            for inst in func.insts() {
                match &inst.kind {
                    InstKind::Copy { dst, src } => c.copies.push((var(*src), var(*dst))),
                    InstKind::Phi { dst, incomings } => {
                        for (_, v) in incomings {
                            c.copies.push((var(*v), var(*dst)));
                        }
                    }
                    InstKind::Alloca { dst, size } => {
                        let o = new_object(
                            &mut c.objects,
                            ObjectKind::Stack {
                                func: fid,
                                site: inst.id,
                                size: *size,
                            },
                        );
                        c.seeds.push((var(*dst), o));
                    }
                    InstKind::Gep { dst, base, offset } => {
                        c.geps
                            .push((VarRef::new(fid, *base), VarRef::new(fid, *dst), *offset));
                    }
                    InstKind::Load { dst, addr, .. } => {
                        c.loads
                            .push((VarRef::new(fid, *addr), VarRef::new(fid, *dst)));
                    }
                    InstKind::Store { addr, val } => {
                        c.stores
                            .push((VarRef::new(fid, *addr), VarRef::new(fid, *val)));
                    }
                    InstKind::BinOp {
                        op: BinOp::Add | BinOp::Sub,
                        dst,
                        lhs,
                        rhs,
                    } => {
                        // Pointer arithmetic with a non-constant offset:
                        // collapse to the base objects (both operands are
                        // candidates; non-pointers contribute nothing).
                        // `pts(operand) ⊆ pts(dst)` is exactly a copy edge.
                        c.copies.push((var(*lhs), var(*dst)));
                        c.copies.push((var(*rhs), var(*dst)));
                    }
                    InstKind::BinOp { .. } | InstKind::Cmp { .. } => {}
                    InstKind::Call { dst, callee, args } => match callee {
                        Callee::Direct(target) => {
                            if pre.is_broken_call(fid, inst.id) {
                                continue;
                            }
                            let tf = module.function(*target);
                            for (i, &a) in args.iter().enumerate() {
                                if let Some(&p) = tf.params().get(i) {
                                    c.copies.push((var(a), Node::Var(VarRef::new(*target, p))));
                                }
                            }
                            if let Some(d) = dst {
                                // Bind all return values of the callee.
                                for b in tf.blocks() {
                                    if let Terminator::Ret(Some(r)) = b.term {
                                        c.copies
                                            .push((Node::Var(VarRef::new(*target, r)), var(*d)));
                                    }
                                }
                            }
                        }
                        Callee::Extern(e) => {
                            let decl = module.extern_decl(*e);
                            match decl.effect {
                                ExternEffect::AllocHeap => {
                                    if let Some(d) = dst {
                                        let o = new_object(
                                            &mut c.objects,
                                            ObjectKind::Heap {
                                                func: fid,
                                                site: inst.id,
                                            },
                                        );
                                        c.seeds.push((var(*d), o));
                                    }
                                }
                                ExternEffect::TaintSource => {
                                    if let Some(d) = dst {
                                        let o = new_object(
                                            &mut c.objects,
                                            ObjectKind::ExternBuf {
                                                func: fid,
                                                site: inst.id,
                                            },
                                        );
                                        c.seeds.push((var(*d), o));
                                    }
                                }
                                ExternEffect::StrCopy => {
                                    // strcpy returns its destination.
                                    if let (Some(d), Some(&a0)) = (dst, args.first()) {
                                        c.copies.push((var(a0), var(*d)));
                                    }
                                }
                                _ => {}
                            }
                        }
                        // Function pointers are not modeled (paper §3).
                        Callee::Indirect(_) => {}
                    },
                }
            }
        }
        c
    }
}

// ---------------------------------------------------------------------------
// ObjSet: hybrid sorted-vec / bitset object sets
// ---------------------------------------------------------------------------

/// An object set: a sorted `Vec<u32>` while small, switching to a bitset
/// once it crosses [`ObjSet::SPILL`] elements. Iteration is ascending in
/// both representations, so exporting to `BTreeSet` is order-stable.
#[derive(Debug, Default)]
struct ObjSet {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    Sorted(Vec<u32>),
    Bits { words: Vec<u64>, len: usize },
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Sorted(Vec::new())
    }
}

impl ObjSet {
    /// Elements at which a sorted vec spills into a bitset.
    const SPILL: usize = 128;

    fn len(&self) -> usize {
        match &self.repr {
            Repr::Sorted(v) => v.len(),
            Repr::Bits { len, .. } => *len,
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn contains(&self, x: u32) -> bool {
        match &self.repr {
            Repr::Sorted(v) => v.binary_search(&x).is_ok(),
            Repr::Bits { words, .. } => {
                let (w, b) = ((x / 64) as usize, x % 64);
                words.get(w).is_some_and(|word| word & (1 << b) != 0)
            }
        }
    }

    /// Inserts `x`; true when newly added. Spills to bitset when large.
    fn insert(&mut self, x: u32) -> bool {
        match &mut self.repr {
            Repr::Sorted(v) => match v.binary_search(&x) {
                Ok(_) => false,
                Err(at) => {
                    v.insert(at, x);
                    if v.len() > Self::SPILL {
                        self.spill();
                    }
                    true
                }
            },
            Repr::Bits { words, len } => {
                let (w, b) = ((x / 64) as usize, x % 64);
                if words.len() <= w {
                    words.resize(w + 1, 0);
                }
                let newly = words[w] & (1 << b) == 0;
                if newly {
                    words[w] |= 1 << b;
                    *len += 1;
                }
                newly
            }
        }
    }

    fn spill(&mut self) {
        if let Repr::Sorted(v) = &self.repr {
            let max = v.last().copied().unwrap_or(0);
            let mut words = vec![0u64; max as usize / 64 + 1];
            for &x in v {
                words[(x / 64) as usize] |= 1 << (x % 64);
            }
            self.repr = Repr::Bits {
                words,
                len: v.len(),
            };
        }
    }

    /// Ascending iteration over elements.
    fn iter(&self) -> ObjSetIter<'_> {
        match &self.repr {
            Repr::Sorted(v) => ObjSetIter::Sorted(v.iter()),
            Repr::Bits { words, .. } => ObjSetIter::Bits {
                words,
                word: 0,
                cur: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Appends `self \ other` to `out` (ascending).
    fn diff_into(&self, other: &ObjSet, out: &mut Vec<u32>) {
        out.extend(self.iter().filter(|&x| !other.contains(x)));
    }
}

enum ObjSetIter<'a> {
    Sorted(std::slice::Iter<'a, u32>),
    Bits {
        words: &'a [u64],
        word: usize,
        cur: u64,
    },
}

impl Iterator for ObjSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            ObjSetIter::Sorted(it) => it.next().copied(),
            ObjSetIter::Bits { words, word, cur } => loop {
                if *cur != 0 {
                    let bit = cur.trailing_zeros();
                    *cur &= *cur - 1;
                    return Some(*word as u32 * 64 + bit);
                }
                *word += 1;
                if *word >= words.len() {
                    return None;
                }
                *cur = words[*word];
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Delta-propagation solver
// ---------------------------------------------------------------------------

/// Delta-propagation worklist solver over a dense node arena.
///
/// Node numbering: per-function variable bases first (the same scheme the
/// DDG uses), then one node per abstract object (`nv + object index`,
/// growing as field objects materialize). Copy-SCCs are collapsed into a
/// union-find representative; per-node arrays always hold the live state
/// at the representative.
struct DeltaSolver<'a> {
    pre: &'a Preprocessed,
    vars: Vec<VarRef>,
    var_base: Vec<u32>,
    nv: usize,
    objects: Vec<ObjectKind>,
    field_intern: HashMap<(ObjectId, u64), ObjectId>,
    // Per dense node:
    parent: Vec<u32>,
    pts: Vec<ObjSet>,
    delta: Vec<Vec<u32>>,
    /// Copy successors, sorted and deduplicated at insertion.
    succ: Vec<Vec<u32>>,
    load_dsts: Vec<Vec<u32>>,
    store_vals: Vec<Vec<u32>>,
    geps: Vec<Vec<(u32, u64)>>,
    on_list: Vec<bool>,
    list: VecDeque<u32>,
    iterations: usize,
    edges_since_scc: usize,
    total_edges: usize,
    scc_merges: u64,
    /// `(node, obj)` → first derivation; allocated only when provenance
    /// recording is on, so the off path costs one `Option` check per
    /// newly inserted fact.
    prov: Option<HashMap<(u32, u32), Origin>>,
}

/// Solver-internal derivation reason over raw dense node ids; resolved
/// to [`PtsSource`] at export.
#[derive(Clone, Copy, Debug)]
enum Origin {
    Seed,
    Copy(u32),
    Field(u32),
}

impl<'a> DeltaSolver<'a> {
    fn new(pre: &'a Preprocessed) -> Self {
        let module = &pre.module;
        let mut var_base = Vec::with_capacity(module.function_count());
        let mut vars = Vec::new();
        let mut next = 0u32;
        for f in module.functions() {
            var_base.push(next);
            for (v, _) in f.values() {
                vars.push(VarRef::new(f.id(), v));
            }
            next += f.value_count() as u32;
        }
        DeltaSolver {
            pre,
            vars,
            var_base,
            nv: next as usize,
            objects: Vec::new(),
            field_intern: HashMap::new(),
            parent: Vec::new(),
            pts: Vec::new(),
            delta: Vec::new(),
            succ: Vec::new(),
            load_dsts: Vec::new(),
            store_vals: Vec::new(),
            geps: Vec::new(),
            on_list: Vec::new(),
            list: VecDeque::new(),
            iterations: 0,
            edges_since_scc: 0,
            total_edges: 0,
            scc_merges: 0,
            prov: manta_telemetry::provenance_enabled().then(HashMap::new),
        }
    }

    fn var_node(&self, v: VarRef) -> u32 {
        self.var_base[v.func.index()] + v.value.0
    }

    fn obj_node(&self, o: ObjectId) -> u32 {
        (self.nv + o.index()) as u32
    }

    fn grow_to(&mut self, n: usize) {
        self.parent.extend(self.parent.len() as u32..n as u32);
        self.pts.resize_with(n, ObjSet::default);
        self.delta.resize_with(n, Vec::new);
        self.succ.resize_with(n, Vec::new);
        self.load_dsts.resize_with(n, Vec::new);
        self.store_vals.resize_with(n, Vec::new);
        self.geps.resize_with(n, Vec::new);
        self.on_list.resize(n, false);
    }

    fn new_object(&mut self, kind: ObjectKind) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(kind);
        self.grow_to(self.nv + self.objects.len());
        id
    }

    /// Union-find lookup with path halving.
    fn find(&mut self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            let gp = self.parent[self.parent[n as usize] as usize];
            self.parent[n as usize] = gp;
            n = gp;
        }
        n
    }

    fn enqueue(&mut self, n: u32) {
        if !self.on_list[n as usize] {
            self.on_list[n as usize] = true;
            self.list.push_back(n);
        }
    }

    /// Adds `objs` (deduplicated, any order) to `pts(n)`, extending the
    /// delta with the newly present ones. `origin` is recorded for each
    /// newly inserted fact when provenance recording is on.
    fn add_objs(&mut self, n: u32, objs: &[u32], origin: Origin) {
        let n = self.find(n);
        let mut any = false;
        for &o in objs {
            if self.pts[n as usize].insert(o) {
                self.delta[n as usize].push(o);
                any = true;
                if let Some(prov) = &mut self.prov {
                    prov.entry((n, o)).or_insert(origin);
                }
            }
        }
        if any {
            self.enqueue(n);
        }
    }

    /// Adds the copy edge `a → b`, deduplicating at insertion; a new edge
    /// immediately propagates `pts(a) \ pts(b)`.
    fn add_edge(&mut self, a: u32, b: u32) {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return;
        }
        match self.succ[a as usize].binary_search(&b) {
            Ok(_) => return, // duplicate copy constraint
            Err(at) => self.succ[a as usize].insert(at, b),
        }
        self.edges_since_scc += 1;
        self.total_edges += 1;
        let mut diff = Vec::new();
        self.pts[a as usize].diff_into(&self.pts[b as usize], &mut diff);
        if !diff.is_empty() {
            self.add_objs(b, &diff, Origin::Copy(a));
        }
    }

    /// Merges node `b` into representative `a` (cycle collapse): points-to
    /// sets union, constraint lists concatenate, and the combined delta
    /// covers the symmetric difference plus both pending deltas so every
    /// inherited edge and constraint sees what its side was missing.
    fn merge(&mut self, a: u32, b: u32) {
        debug_assert_ne!(a, b);
        self.scc_merges += 1;
        self.parent[b as usize] = a;
        let b_pts = std::mem::take(&mut self.pts[b as usize]);
        let mut b_only = Vec::new();
        b_pts.diff_into(&self.pts[a as usize], &mut b_only);
        let mut a_only = Vec::new();
        self.pts[a as usize].diff_into(&b_pts, &mut a_only);
        for &o in &b_only {
            self.pts[a as usize].insert(o);
        }
        let mut b_delta = std::mem::take(&mut self.delta[b as usize]);
        self.delta[a as usize].append(&mut b_delta);
        self.delta[a as usize].extend(b_only);
        self.delta[a as usize].extend(a_only);
        let b_succ = std::mem::take(&mut self.succ[b as usize]);
        for s in b_succ {
            match self.succ[a as usize].binary_search(&s) {
                Ok(_) => {}
                Err(at) => self.succ[a as usize].insert(at, s),
            }
        }
        let mut moved = std::mem::take(&mut self.load_dsts[b as usize]);
        self.load_dsts[a as usize].append(&mut moved);
        let mut moved = std::mem::take(&mut self.store_vals[b as usize]);
        self.store_vals[a as usize].append(&mut moved);
        let mut moved = std::mem::take(&mut self.geps[b as usize]);
        self.geps[a as usize].append(&mut moved);
        if !self.delta[a as usize].is_empty() {
            self.enqueue(a);
        }
    }

    /// Collapses every copy-SCC of the current (representative) copy graph
    /// into its minimum member — iterative Tarjan, merges applied after
    /// the pass so the traversal sees a consistent graph.
    fn collapse_sccs(&mut self) {
        let n = self.parent.len();
        let mut index = vec![0u32; n]; // 0 = unvisited
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 1u32;
        let mut components: Vec<Vec<u32>> = Vec::new();
        // Explicit DFS frames: (node, next successor position).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if self.find(root) != root || index[root as usize] != 0 {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos == 0 {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                }
                // Resolve the successor through the union-find at visit
                // time; merges are deferred, so reps are stable here.
                let succ_at = self.succ[v as usize].get(*pos).copied();
                match succ_at {
                    Some(raw) => {
                        *pos += 1;
                        let w = self.find(raw);
                        if w == v {
                            continue;
                        }
                        if index[w as usize] == 0 {
                            frames.push((w, 0));
                        } else if on_stack[w as usize] {
                            low[v as usize] = low[v as usize].min(index[w as usize]);
                        }
                    }
                    None => {
                        if low[v as usize] == index[v as usize] {
                            let mut comp = Vec::new();
                            while let Some(w) = stack.pop() {
                                on_stack[w as usize] = false;
                                comp.push(w);
                                if w == v {
                                    break;
                                }
                            }
                            if comp.len() > 1 {
                                components.push(comp);
                            }
                        }
                        frames.pop();
                        if let Some(&mut (p, _)) = frames.last_mut() {
                            low[p as usize] = low[p as usize].min(low[v as usize]);
                        }
                    }
                }
            }
        }
        for mut comp in components {
            comp.sort_unstable();
            let rep = comp[0];
            for &m in &comp[1..] {
                self.merge(rep, m);
            }
        }
        self.edges_since_scc = 0;
    }

    fn field(&mut self, parent: ObjectId, offset: u64) -> ObjectId {
        if let Some(&f) = self.field_intern.get(&(parent, offset)) {
            return f;
        }
        let f = self.new_object(ObjectKind::Field { parent, offset });
        self.field_intern.insert((parent, offset), f);
        f
    }

    fn run(
        mut self,
        budget: &manta_resilience::Budget,
    ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
        budget.tick()?;
        let constraints = Constraints::collect(self.pre);
        for kind in &constraints.objects {
            let id = ObjectId(self.objects.len() as u32);
            self.objects.push(*kind);
            if let ObjectKind::Field { parent, offset } = *kind {
                self.field_intern.insert((parent, offset), id);
            }
        }
        self.grow_to(self.nv + self.objects.len());
        // Index complex constraints by their trigger node.
        for &(addr, dst) in &constraints.loads {
            let (a, d) = (self.var_node(addr), self.var_node(dst));
            self.load_dsts[a as usize].push(d);
        }
        for &(addr, val) in &constraints.stores {
            let (a, v) = (self.var_node(addr), self.var_node(val));
            self.store_vals[a as usize].push(v);
        }
        for &(base, dst, offset) in &constraints.geps {
            let (b, d) = (self.var_node(base), self.var_node(dst));
            self.geps[b as usize].push((d, offset));
        }
        for &(src, dst) in &constraints.copies {
            let (s, d) = (self.node_of(src), self.node_of(dst));
            self.add_edge(s, d);
        }
        for &(n, o) in &constraints.seeds {
            let n = self.node_of(n);
            self.add_objs(n, &[o.0], Origin::Seed);
        }
        // Collapse the static copy-SCCs up front; further collapses run
        // online as load/store rules add enough new edges.
        self.collapse_sccs();

        let scc_period = (self.parent.len() / 4).max(256);
        while let Some(n0) = self.list.pop_front() {
            self.iterations += 1;
            budget.tick()?;
            self.on_list[n0 as usize] = false;
            if self.edges_since_scc >= scc_period {
                self.collapse_sccs();
            }
            let n = self.find(n0);
            if n != n0 {
                continue; // merged away; the representative is enqueued
            }
            let mut d = std::mem::take(&mut self.delta[n as usize]);
            if d.is_empty() {
                continue;
            }
            d.sort_unstable();
            d.dedup();
            budget.consume(d.len() as u64)?;
            DELTA_SIZES.record(d.len() as u64);
            // Field derivation: materialize fields under each new object.
            let gep_list = std::mem::take(&mut self.geps[n as usize]);
            for &(dst, offset) in &gep_list {
                for &o in &d {
                    let f = self.field(ObjectId(o), offset);
                    self.add_objs(dst, &[f.0], Origin::Field(o));
                }
            }
            // Processing a node never merges it, so putting the (possibly
            // still-growing at the rep) list back is safe.
            let slot = self.find(n);
            self.geps[slot as usize].extend(gep_list);
            // Load rule: `dst ⊇ *addr` becomes edges obj → dst.
            let load_list = std::mem::take(&mut self.load_dsts[n as usize]);
            for &dst in &load_list {
                for &o in &d {
                    let on = self.obj_node(ObjectId(o));
                    self.add_edge(on, dst);
                }
            }
            let slot = self.find(n);
            self.load_dsts[slot as usize].extend(load_list);
            // Store rule: `*addr ⊇ val` becomes edges val → obj.
            let store_list = std::mem::take(&mut self.store_vals[n as usize]);
            for &val in &store_list {
                for &o in &d {
                    let on = self.obj_node(ObjectId(o));
                    self.add_edge(val, on);
                }
            }
            let slot = self.find(n);
            self.store_vals[slot as usize].extend(store_list);
            // Copy rule: push only the delta to each successor.
            let succ_list = std::mem::take(&mut self.succ[n as usize]);
            for &s in &succ_list {
                let s = self.find(s);
                if s != n {
                    self.add_objs(s, &d, Origin::Copy(n));
                }
            }
            let slot = self.find(n);
            debug_assert_eq!(slot, n, "processing must not merge the node");
            if self.succ[slot as usize].is_empty() {
                self.succ[slot as usize] = succ_list;
            } else {
                // Edges added while processing (via add_edge re-entry on
                // the same rep cannot happen, but merges into `n` can't
                // either; keep the union just in case).
                for s in succ_list {
                    match self.succ[slot as usize].binary_search(&s) {
                        Ok(_) => {}
                        Err(at) => self.succ[slot as usize].insert(at, s),
                    }
                }
            }
        }

        manta_telemetry::counter("pointsto.worklist_iters", self.iterations as u64);
        manta_telemetry::counter("pointsto.objects", self.objects.len() as u64);
        manta_telemetry::counter("pointsto.scc_merges", self.scc_merges);
        let out = self.export();
        manta_telemetry::counter("pointsto.constraint_nodes", out.constraint_nodes as u64);
        manta_telemetry::counter("pointsto.constraint_edges", out.constraint_edges as u64);
        PEAK_PTS.record_max(out.peak_pts as u64);
        Ok(out)
    }

    fn node_of(&self, n: Node) -> u32 {
        match n {
            Node::Var(v) => self.var_node(v),
            Node::Obj(o) => self.obj_node(o),
        }
    }

    /// Materializes the dense solution back into the map-keyed form the
    /// public API serves; every member of a collapsed cycle gets the
    /// representative's (shared) final set.
    fn export(mut self) -> PointsTo {
        let total = self.parent.len();
        let mut pts: HashMap<Node, BTreeSet<ObjectId>> = HashMap::new();
        let mut peak = 0usize;
        for n in 0..total as u32 {
            let rep = self.find(n);
            if self.pts[rep as usize].is_empty() {
                continue;
            }
            let set: BTreeSet<ObjectId> = self.pts[rep as usize].iter().map(ObjectId).collect();
            peak = peak.max(set.len());
            let key = if (n as usize) < self.nv {
                Node::Var(self.vars[n as usize])
            } else {
                Node::Obj(ObjectId(n - self.nv as u32))
            };
            pts.insert(key, set);
        }
        // Resolve raw dense node ids to public references. Every dense
        // node index names a concrete variable or object even after SCC
        // collapse (representatives are cycle members, not synthetics).
        let nv = self.nv;
        let vars = std::mem::take(&mut self.vars);
        let node_key = |raw: u32| -> Node {
            if (raw as usize) < nv {
                Node::Var(vars[raw as usize])
            } else {
                Node::Obj(ObjectId(raw - nv as u32))
            }
        };
        let provenance = self.prov.take().map(|raw| {
            let mut p = PointsToProvenance::default();
            for ((n, o), origin) in raw {
                let source = match origin {
                    Origin::Seed => PtsSource::Seed,
                    Origin::Copy(m) => match node_key(m) {
                        Node::Var(v) => PtsSource::CopiedFromVar(v),
                        Node::Obj(obj) => PtsSource::CopiedFromObj(obj),
                    },
                    Origin::Field(parent) => PtsSource::FieldOf(ObjectId(parent)),
                };
                match node_key(n) {
                    Node::Var(v) => {
                        p.var_origins.insert((v, ObjectId(o)), source);
                    }
                    Node::Obj(obj) => {
                        p.obj_origins.insert((obj, ObjectId(o)), source);
                    }
                }
            }
            p
        });
        PointsTo {
            objects: self.objects,
            field_intern: self.field_intern,
            pts,
            iterations: self.iterations,
            constraint_nodes: total,
            constraint_edges: self.total_edges,
            scc_merges: self.scc_merges as usize,
            peak_pts: peak,
            provenance,
        }
    }
}

// ---------------------------------------------------------------------------
// Reference solver (differential-testing oracle)
// ---------------------------------------------------------------------------

/// The historical whole-set fixpoint solver: re-propagates full points-to
/// sets every round. Quadratic on copy chains; kept only as the oracle the
/// delta solver is differentially tested against.
#[cfg(any(test, feature = "reference-solver"))]
mod reference {
    use super::*;

    pub(super) struct Solver<'a> {
        pre: &'a Preprocessed,
        objects: Vec<ObjectKind>,
        field_intern: HashMap<(ObjectId, u64), ObjectId>,
        pts: HashMap<Node, BTreeSet<ObjectId>>,
        /// Simple inclusion edges `src ⊆ dst`, deduplicated at insertion.
        copy_edges: HashMap<Node, Vec<Node>>,
        /// Complex constraints re-evaluated each round.
        loads: Vec<(VarRef, VarRef)>,
        stores: Vec<(VarRef, VarRef)>,
        geps: Vec<(VarRef, VarRef, u64)>,
    }

    impl<'a> Solver<'a> {
        pub(super) fn new(pre: &'a Preprocessed) -> Self {
            Solver {
                pre,
                objects: Vec::new(),
                field_intern: HashMap::new(),
                pts: HashMap::new(),
                copy_edges: HashMap::new(),
                loads: Vec::new(),
                stores: Vec::new(),
                geps: Vec::new(),
            }
        }

        fn field(&mut self, parent: ObjectId, offset: u64) -> ObjectId {
            if let Some(&f) = self.field_intern.get(&(parent, offset)) {
                return f;
            }
            let f = ObjectId(self.objects.len() as u32);
            self.objects.push(ObjectKind::Field { parent, offset });
            self.field_intern.insert((parent, offset), f);
            f
        }

        fn add_obj(&mut self, n: Node, o: ObjectId) -> bool {
            self.pts.entry(n).or_default().insert(o)
        }

        fn add_copy(&mut self, src: Node, dst: Node) {
            // Deduplicate at insertion: repeated copy constraints used to
            // multiply propagation work for no precision.
            let edges = self.copy_edges.entry(src).or_default();
            if !edges.contains(&dst) {
                edges.push(dst);
            }
        }

        pub(super) fn run(
            mut self,
            budget: &manta_resilience::Budget,
        ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
            let constraints = Constraints::collect(self.pre);
            self.objects = constraints.objects;
            for (i, kind) in self.objects.iter().enumerate() {
                if let ObjectKind::Field { parent, offset } = *kind {
                    self.field_intern
                        .insert((parent, offset), ObjectId(i as u32));
                }
            }
            for &(n, o) in &constraints.seeds {
                self.add_obj(n, o);
            }
            for &(s, d) in &constraints.copies {
                self.add_copy(s, d);
            }
            self.loads = constraints.loads;
            self.stores = constraints.stores;
            self.geps = constraints.geps;

            // Fixpoint: propagate along copy edges, then re-derive complex
            // constraints; repeat until stable.
            let mut iterations = 0;
            loop {
                iterations += 1;
                budget.tick()?;
                let mut changed = false;
                // Copy propagation to a local fixpoint.
                loop {
                    budget.tick()?;
                    let mut inner_changed = false;
                    let srcs: Vec<Node> = self.copy_edges.keys().copied().collect();
                    for src in srcs {
                        budget.tick()?;
                        let set = match self.pts.get(&src) {
                            Some(s) if !s.is_empty() => s.clone(),
                            _ => continue,
                        };
                        let dsts = self.copy_edges[&src].clone();
                        for dst in dsts {
                            for &o in &set {
                                if self.add_obj(dst, o) {
                                    inner_changed = true;
                                }
                            }
                        }
                    }
                    if !inner_changed {
                        break;
                    }
                    changed = true;
                }
                // Complex constraints.
                budget.consume((self.geps.len() + self.loads.len() + self.stores.len()) as u64)?;
                for (base, dst, offset) in self.geps.clone() {
                    let bases = self.pts.get(&Node::Var(base)).cloned().unwrap_or_default();
                    for b in bases {
                        let f = self.field(b, offset);
                        if self.add_obj(Node::Var(dst), f) {
                            changed = true;
                        }
                    }
                }
                for (addr, dst) in self.loads.clone() {
                    let addrs = self.pts.get(&Node::Var(addr)).cloned().unwrap_or_default();
                    for o in addrs {
                        let contents = self.pts.get(&Node::Obj(o)).cloned().unwrap_or_default();
                        for c in contents {
                            if self.add_obj(Node::Var(dst), c) {
                                changed = true;
                            }
                        }
                    }
                }
                for (addr, val) in self.stores.clone() {
                    let addrs = self.pts.get(&Node::Var(addr)).cloned().unwrap_or_default();
                    let vals = self.pts.get(&Node::Var(val)).cloned().unwrap_or_default();
                    for o in addrs {
                        for &v in &vals {
                            if self.add_obj(Node::Obj(o), v) {
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            // The oracle has no dense arena or SCC machinery; shape
            // introspection and provenance are delta-solver features.
            let peak = self.pts.values().map(BTreeSet::len).max().unwrap_or(0);
            Ok(PointsTo {
                objects: self.objects,
                field_intern: self.field_intern,
                pts: self.pts,
                iterations,
                constraint_nodes: 0,
                constraint_edges: 0,
                scc_merges: 0,
                peak_pts: peak,
                provenance: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use manta_ir::{ModuleBuilder, Width};

    fn analyze(m: manta_ir::Module) -> (Preprocessed, PointsTo) {
        let pre = preprocess(m, PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let pts = PointsTo::solve(&pre, &cg);
        (pre, pts)
    }

    #[test]
    fn alloca_and_copy() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let a = fb.alloca(8);
        let b = fb.copy(a);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let va = VarRef::new(fid, a);
        let vb = VarRef::new(fid, b);
        assert_eq!(pts.pts_var(va).len(), 1);
        assert_eq!(pts.pts_var(va), pts.pts_var(vb));
        assert!(pts.may_alias(va, vb));
    }

    #[test]
    fn store_load_through_object() {
        // q = alloca; *q = p(heap); r = *q  ⇒  r points to the heap object.
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (fid, mut fb) = mb.function("f", &[], None);
        let sz = fb.const_int(16, Width::W64);
        let p = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
        let q = fb.alloca(8);
        fb.store(q, p);
        let r = fb.load(q, Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let heap: Vec<_> = pts.pts_var(VarRef::new(fid, p)).iter().copied().collect();
        assert_eq!(heap.len(), 1);
        assert!(matches!(pts.object_kind(heap[0]), ObjectKind::Heap { .. }));
        assert_eq!(
            pts.pts_var(VarRef::new(fid, r)),
            pts.pts_var(VarRef::new(fid, p))
        );
    }

    #[test]
    fn gep_materializes_fields() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let s = fb.alloca(16);
        let f0 = fb.gep(s, 0);
        let f8 = fb.gep(s, 8);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let base = *pts.pts_var(VarRef::new(fid, s)).iter().next().unwrap();
        let o0 = *pts.pts_var(VarRef::new(fid, f0)).iter().next().unwrap();
        let o8 = *pts.pts_var(VarRef::new(fid, f8)).iter().next().unwrap();
        assert_ne!(o0, o8, "distinct offsets are distinct field objects");
        assert_eq!(pts.field_of(base, 0), Some(o0));
        assert_eq!(pts.field_of(base, 8), Some(o8));
        assert!(!pts.may_alias(VarRef::new(fid, f0), VarRef::new(fid, f8)));
    }

    #[test]
    fn symbolic_indexing_collapses() {
        // r = base + i  ⇒  r aliases base (monolithic collapse).
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], None);
        let i = fb.param(0);
        let base = fb.alloca(64);
        let r = fb.binop(BinOp::Add, base, i, Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        assert!(pts.may_alias(VarRef::new(fid, base), VarRef::new(fid, r)));
    }

    #[test]
    fn interprocedural_param_and_return_binding() {
        // id(x) { return x; }  caller: y = id(stack_addr)
        let mut mb = ModuleBuilder::new("m");
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);
        let (caller, mut cb) = mb.function("caller", &[], None);
        let s = cb.alloca(8);
        let y = cb.call(id_f, &[s], Some(Width::W64)).unwrap();
        cb.ret(None);
        mb.finish_function(cb);
        let (pre, pts) = analyze(mb.finish());
        let id_f = pre.module.function_by_name("id").unwrap().id();
        let xp = pre.module.function(id_f).params()[0];
        assert_eq!(pts.pts_var(VarRef::new(id_f, xp)).len(), 1);
        assert_eq!(
            pts.pts_var(VarRef::new(caller, y)),
            pts.pts_var(VarRef::new(caller, s))
        );
    }

    #[test]
    fn globals_are_objects() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("cfg", 32);
        let (fid, mut fb) = mb.function("f", &[], None);
        let ga = fb.global_addr(g);
        let v = fb.load(ga, Width::W64);
        let _ = v;
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let set = pts.pts_var(VarRef::new(fid, ga));
        assert_eq!(set.len(), 1);
        assert!(matches!(
            pts.object_kind(*set.iter().next().unwrap()),
            ObjectKind::Global(_)
        ));
    }

    #[test]
    fn indirect_calls_are_opaque() {
        let mut mb = ModuleBuilder::new("m");
        let (target, mut tb) = mb.function("target", &[Width::W64], None);
        tb.ret(None);
        mb.finish_function(tb);
        mb.mark_address_taken(target);
        let (fid, mut fb) = mb.function("f", &[], None);
        let fp = fb.func_addr(target);
        let s = fb.alloca(8);
        fb.call_indirect(fp, &[s], None);
        fb.ret(None);
        mb.finish_function(fb);
        let (pre, pts) = analyze(mb.finish());
        let target = pre.module.function_by_name("target").unwrap().id();
        let p = pre.module.function(target).params()[0];
        // Function pointers unmodeled ⇒ nothing flows into the target param.
        assert!(pts.pts_var(VarRef::new(target, p)).is_empty());
        let _ = fid;
    }

    #[test]
    fn copy_cycles_equalize_and_collapse() {
        // a → b → c → a plus a seed in a: everyone sees the seed, and
        // fields derived from any member match.
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let s = fb.alloca(8);
        let a = fb.copy(s);
        let b = fb.copy(a);
        let c = fb.copy(b);
        // Close the cycle with a phi so `a` also depends on `c`.
        // (copy-only cycles need a phi or call to appear in SSA.)
        let bb = fb.current_block();
        let p = fb.phi(&[(bb, a), (bb, c)], Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        for v in [a, b, c, p] {
            assert_eq!(
                pts.pts_var(VarRef::new(fid, v)),
                pts.pts_var(VarRef::new(fid, s)),
                "cycle member must carry the seed"
            );
        }
    }

    #[test]
    fn duplicate_copy_constraints_are_deduplicated() {
        // Two identical copy chains must not duplicate propagation: the
        // phi re-states `s → d` twice.
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let s = fb.alloca(8);
        let bb = fb.current_block();
        let d = fb.phi(&[(bb, s), (bb, s)], Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        assert_eq!(
            pts.pts_var(VarRef::new(fid, d)),
            pts.pts_var(VarRef::new(fid, s))
        );
    }

    #[test]
    fn objset_hybrid_representation_round_trips() {
        let mut set = ObjSet::default();
        // Insert enough to force the bitset spill, out of order.
        let items: Vec<u32> = (0..400).map(|i| (i * 37) % 1009).collect();
        let mut expect = BTreeSet::new();
        for &x in &items {
            assert_eq!(set.insert(x), expect.insert(x), "insert {x}");
        }
        assert_eq!(set.len(), expect.len());
        assert!(matches!(set.repr, Repr::Bits { .. }), "must have spilled");
        let got: Vec<u32> = set.iter().collect();
        let want: Vec<u32> = expect.iter().copied().collect();
        assert_eq!(got, want, "ascending iteration across the spill");
        for x in 0..1100 {
            assert_eq!(set.contains(x), expect.contains(&x));
        }
        let mut other = ObjSet::default();
        other.insert(items[0]);
        let mut diff = Vec::new();
        set.diff_into(&other, &mut diff);
        assert_eq!(diff.len(), set.len() - 1);
    }

    #[test]
    fn zero_fuel_budget_trips_solver() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[], None);
        fb.ret(None);
        mb.finish_function(fb);
        let pre = preprocess(mb.finish(), PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let b = manta_resilience::Budget::with_fuel(0);
        assert!(PointsTo::solve_budgeted(&pre, &cg, &b).is_err());
    }
}
