//! Constraint collection.
//!
//! Two views of the same inclusion-constraint system:
//!
//! * [`Constraints`] — the whole-module "flat soup" consumed by the
//!   monolithic [`super::solver::DeltaSolver`] and the reference
//!   solver. Call bindings are direct variable-to-variable copy edges.
//! * [`PartitionedConstraints`] — one [`FunctionConstraints`] partition
//!   per function with an interned [`BoundaryTable`]: every
//!   cross-function flow (argument → parameter, return → call result)
//!   is routed through an explicit boundary slot, so a partition's
//!   constraints mention only its own variables, shared objects, and
//!   boundary slots. Globals and escaping objects are shared through
//!   the object state itself.
//!
//! Both views are collected by the same deterministic module walk, and
//! routing a copy through a fresh intermediate slot does not change the
//! least fixpoint — the differential suite pins the two solvers to
//! bit-identical relations (via [`ObjectKind`] chains).

use std::collections::HashMap;

use manta_ir::{BinOp, Callee, ExternEffect, FuncId, GlobalId, InstKind, Terminator, ValueId};

use super::{Node, ObjectId, ObjectKind};
use crate::preprocess::Preprocessed;
use crate::VarRef;

// ---------------------------------------------------------------------------
// Whole-module constraints (the monolithic solvers' input)
// ---------------------------------------------------------------------------

/// The inclusion constraints of one module, in deterministic module order.
/// `objects` holds the pre-solve objects (globals, allocas, heap and extern
/// sites); field objects materialize during solving.
pub(crate) struct Constraints {
    pub(crate) objects: Vec<ObjectKind>,
    /// Address-of seeds `o ∈ pts(n)`.
    pub(crate) seeds: Vec<(Node, ObjectId)>,
    /// Simple inclusion edges `pts(src) ⊆ pts(dst)`. Includes the
    /// symbolic-indexing collapses, whose transfer function is identical.
    pub(crate) copies: Vec<(Node, Node)>,
    pub(crate) loads: Vec<(VarRef, VarRef)>,  // (addr, dst)
    pub(crate) stores: Vec<(VarRef, VarRef)>, // (addr, val)
    pub(crate) geps: Vec<(VarRef, VarRef, u64)>, // (base, dst, offset)
}

impl Constraints {
    pub(crate) fn collect(pre: &Preprocessed) -> Constraints {
        let module = &pre.module;
        let mut c = Constraints {
            objects: Vec::new(),
            seeds: Vec::new(),
            copies: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            geps: Vec::new(),
        };
        let new_object = |objects: &mut Vec<ObjectKind>, kind: ObjectKind| {
            let id = ObjectId(objects.len() as u32);
            objects.push(kind);
            id
        };
        // Global objects exist once per global.
        let mut global_objs: HashMap<GlobalId, ObjectId> = HashMap::new();
        for g in module.globals() {
            let o = new_object(&mut c.objects, ObjectKind::Global(g.id));
            global_objs.insert(g.id, o);
        }

        for func in module.functions() {
            let fid = func.id();
            let var = |v: ValueId| Node::Var(VarRef::new(fid, v));
            // Address-of constraints for global-address constants.
            for (v, data) in func.values() {
                if let manta_ir::ValueKind::GlobalAddr(g) = data.kind {
                    c.seeds.push((var(v), global_objs[&g]));
                }
            }
            for inst in func.insts() {
                match &inst.kind {
                    InstKind::Copy { dst, src } => c.copies.push((var(*src), var(*dst))),
                    InstKind::Phi { dst, incomings } => {
                        for (_, v) in incomings {
                            c.copies.push((var(*v), var(*dst)));
                        }
                    }
                    InstKind::Alloca { dst, size } => {
                        let o = new_object(
                            &mut c.objects,
                            ObjectKind::Stack {
                                func: fid,
                                site: inst.id,
                                size: *size,
                            },
                        );
                        c.seeds.push((var(*dst), o));
                    }
                    InstKind::Gep { dst, base, offset } => {
                        c.geps
                            .push((VarRef::new(fid, *base), VarRef::new(fid, *dst), *offset));
                    }
                    InstKind::Load { dst, addr, .. } => {
                        c.loads
                            .push((VarRef::new(fid, *addr), VarRef::new(fid, *dst)));
                    }
                    InstKind::Store { addr, val } => {
                        c.stores
                            .push((VarRef::new(fid, *addr), VarRef::new(fid, *val)));
                    }
                    InstKind::BinOp {
                        op: BinOp::Add | BinOp::Sub,
                        dst,
                        lhs,
                        rhs,
                    } => {
                        // Pointer arithmetic with a non-constant offset:
                        // collapse to the base objects (both operands are
                        // candidates; non-pointers contribute nothing).
                        // `pts(operand) ⊆ pts(dst)` is exactly a copy edge.
                        c.copies.push((var(*lhs), var(*dst)));
                        c.copies.push((var(*rhs), var(*dst)));
                    }
                    InstKind::BinOp { .. } | InstKind::Cmp { .. } => {}
                    InstKind::Call { dst, callee, args } => match callee {
                        Callee::Direct(target) => {
                            if pre.is_broken_call(fid, inst.id) {
                                continue;
                            }
                            let tf = module.function(*target);
                            for (i, &a) in args.iter().enumerate() {
                                if let Some(&p) = tf.params().get(i) {
                                    c.copies.push((var(a), Node::Var(VarRef::new(*target, p))));
                                }
                            }
                            if let Some(d) = dst {
                                // Bind all return values of the callee.
                                for b in tf.blocks() {
                                    if let Terminator::Ret(Some(r)) = b.term {
                                        c.copies
                                            .push((Node::Var(VarRef::new(*target, r)), var(*d)));
                                    }
                                }
                            }
                        }
                        Callee::Extern(e) => {
                            let decl = module.extern_decl(*e);
                            match decl.effect {
                                ExternEffect::AllocHeap => {
                                    if let Some(d) = dst {
                                        let o = new_object(
                                            &mut c.objects,
                                            ObjectKind::Heap {
                                                func: fid,
                                                site: inst.id,
                                            },
                                        );
                                        c.seeds.push((var(*d), o));
                                    }
                                }
                                ExternEffect::TaintSource => {
                                    if let Some(d) = dst {
                                        let o = new_object(
                                            &mut c.objects,
                                            ObjectKind::ExternBuf {
                                                func: fid,
                                                site: inst.id,
                                            },
                                        );
                                        c.seeds.push((var(*d), o));
                                    }
                                }
                                ExternEffect::StrCopy => {
                                    // strcpy returns its destination.
                                    if let (Some(d), Some(&a0)) = (dst, args.first()) {
                                        c.copies.push((var(a0), var(*d)));
                                    }
                                }
                                _ => {}
                            }
                        }
                        // Function pointers are not modeled (paper §3).
                        Callee::Indirect(_) => {}
                    },
                }
            }
        }
        c
    }
}

// ---------------------------------------------------------------------------
// Per-function partitions with an interned boundary table
// ---------------------------------------------------------------------------

/// A cross-function interface point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum BoundaryKind {
    /// The `i`-th parameter of a function (callers write, the owner reads).
    Param(u32),
    /// The merged return value of a function (the owner writes, callers
    /// read).
    Ret,
}

/// Interned boundary slots: one per `(function, interface point)`. Slot
/// ids are dense `u32`s allocated in deterministic module order (all of
/// function 0's params, then its return, then function 1's, ...), so
/// the table is a pure function of the module's signatures.
#[derive(Clone, Debug, Default)]
pub(crate) struct BoundaryTable {
    slots: Vec<(FuncId, BoundaryKind)>,
    index: HashMap<(FuncId, BoundaryKind), u32>,
}

impl BoundaryTable {
    fn intern(&mut self, func: FuncId, kind: BoundaryKind) -> u32 {
        if let Some(&s) = self.index.get(&(func, kind)) {
            return s;
        }
        let s = self.slots.len() as u32;
        self.slots.push((func, kind));
        self.index.insert((func, kind), s);
        s
    }

    fn get(&self, func: FuncId, kind: BoundaryKind) -> Option<u32> {
        self.index.get(&(func, kind)).copied()
    }

    /// Number of interned slots.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// The `(function, interface point)` a slot stands for.
    pub(crate) fn slot(&self, s: u32) -> (FuncId, BoundaryKind) {
        self.slots[s as usize]
    }
}

/// The constraint partition of one function. Variables are the
/// function's dense [`ValueId`] indices; objects are global
/// [`ObjectId`]s; boundary slots index the shared [`BoundaryTable`].
#[derive(Clone, Debug, Default)]
pub(crate) struct FunctionConstraints {
    /// Dense local variable count (`ValueId` arena size).
    pub(crate) num_vars: u32,
    /// Address-of seeds `o ∈ pts(v)`.
    pub(crate) seeds: Vec<(u32, ObjectId)>,
    /// Local copy edges `pts(src) ⊆ pts(dst)` as `(src, dst)`.
    pub(crate) copies: Vec<(u32, u32)>,
    /// Load rules `(addr, dst)`.
    pub(crate) loads: Vec<(u32, u32)>,
    /// Store rules `(addr, val)`.
    pub(crate) stores: Vec<(u32, u32)>,
    /// Gep rules `(base, dst, offset)`.
    pub(crate) geps: Vec<(u32, u32, u64)>,
    /// Boundary-in copies `pts(slot) ⊆ pts(var)` as `(slot, var)`.
    pub(crate) bin: Vec<(u32, u32)>,
    /// Boundary-out copies `pts(var) ⊆ pts(slot)` as `(var, slot)`.
    pub(crate) bout: Vec<(u32, u32)>,
}

impl FunctionConstraints {
    /// A content fingerprint of the partition (constraints plus the
    /// kinds of the objects it seeds): two functions with equal
    /// fingerprints induce identical local constraint systems. The
    /// incremental session diffs these to find edited partitions.
    pub(crate) fn fingerprint(&self, objects: &[ObjectKind]) -> u64 {
        // FNV-1a over the constraint streams; manta-analysis is
        // store-free, so keep the hash local.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(u64::from(self.num_vars));
        for &(v, o) in &self.seeds {
            eat(1);
            eat(u64::from(v));
            // Hash the object's kind, not its id: ids shift when other
            // partitions gain or lose allocation sites.
            eat(object_kind_hash(objects, o));
        }
        for &(a, b) in &self.copies {
            eat(2);
            eat(u64::from(a));
            eat(u64::from(b));
        }
        for &(a, b) in &self.loads {
            eat(3);
            eat(u64::from(a));
            eat(u64::from(b));
        }
        for &(a, b) in &self.stores {
            eat(4);
            eat(u64::from(a));
            eat(u64::from(b));
        }
        for &(a, b, off) in &self.geps {
            eat(5);
            eat(u64::from(a));
            eat(u64::from(b));
            eat(off);
        }
        for &(s, v) in &self.bin {
            eat(6);
            eat(u64::from(s));
            eat(u64::from(v));
        }
        for &(v, s) in &self.bout {
            eat(7);
            eat(u64::from(v));
            eat(u64::from(s));
        }
        h
    }
}

/// Stable hash of an object's kind chain (field chains recurse into the
/// parent), independent of object numbering.
pub(crate) fn object_kind_hash(objects: &[ObjectKind], o: ObjectId) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    match objects[o.index()] {
        ObjectKind::Stack { func, site, size } => {
            eat(0);
            eat(u64::from(func.0));
            eat(u64::from(site.0));
            eat(size);
        }
        ObjectKind::Heap { func, site } => {
            eat(1);
            eat(u64::from(func.0));
            eat(u64::from(site.0));
        }
        ObjectKind::Global(g) => {
            eat(2);
            eat(u64::from(g.0));
        }
        ObjectKind::Field { parent, offset } => {
            eat(3);
            eat(object_kind_hash(objects, parent));
            eat(offset);
        }
        ObjectKind::ExternBuf { func, site } => {
            eat(4);
            eat(u64::from(func.0));
            eat(u64::from(site.0));
        }
    }
    h
}

/// The whole module as per-function partitions plus the shared tables.
pub(crate) struct PartitionedConstraints {
    /// Pre-solve objects in the same deterministic order the monolithic
    /// collector allocates them (globals first, then per-function
    /// allocation sites); field objects materialize during solving.
    pub(crate) objects: Vec<ObjectKind>,
    /// The interned cross-function interface.
    pub(crate) boundary: BoundaryTable,
    /// One partition per function, indexed by [`FuncId`].
    pub(crate) funcs: Vec<FunctionConstraints>,
    /// Unbroken direct-call edges `(caller, callee)` — the condensation
    /// input. Broken (recursion-opaque) edges carry no constraints and
    /// so do not appear.
    pub(crate) call_edges: Vec<(u32, u32)>,
}

impl PartitionedConstraints {
    pub(crate) fn collect(pre: &Preprocessed) -> PartitionedConstraints {
        let module = &pre.module;
        let mut objects: Vec<ObjectKind> = Vec::new();
        let new_object = |objects: &mut Vec<ObjectKind>, kind: ObjectKind| {
            let id = ObjectId(objects.len() as u32);
            objects.push(kind);
            id
        };
        let mut global_objs: HashMap<GlobalId, ObjectId> = HashMap::new();
        for g in module.globals() {
            let o = new_object(&mut objects, ObjectKind::Global(g.id));
            global_objs.insert(g.id, o);
        }

        // Boundary slots for every signature point, in module order.
        let mut boundary = BoundaryTable::default();
        for func in module.functions() {
            let fid = func.id();
            for i in 0..func.params().len() {
                boundary.intern(fid, BoundaryKind::Param(i as u32));
            }
            boundary.intern(fid, BoundaryKind::Ret);
        }

        let mut funcs: Vec<FunctionConstraints> = Vec::new();
        let mut call_edges: Vec<(u32, u32)> = Vec::new();
        for func in module.functions() {
            let fid = func.id();
            let mut fc = FunctionConstraints {
                num_vars: func.value_count() as u32,
                ..FunctionConstraints::default()
            };
            // The function's own interface: parameters read their slot,
            // every `ret v` writes the return slot.
            for (i, &p) in func.params().iter().enumerate() {
                if let Some(s) = boundary.get(fid, BoundaryKind::Param(i as u32)) {
                    fc.bin.push((s, p.0));
                }
            }
            if let Some(rs) = boundary.get(fid, BoundaryKind::Ret) {
                for b in func.blocks() {
                    if let Terminator::Ret(Some(r)) = b.term {
                        fc.bout.push((r.0, rs));
                    }
                }
            }
            for (v, data) in func.values() {
                if let manta_ir::ValueKind::GlobalAddr(g) = data.kind {
                    fc.seeds.push((v.0, global_objs[&g]));
                }
            }
            for inst in func.insts() {
                match &inst.kind {
                    InstKind::Copy { dst, src } => fc.copies.push((src.0, dst.0)),
                    InstKind::Phi { dst, incomings } => {
                        for (_, v) in incomings {
                            fc.copies.push((v.0, dst.0));
                        }
                    }
                    InstKind::Alloca { dst, size } => {
                        let o = new_object(
                            &mut objects,
                            ObjectKind::Stack {
                                func: fid,
                                site: inst.id,
                                size: *size,
                            },
                        );
                        fc.seeds.push((dst.0, o));
                    }
                    InstKind::Gep { dst, base, offset } => fc.geps.push((base.0, dst.0, *offset)),
                    InstKind::Load { dst, addr, .. } => fc.loads.push((addr.0, dst.0)),
                    InstKind::Store { addr, val } => fc.stores.push((addr.0, val.0)),
                    InstKind::BinOp {
                        op: BinOp::Add | BinOp::Sub,
                        dst,
                        lhs,
                        rhs,
                    } => {
                        // Symbolic-indexing collapse, as in the flat view.
                        fc.copies.push((lhs.0, dst.0));
                        fc.copies.push((rhs.0, dst.0));
                    }
                    InstKind::BinOp { .. } | InstKind::Cmp { .. } => {}
                    InstKind::Call { dst, callee, args } => match callee {
                        Callee::Direct(target) => {
                            if pre.is_broken_call(fid, inst.id) {
                                // Opaque edge: no constraints, no
                                // condensation edge (same semantics as
                                // the flat view's `continue`).
                                continue;
                            }
                            call_edges.push((fid.0, target.0));
                            let tf = module.function(*target);
                            for (i, &a) in args.iter().enumerate() {
                                if i < tf.params().len() {
                                    if let Some(s) =
                                        boundary.get(*target, BoundaryKind::Param(i as u32))
                                    {
                                        fc.bout.push((a.0, s));
                                    }
                                }
                            }
                            if let Some(d) = dst {
                                if let Some(s) = boundary.get(*target, BoundaryKind::Ret) {
                                    fc.bin.push((s, d.0));
                                }
                            }
                        }
                        Callee::Extern(e) => {
                            let decl = module.extern_decl(*e);
                            match decl.effect {
                                ExternEffect::AllocHeap => {
                                    if let Some(d) = dst {
                                        let o = new_object(
                                            &mut objects,
                                            ObjectKind::Heap {
                                                func: fid,
                                                site: inst.id,
                                            },
                                        );
                                        fc.seeds.push((d.0, o));
                                    }
                                }
                                ExternEffect::TaintSource => {
                                    if let Some(d) = dst {
                                        let o = new_object(
                                            &mut objects,
                                            ObjectKind::ExternBuf {
                                                func: fid,
                                                site: inst.id,
                                            },
                                        );
                                        fc.seeds.push((d.0, o));
                                    }
                                }
                                ExternEffect::StrCopy => {
                                    if let (Some(d), Some(&a0)) = (dst, args.first()) {
                                        fc.copies.push((a0.0, d.0));
                                    }
                                }
                                _ => {}
                            }
                        }
                        Callee::Indirect(_) => {}
                    },
                }
            }
            funcs.push(fc);
        }
        PartitionedConstraints {
            objects,
            boundary,
            funcs,
            call_edges,
        }
    }
}
