//! Hybrid sorted-vec / bitset object sets — the points-to set
//! representation shared by the delta solver and the partitioned
//! solver.

/// An object set: a sorted `Vec<u32>` while small, switching to a bitset
/// once it crosses [`ObjSet::SPILL`] elements. Iteration is ascending in
/// both representations, so exporting to `BTreeSet` is order-stable.
#[derive(Clone, Debug, Default)]
pub(crate) struct ObjSet {
    repr: Repr,
}

#[derive(Clone, Debug)]
enum Repr {
    Sorted(Vec<u32>),
    Bits { words: Vec<u64>, len: usize },
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Sorted(Vec::new())
    }
}

impl ObjSet {
    /// Elements at which a sorted vec spills into a bitset.
    pub(crate) const SPILL: usize = 128;

    pub(crate) fn len(&self) -> usize {
        match &self.repr {
            Repr::Sorted(v) => v.len(),
            Repr::Bits { len, .. } => *len,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn contains(&self, x: u32) -> bool {
        match &self.repr {
            Repr::Sorted(v) => v.binary_search(&x).is_ok(),
            Repr::Bits { words, .. } => {
                let (w, b) = ((x / 64) as usize, x % 64);
                words.get(w).is_some_and(|word| word & (1 << b) != 0)
            }
        }
    }

    /// Inserts `x`; true when newly added. Spills to bitset when large.
    pub(crate) fn insert(&mut self, x: u32) -> bool {
        match &mut self.repr {
            Repr::Sorted(v) => match v.binary_search(&x) {
                Ok(_) => false,
                Err(at) => {
                    v.insert(at, x);
                    if v.len() > Self::SPILL {
                        self.spill();
                    }
                    true
                }
            },
            Repr::Bits { words, len } => {
                let (w, b) = ((x / 64) as usize, x % 64);
                if words.len() <= w {
                    words.resize(w + 1, 0);
                }
                let newly = words[w] & (1 << b) == 0;
                if newly {
                    words[w] |= 1 << b;
                    *len += 1;
                }
                newly
            }
        }
    }

    fn spill(&mut self) {
        if let Repr::Sorted(v) = &self.repr {
            let max = v.last().copied().unwrap_or(0);
            let mut words = vec![0u64; max as usize / 64 + 1];
            for &x in v {
                words[(x / 64) as usize] |= 1 << (x % 64);
            }
            self.repr = Repr::Bits {
                words,
                len: v.len(),
            };
        }
    }

    /// Ascending iteration over elements.
    pub(crate) fn iter(&self) -> ObjSetIter<'_> {
        match &self.repr {
            Repr::Sorted(v) => ObjSetIter::Sorted(v.iter()),
            Repr::Bits { words, .. } => ObjSetIter::Bits {
                words,
                word: 0,
                cur: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Appends `self \ other` to `out` (ascending).
    pub(crate) fn diff_into(&self, other: &ObjSet, out: &mut Vec<u32>) {
        out.extend(self.iter().filter(|&x| !other.contains(x)));
    }
}

pub(crate) enum ObjSetIter<'a> {
    Sorted(std::slice::Iter<'a, u32>),
    Bits {
        words: &'a [u64],
        word: usize,
        cur: u64,
    },
}

impl Iterator for ObjSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            ObjSetIter::Sorted(it) => it.next().copied(),
            ObjSetIter::Bits { words, word, cur } => loop {
                if *cur != 0 {
                    let bit = cur.trailing_zeros();
                    *cur &= *cur - 1;
                    return Some(*word as u32 * 64 + bit);
                }
                *word += 1;
                if *word >= words.len() {
                    return None;
                }
                *cur = words[*word];
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn objset_hybrid_representation_round_trips() {
        let mut set = ObjSet::default();
        // Insert enough to force the bitset spill, out of order.
        let items: Vec<u32> = (0..400).map(|i| (i * 37) % 1009).collect();
        let mut expect = BTreeSet::new();
        for &x in &items {
            assert_eq!(set.insert(x), expect.insert(x), "insert {x}");
        }
        assert_eq!(set.len(), expect.len());
        assert!(matches!(set.repr, Repr::Bits { .. }), "must have spilled");
        let got: Vec<u32> = set.iter().collect();
        let want: Vec<u32> = expect.iter().copied().collect();
        assert_eq!(got, want, "ascending iteration across the spill");
        for x in 0..1100 {
            assert_eq!(set.contains(x), expect.contains(&x));
        }
        let mut other = ObjSet::default();
        other.insert(items[0]);
        let mut diff = Vec::new();
        set.diff_into(&other, &mut diff);
        assert_eq!(diff.len(), set.len() - 1);
    }
}
