//! Field-sensitive inclusion-based points-to analysis over the block memory
//! model (paper §3, "Points-to Analysis").
//!
//! Global and stack memory is partitioned into disjoint abstract objects;
//! heap objects use allocation-site abstraction; `gep` materializes *field*
//! objects beneath their parent (the block memory model). The analysis
//! reproduces the paper's well-identified unsound choices:
//!
//! * function pointers are **not** modeled (no objects flow through
//!   indirect calls);
//! * symbolic indexing (`ptr + variable`) collapses an array/object into a
//!   monolithic object — the result aliases the base;
//! * calls whose call-graph edge was broken (recursion) are opaque;
//! * unmodeled externals have no effect;
//! * parameters of a function are assumed not to alias each other.
//!
//! ## Solving
//!
//! The production solver ([`DeltaSolver`]) is a delta-propagation worklist
//! solver in the difference-propagation tradition: nodes live in a dense
//! `u32` arena (per-function variable bases, then object nodes), points-to
//! sets are hybrid sorted-vec/bitset [`ObjSet`]s with a `diff`/`union`
//! API, and each node carries a *delta* — the objects added since the node
//! was last visited — so the copy/load/store/gep rules only ever process
//! new objects. Copy edges are deduplicated at insertion, and copy-SCCs
//! are collapsed online into a union-find representative so cyclic copy
//! chains cannot ping-pong.
//!
//! The historical whole-set fixpoint solver is kept behind
//! `#[cfg(any(test, feature = "reference-solver"))]` as
//! [`PointsTo::solve_reference`] for differential testing: both solvers
//! consume the same [`Constraints`] and must agree on every points-to
//! relation (object *numbering* of field objects may differ — fields
//! materialize in solver-visit order — so comparisons go through
//! [`ObjectKind`] chains, not raw ids).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use manta_ir::{FuncId, GlobalId, InstId};

use crate::callgraph::CallGraph;
use crate::preprocess::Preprocessed;
use crate::VarRef;

mod constraints;
mod objset;
pub mod partition;
mod solver;

pub use partition::{PointsToSession, SessionReport};

use solver::DeltaSolver;

/// Identifies an abstract memory object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// What an abstract object abstracts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectKind {
    /// A stack slot (`alloca` site).
    Stack {
        /// Function containing the slot.
        func: FuncId,
        /// The `alloca` instruction.
        site: InstId,
        /// Slot size in bytes.
        size: u64,
    },
    /// A heap allocation site (`malloc`/`calloc` call).
    Heap {
        /// Function containing the allocation.
        func: FuncId,
        /// The call instruction.
        site: InstId,
    },
    /// A module global.
    Global(GlobalId),
    /// A field at a constant offset inside another object (block memory
    /// model).
    Field {
        /// The enclosing object.
        parent: ObjectId,
        /// Byte offset of the field.
        offset: u64,
    },
    /// A buffer returned by a modeled external (e.g. `nvram_get`).
    ExternBuf {
        /// Function containing the call.
        func: FuncId,
        /// The call instruction.
        site: InstId,
    },
}

/// Internal propagation-graph node: a variable or an object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) enum Node {
    Var(VarRef),
    Obj(ObjectId),
}

/// Per-visit delta cardinality: the work-shape of the delta solver (a
/// heavy tail means a few nodes re-propagate huge sets).
pub(crate) static DELTA_SIZES: manta_telemetry::Histogram =
    manta_telemetry::Histogram::new("pointsto.delta_size");
/// Largest points-to set cardinality seen at any fixpoint this run.
pub(crate) static PEAK_PTS: manta_telemetry::Counter =
    manta_telemetry::Counter::new("pointsto.peak_pts");

/// Why a points-to fact `n ∋ o` first appeared (first derivation wins —
/// later re-derivations of the same fact are not recorded).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PtsSource {
    /// An address-of seed (`alloca`, heap/extern allocation site,
    /// global address constant).
    Seed,
    /// Propagated along a copy edge from a variable.
    CopiedFromVar(VarRef),
    /// Propagated along a copy edge from an object's contents (the
    /// load/store rules materialize these edges).
    CopiedFromObj(ObjectId),
    /// A field object materialized by `gep` beneath this parent.
    FieldOf(ObjectId),
}

/// First-derivation provenance of the points-to relation, recorded only
/// while [`manta_telemetry::provenance_enabled`]. Facts whose node was
/// merged into a copy-SCC representative are recorded under the
/// representative's variable/object.
#[derive(Clone, Debug, Default)]
pub struct PointsToProvenance {
    /// `(v, o)` → how `v ∋ o` was first derived.
    pub var_origins: HashMap<(VarRef, ObjectId), PtsSource>,
    /// `(container, o)` → how `container ∋ o` was first derived.
    pub obj_origins: HashMap<(ObjectId, ObjectId), PtsSource>,
}

/// Points-to results: the map `ℙ : 𝕍 ∪ 𝕆 → 2^𝕆` of Figure 5.
#[derive(Debug)]
pub struct PointsTo {
    pub(crate) objects: Vec<ObjectKind>,
    pub(crate) field_intern: HashMap<(ObjectId, u64), ObjectId>,
    pub(crate) pts: HashMap<Node, BTreeSet<ObjectId>>,
    /// Number of solver worklist visits (reported by scalability figures).
    pub iterations: usize,
    /// Dense propagation-graph node count at fixpoint (variables plus
    /// objects, including materialized fields). 0 for the reference
    /// solver, which has no dense arena.
    pub constraint_nodes: usize,
    /// Copy edges inserted over the whole solve (deduplicated at
    /// insertion; includes edges the load/store rules added online).
    pub constraint_edges: usize,
    /// Copy-SCC collapse merges performed by the delta solver.
    pub scc_merges: usize,
    /// Largest points-to set cardinality at fixpoint.
    pub peak_pts: usize,
    /// Derivation provenance; `Some` only when provenance recording was
    /// on during the solve.
    pub provenance: Option<PointsToProvenance>,
}

static EMPTY: BTreeSet<ObjectId> = BTreeSet::new();

impl PointsTo {
    /// Solves points-to constraints for the preprocessed module with the
    /// delta-propagation solver.
    pub fn solve(pre: &Preprocessed, _cg: &CallGraph) -> PointsTo {
        let unlimited = manta_resilience::Budget::unlimited();
        match DeltaSolver::new(pre).run(&unlimited) {
            Ok(p) => p,
            // A fresh unlimited budget never trips.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// Solves points-to constraints under a cooperative budget. Fuel is
    /// charged per worklist visit and per delta element propagated, so
    /// runaway fixpoints are cut off mid-flight.
    ///
    /// # Errors
    ///
    /// Returns [`manta_resilience::BudgetExceeded`] when `budget` trips;
    /// partial solver state is discarded (points-to results are only
    /// meaningful at fixpoint).
    pub fn solve_budgeted(
        pre: &Preprocessed,
        _cg: &CallGraph,
        budget: &manta_resilience::Budget,
    ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
        DeltaSolver::new(pre).run(budget)
    }

    /// Solves with the historical whole-set fixpoint solver. Kept only as
    /// the differential-testing oracle for the delta solver.
    #[cfg(any(test, feature = "reference-solver"))]
    pub fn solve_reference(pre: &Preprocessed, _cg: &CallGraph) -> PointsTo {
        let unlimited = manta_resilience::Budget::unlimited();
        match solver::reference::Solver::new(pre).run(&unlimited) {
            Ok(p) => p,
            // A fresh unlimited budget never trips.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// Solves with the compositional solver: per-function constraint
    /// partitions with explicit boundary interfaces, scheduled as
    /// call-graph wavefronts ([`partition`]). Produces the same
    /// points-to relations as [`PointsTo::solve`] (pinned by the
    /// differential suite via [`ObjectKind`] chains).
    pub fn solve_partitioned(pre: &Preprocessed, _cg: &CallGraph) -> PointsTo {
        PointsToSession::new(pre).export()
    }

    /// [`PointsTo::solve_partitioned`] under a cooperative budget.
    ///
    /// # Errors
    ///
    /// Returns [`manta_resilience::BudgetExceeded`] when `budget` trips.
    pub fn solve_partitioned_budgeted(
        pre: &Preprocessed,
        _cg: &CallGraph,
        budget: &manta_resilience::Budget,
    ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
        Ok(PointsToSession::new_budgeted(pre, budget)?.export())
    }

    /// Points-to set of variable `v`.
    pub fn pts_var(&self, v: VarRef) -> &BTreeSet<ObjectId> {
        self.pts.get(&Node::Var(v)).unwrap_or(&EMPTY)
    }

    /// Points-to set of the contents of object `o`.
    pub fn pts_obj(&self, o: ObjectId) -> &BTreeSet<ObjectId> {
        self.pts.get(&Node::Obj(o)).unwrap_or(&EMPTY)
    }

    /// The kind of object `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not an object of this analysis.
    pub fn object_kind(&self, o: ObjectId) -> ObjectKind {
        self.objects[o.index()]
    }

    /// Iterates over all objects.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, ObjectKind)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, &k)| (ObjectId(i as u32), k))
    }

    /// Number of abstract objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The largest points-to set cardinality over all variables and
    /// objects (the "peak" reported by the benchmark harness).
    pub fn max_pts_len(&self) -> usize {
        self.pts.values().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// The field object `(parent, offset)` if it was materialized.
    pub fn field_of(&self, parent: ObjectId, offset: u64) -> Option<ObjectId> {
        self.field_intern.get(&(parent, offset)).copied()
    }

    /// Whether two variables may point to a common object.
    pub fn may_alias(&self, a: VarRef, b: VarRef) -> bool {
        let (pa, pb) = (self.pts_var(a), self.pts_var(b));
        if pa.len() <= pb.len() {
            pa.iter().any(|o| pb.contains(o))
        } else {
            pb.iter().any(|o| pa.contains(o))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use manta_ir::{BinOp, ModuleBuilder, Width};

    fn analyze(m: manta_ir::Module) -> (Preprocessed, PointsTo) {
        let pre = preprocess(m, PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let pts = PointsTo::solve(&pre, &cg);
        (pre, pts)
    }

    #[test]
    fn alloca_and_copy() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let a = fb.alloca(8);
        let b = fb.copy(a);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let va = VarRef::new(fid, a);
        let vb = VarRef::new(fid, b);
        assert_eq!(pts.pts_var(va).len(), 1);
        assert_eq!(pts.pts_var(va), pts.pts_var(vb));
        assert!(pts.may_alias(va, vb));
    }

    #[test]
    fn store_load_through_object() {
        // q = alloca; *q = p(heap); r = *q  ⇒  r points to the heap object.
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (fid, mut fb) = mb.function("f", &[], None);
        let sz = fb.const_int(16, Width::W64);
        let p = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
        let q = fb.alloca(8);
        fb.store(q, p);
        let r = fb.load(q, Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let heap: Vec<_> = pts.pts_var(VarRef::new(fid, p)).iter().copied().collect();
        assert_eq!(heap.len(), 1);
        assert!(matches!(pts.object_kind(heap[0]), ObjectKind::Heap { .. }));
        assert_eq!(
            pts.pts_var(VarRef::new(fid, r)),
            pts.pts_var(VarRef::new(fid, p))
        );
    }

    #[test]
    fn gep_materializes_fields() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let s = fb.alloca(16);
        let f0 = fb.gep(s, 0);
        let f8 = fb.gep(s, 8);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let base = *pts.pts_var(VarRef::new(fid, s)).iter().next().unwrap();
        let o0 = *pts.pts_var(VarRef::new(fid, f0)).iter().next().unwrap();
        let o8 = *pts.pts_var(VarRef::new(fid, f8)).iter().next().unwrap();
        assert_ne!(o0, o8, "distinct offsets are distinct field objects");
        assert_eq!(pts.field_of(base, 0), Some(o0));
        assert_eq!(pts.field_of(base, 8), Some(o8));
        assert!(!pts.may_alias(VarRef::new(fid, f0), VarRef::new(fid, f8)));
    }

    #[test]
    fn symbolic_indexing_collapses() {
        // r = base + i  ⇒  r aliases base (monolithic collapse).
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], None);
        let i = fb.param(0);
        let base = fb.alloca(64);
        let r = fb.binop(BinOp::Add, base, i, Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        assert!(pts.may_alias(VarRef::new(fid, base), VarRef::new(fid, r)));
    }

    #[test]
    fn interprocedural_param_and_return_binding() {
        // id(x) { return x; }  caller: y = id(stack_addr)
        let mut mb = ModuleBuilder::new("m");
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);
        let (caller, mut cb) = mb.function("caller", &[], None);
        let s = cb.alloca(8);
        let y = cb.call(id_f, &[s], Some(Width::W64)).unwrap();
        cb.ret(None);
        mb.finish_function(cb);
        let (pre, pts) = analyze(mb.finish());
        let id_f = pre.module.function_by_name("id").unwrap().id();
        let xp = pre.module.function(id_f).params()[0];
        assert_eq!(pts.pts_var(VarRef::new(id_f, xp)).len(), 1);
        assert_eq!(
            pts.pts_var(VarRef::new(caller, y)),
            pts.pts_var(VarRef::new(caller, s))
        );
    }

    #[test]
    fn globals_are_objects() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("cfg", 32);
        let (fid, mut fb) = mb.function("f", &[], None);
        let ga = fb.global_addr(g);
        let v = fb.load(ga, Width::W64);
        let _ = v;
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        let set = pts.pts_var(VarRef::new(fid, ga));
        assert_eq!(set.len(), 1);
        assert!(matches!(
            pts.object_kind(*set.iter().next().unwrap()),
            ObjectKind::Global(_)
        ));
    }

    #[test]
    fn indirect_calls_are_opaque() {
        let mut mb = ModuleBuilder::new("m");
        let (target, mut tb) = mb.function("target", &[Width::W64], None);
        tb.ret(None);
        mb.finish_function(tb);
        mb.mark_address_taken(target);
        let (fid, mut fb) = mb.function("f", &[], None);
        let fp = fb.func_addr(target);
        let s = fb.alloca(8);
        fb.call_indirect(fp, &[s], None);
        fb.ret(None);
        mb.finish_function(fb);
        let (pre, pts) = analyze(mb.finish());
        let target = pre.module.function_by_name("target").unwrap().id();
        let p = pre.module.function(target).params()[0];
        // Function pointers unmodeled ⇒ nothing flows into the target param.
        assert!(pts.pts_var(VarRef::new(target, p)).is_empty());
        let _ = fid;
    }

    #[test]
    fn copy_cycles_equalize_and_collapse() {
        // a → b → c → a plus a seed in a: everyone sees the seed, and
        // fields derived from any member match.
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let s = fb.alloca(8);
        let a = fb.copy(s);
        let b = fb.copy(a);
        let c = fb.copy(b);
        // Close the cycle with a phi so `a` also depends on `c`.
        // (copy-only cycles need a phi or call to appear in SSA.)
        let bb = fb.current_block();
        let p = fb.phi(&[(bb, a), (bb, c)], Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        for v in [a, b, c, p] {
            assert_eq!(
                pts.pts_var(VarRef::new(fid, v)),
                pts.pts_var(VarRef::new(fid, s)),
                "cycle member must carry the seed"
            );
        }
    }

    #[test]
    fn duplicate_copy_constraints_are_deduplicated() {
        // Two identical copy chains must not duplicate propagation: the
        // phi re-states `s → d` twice.
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[], None);
        let s = fb.alloca(8);
        let bb = fb.current_block();
        let d = fb.phi(&[(bb, s), (bb, s)], Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let (_, pts) = analyze(mb.finish());
        assert_eq!(
            pts.pts_var(VarRef::new(fid, d)),
            pts.pts_var(VarRef::new(fid, s))
        );
    }

    #[test]
    fn zero_fuel_budget_trips_solver() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[], None);
        fb.ret(None);
        mb.finish_function(fb);
        let pre = preprocess(mb.finish(), PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let b = manta_resilience::Budget::with_fuel(0);
        assert!(PointsTo::solve_budgeted(&pre, &cg, &b).is_err());
        assert!(PointsTo::solve_partitioned_budgeted(&pre, &cg, &b).is_err());
    }

    /// Canonical ObjectKind chain — object numbering may differ between
    /// solvers, so equality goes through kind chains.
    fn canon(p: &PointsTo, o: ObjectId) -> String {
        match p.object_kind(o) {
            ObjectKind::Stack { func, site, size } => {
                format!("stack({},{},{size})", func.0, site.0)
            }
            ObjectKind::Heap { func, site } => format!("heap({},{})", func.0, site.0),
            ObjectKind::Global(g) => format!("global({})", g.0),
            ObjectKind::Field { parent, offset } => {
                format!("field({},{offset})", canon(p, parent))
            }
            ObjectKind::ExternBuf { func, site } => format!("extbuf({},{})", func.0, site.0),
        }
    }

    fn var_shape(p: &PointsTo, pre: &Preprocessed) -> Vec<(u32, u32, Vec<String>)> {
        let mut out = Vec::new();
        for func in pre.module.functions() {
            let fid = func.id();
            for (v, _) in func.values() {
                let set = p.pts_var(VarRef::new(fid, v));
                if set.is_empty() {
                    continue;
                }
                let mut objs: Vec<String> = set.iter().map(|&o| canon(p, o)).collect();
                objs.sort();
                out.push((fid.0, v.0, objs));
            }
        }
        out
    }

    #[test]
    fn partitioned_matches_monolithic_on_interprocedural_flow() {
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);
        let (_caller, mut cb) = mb.function("caller", &[], None);
        let sz = cb.const_int(16, Width::W64);
        let h = cb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
        let s = cb.alloca(8);
        cb.store(s, h);
        let y = cb.call(id_f, &[s], Some(Width::W64)).unwrap();
        let f8 = cb.gep(y, 8);
        let _l = cb.load(f8, Width::W64);
        cb.ret(None);
        mb.finish_function(cb);
        let pre = preprocess(mb.finish(), PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let mono = PointsTo::solve(&pre, &cg);
        let part = PointsTo::solve_partitioned(&pre, &cg);
        assert_eq!(var_shape(&mono, &pre), var_shape(&part, &pre));
    }

    #[test]
    fn session_one_function_edit_resolves_only_dirty_cluster() {
        // Two disjoint call chains: editing one leaves the other clean.
        let build = |extra_alloca: bool| {
            let mut mb = ModuleBuilder::new("m");
            let (a_callee, mut ab) = mb.function("a_callee", &[Width::W64], Some(Width::W64));
            let p = ab.param(0);
            ab.ret(Some(p));
            mb.finish_function(ab);
            let (_a, mut fb) = mb.function("a", &[], None);
            let s = fb.alloca(8);
            if extra_alloca {
                let t = fb.alloca(16);
                let _ = fb.call(a_callee, &[t], Some(Width::W64));
            }
            let _ = fb.call(a_callee, &[s], Some(Width::W64));
            fb.ret(None);
            mb.finish_function(fb);
            let (b_callee, mut bb) = mb.function("b_callee", &[Width::W64], Some(Width::W64));
            let q = bb.param(0);
            bb.ret(Some(q));
            mb.finish_function(bb);
            let (_b, mut gb) = mb.function("b", &[], None);
            let u = gb.alloca(8);
            let _ = gb.call(b_callee, &[u], Some(Width::W64));
            gb.ret(None);
            mb.finish_function(gb);
            preprocess(mb.finish(), PreprocessConfig::default())
        };
        let pre0 = build(false);
        let mut session = PointsToSession::new(&pre0);
        assert_eq!(session.partition_count(), 4);
        let pre1 = build(true);
        let report = session.update(&pre1).clone();
        assert!(!report.full_resolve);
        // Function 1 ("a") was edited; its callee (function 0) reads a
        // boundary slot "a" feeds, so the closure is the a-cluster only.
        assert_eq!(report.edited, vec![1]);
        assert!(report.closure.contains(&1));
        assert!(
            !report.closure.contains(&3),
            "the disjoint b-cluster must stay clean, closure={:?}",
            report.closure
        );
        // And the re-solved session matches a fresh partitioned solve.
        let cg = CallGraph::build(&pre1);
        let fresh = PointsTo::solve_partitioned(&pre1, &cg);
        let resolved = session.export();
        assert_eq!(var_shape(&fresh, &pre1), var_shape(&resolved, &pre1));
        // Which in turn matches the monolithic solver.
        let mono = PointsTo::solve(&pre1, &cg);
        assert_eq!(var_shape(&mono, &pre1), var_shape(&resolved, &pre1));
    }
}
