//! The monolithic delta-propagation solver and the historical
//! whole-set reference solver (the differential-testing oracle). The
//! per-function partitioned solver lives in [`super::partition`].

use std::collections::{BTreeSet, HashMap, VecDeque};

use super::constraints::Constraints;
use super::objset::ObjSet;
use super::{
    Node, ObjectId, ObjectKind, PointsTo, PointsToProvenance, PtsSource, DELTA_SIZES, PEAK_PTS,
};
use crate::preprocess::Preprocessed;
use crate::VarRef;

/// Solver-internal derivation reason over raw dense node ids; resolved
/// to [`PtsSource`] at export.
#[derive(Clone, Copy, Debug)]
enum Origin {
    Seed,
    Copy(u32),
    Field(u32),
}

/// Delta-propagation worklist solver over a dense node arena.
///
/// Node numbering: per-function variable bases first (the same scheme the
/// DDG uses), then one node per abstract object (`nv + object index`,
/// growing as field objects materialize). Copy-SCCs are collapsed into a
/// union-find representative; per-node arrays always hold the live state
/// at the representative.
pub(super) struct DeltaSolver<'a> {
    pre: &'a Preprocessed,
    vars: Vec<VarRef>,
    var_base: Vec<u32>,
    nv: usize,
    objects: Vec<ObjectKind>,
    field_intern: HashMap<(ObjectId, u64), ObjectId>,
    // Per dense node:
    parent: Vec<u32>,
    pts: Vec<ObjSet>,
    delta: Vec<Vec<u32>>,
    /// Copy successors, sorted and deduplicated at insertion.
    succ: Vec<Vec<u32>>,
    load_dsts: Vec<Vec<u32>>,
    store_vals: Vec<Vec<u32>>,
    geps: Vec<Vec<(u32, u64)>>,
    on_list: Vec<bool>,
    list: VecDeque<u32>,
    iterations: usize,
    edges_since_scc: usize,
    total_edges: usize,
    scc_merges: u64,
    /// `(node, obj)` → first derivation; allocated only when provenance
    /// recording is on, so the off path costs one `Option` check per
    /// newly inserted fact.
    prov: Option<HashMap<(u32, u32), Origin>>,
}

impl<'a> DeltaSolver<'a> {
    pub(super) fn new(pre: &'a Preprocessed) -> Self {
        let module = &pre.module;
        let mut var_base = Vec::with_capacity(module.function_count());
        let mut vars = Vec::new();
        let mut next = 0u32;
        for f in module.functions() {
            var_base.push(next);
            for (v, _) in f.values() {
                vars.push(VarRef::new(f.id(), v));
            }
            next += f.value_count() as u32;
        }
        DeltaSolver {
            pre,
            vars,
            var_base,
            nv: next as usize,
            objects: Vec::new(),
            field_intern: HashMap::new(),
            parent: Vec::new(),
            pts: Vec::new(),
            delta: Vec::new(),
            succ: Vec::new(),
            load_dsts: Vec::new(),
            store_vals: Vec::new(),
            geps: Vec::new(),
            on_list: Vec::new(),
            list: VecDeque::new(),
            iterations: 0,
            edges_since_scc: 0,
            total_edges: 0,
            scc_merges: 0,
            prov: manta_telemetry::provenance_enabled().then(HashMap::new),
        }
    }

    fn var_node(&self, v: VarRef) -> u32 {
        self.var_base[v.func.index()] + v.value.0
    }

    fn obj_node(&self, o: ObjectId) -> u32 {
        (self.nv + o.index()) as u32
    }

    fn grow_to(&mut self, n: usize) {
        self.parent.extend(self.parent.len() as u32..n as u32);
        self.pts.resize_with(n, ObjSet::default);
        self.delta.resize_with(n, Vec::new);
        self.succ.resize_with(n, Vec::new);
        self.load_dsts.resize_with(n, Vec::new);
        self.store_vals.resize_with(n, Vec::new);
        self.geps.resize_with(n, Vec::new);
        self.on_list.resize(n, false);
    }

    fn new_object(&mut self, kind: ObjectKind) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(kind);
        self.grow_to(self.nv + self.objects.len());
        id
    }

    /// Union-find lookup with path halving.
    fn find(&mut self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            let gp = self.parent[self.parent[n as usize] as usize];
            self.parent[n as usize] = gp;
            n = gp;
        }
        n
    }

    fn enqueue(&mut self, n: u32) {
        if !self.on_list[n as usize] {
            self.on_list[n as usize] = true;
            self.list.push_back(n);
        }
    }

    /// Adds `objs` (deduplicated, any order) to `pts(n)`, extending the
    /// delta with the newly present ones. `origin` is recorded for each
    /// newly inserted fact when provenance recording is on.
    fn add_objs(&mut self, n: u32, objs: &[u32], origin: Origin) {
        let n = self.find(n);
        let mut any = false;
        for &o in objs {
            if self.pts[n as usize].insert(o) {
                self.delta[n as usize].push(o);
                any = true;
                if let Some(prov) = &mut self.prov {
                    prov.entry((n, o)).or_insert(origin);
                }
            }
        }
        if any {
            self.enqueue(n);
        }
    }

    /// Adds the copy edge `a → b`, deduplicating at insertion; a new edge
    /// immediately propagates `pts(a) \ pts(b)`.
    fn add_edge(&mut self, a: u32, b: u32) {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return;
        }
        match self.succ[a as usize].binary_search(&b) {
            Ok(_) => return, // duplicate copy constraint
            Err(at) => self.succ[a as usize].insert(at, b),
        }
        self.edges_since_scc += 1;
        self.total_edges += 1;
        let mut diff = Vec::new();
        self.pts[a as usize].diff_into(&self.pts[b as usize], &mut diff);
        if !diff.is_empty() {
            self.add_objs(b, &diff, Origin::Copy(a));
        }
    }

    /// Merges node `b` into representative `a` (cycle collapse): points-to
    /// sets union, constraint lists concatenate, and the combined delta
    /// covers the symmetric difference plus both pending deltas so every
    /// inherited edge and constraint sees what its side was missing.
    fn merge(&mut self, a: u32, b: u32) {
        debug_assert_ne!(a, b);
        self.scc_merges += 1;
        self.parent[b as usize] = a;
        let b_pts = std::mem::take(&mut self.pts[b as usize]);
        let mut b_only = Vec::new();
        b_pts.diff_into(&self.pts[a as usize], &mut b_only);
        let mut a_only = Vec::new();
        self.pts[a as usize].diff_into(&b_pts, &mut a_only);
        for &o in &b_only {
            self.pts[a as usize].insert(o);
        }
        let mut b_delta = std::mem::take(&mut self.delta[b as usize]);
        self.delta[a as usize].append(&mut b_delta);
        self.delta[a as usize].extend(b_only);
        self.delta[a as usize].extend(a_only);
        let b_succ = std::mem::take(&mut self.succ[b as usize]);
        for s in b_succ {
            match self.succ[a as usize].binary_search(&s) {
                Ok(_) => {}
                Err(at) => self.succ[a as usize].insert(at, s),
            }
        }
        let mut moved = std::mem::take(&mut self.load_dsts[b as usize]);
        self.load_dsts[a as usize].append(&mut moved);
        let mut moved = std::mem::take(&mut self.store_vals[b as usize]);
        self.store_vals[a as usize].append(&mut moved);
        let mut moved = std::mem::take(&mut self.geps[b as usize]);
        self.geps[a as usize].append(&mut moved);
        if !self.delta[a as usize].is_empty() {
            self.enqueue(a);
        }
    }

    /// Collapses every copy-SCC of the current (representative) copy graph
    /// into its minimum member — iterative Tarjan, merges applied after
    /// the pass so the traversal sees a consistent graph.
    fn collapse_sccs(&mut self) {
        let n = self.parent.len();
        let mut index = vec![0u32; n]; // 0 = unvisited
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 1u32;
        let mut components: Vec<Vec<u32>> = Vec::new();
        // Explicit DFS frames: (node, next successor position).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if self.find(root) != root || index[root as usize] != 0 {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos == 0 {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                }
                // Resolve the successor through the union-find at visit
                // time; merges are deferred, so reps are stable here.
                let succ_at = self.succ[v as usize].get(*pos).copied();
                match succ_at {
                    Some(raw) => {
                        *pos += 1;
                        let w = self.find(raw);
                        if w == v {
                            continue;
                        }
                        if index[w as usize] == 0 {
                            frames.push((w, 0));
                        } else if on_stack[w as usize] {
                            low[v as usize] = low[v as usize].min(index[w as usize]);
                        }
                    }
                    None => {
                        if low[v as usize] == index[v as usize] {
                            let mut comp = Vec::new();
                            while let Some(w) = stack.pop() {
                                on_stack[w as usize] = false;
                                comp.push(w);
                                if w == v {
                                    break;
                                }
                            }
                            if comp.len() > 1 {
                                components.push(comp);
                            }
                        }
                        frames.pop();
                        if let Some(&mut (p, _)) = frames.last_mut() {
                            low[p as usize] = low[p as usize].min(low[v as usize]);
                        }
                    }
                }
            }
        }
        for mut comp in components {
            comp.sort_unstable();
            let rep = comp[0];
            for &m in &comp[1..] {
                self.merge(rep, m);
            }
        }
        self.edges_since_scc = 0;
    }

    fn field(&mut self, parent: ObjectId, offset: u64) -> ObjectId {
        if let Some(&f) = self.field_intern.get(&(parent, offset)) {
            return f;
        }
        let f = self.new_object(ObjectKind::Field { parent, offset });
        self.field_intern.insert((parent, offset), f);
        f
    }

    pub(super) fn run(
        mut self,
        budget: &manta_resilience::Budget,
    ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
        budget.tick()?;
        let constraints = Constraints::collect(self.pre);
        for kind in &constraints.objects {
            let id = ObjectId(self.objects.len() as u32);
            self.objects.push(*kind);
            if let ObjectKind::Field { parent, offset } = *kind {
                self.field_intern.insert((parent, offset), id);
            }
        }
        self.grow_to(self.nv + self.objects.len());
        // Index complex constraints by their trigger node.
        for &(addr, dst) in &constraints.loads {
            let (a, d) = (self.var_node(addr), self.var_node(dst));
            self.load_dsts[a as usize].push(d);
        }
        for &(addr, val) in &constraints.stores {
            let (a, v) = (self.var_node(addr), self.var_node(val));
            self.store_vals[a as usize].push(v);
        }
        for &(base, dst, offset) in &constraints.geps {
            let (b, d) = (self.var_node(base), self.var_node(dst));
            self.geps[b as usize].push((d, offset));
        }
        for &(src, dst) in &constraints.copies {
            let (s, d) = (self.node_of(src), self.node_of(dst));
            self.add_edge(s, d);
        }
        for &(n, o) in &constraints.seeds {
            let n = self.node_of(n);
            self.add_objs(n, &[o.0], Origin::Seed);
        }
        // Collapse the static copy-SCCs up front; further collapses run
        // online as load/store rules add enough new edges.
        self.collapse_sccs();

        let scc_period = (self.parent.len() / 4).max(256);
        while let Some(n0) = self.list.pop_front() {
            self.iterations += 1;
            budget.tick()?;
            self.on_list[n0 as usize] = false;
            if self.edges_since_scc >= scc_period {
                self.collapse_sccs();
            }
            let n = self.find(n0);
            if n != n0 {
                continue; // merged away; the representative is enqueued
            }
            let mut d = std::mem::take(&mut self.delta[n as usize]);
            if d.is_empty() {
                continue;
            }
            d.sort_unstable();
            d.dedup();
            budget.consume(d.len() as u64)?;
            DELTA_SIZES.record(d.len() as u64);
            // Field derivation: materialize fields under each new object.
            let gep_list = std::mem::take(&mut self.geps[n as usize]);
            for &(dst, offset) in &gep_list {
                for &o in &d {
                    let f = self.field(ObjectId(o), offset);
                    self.add_objs(dst, &[f.0], Origin::Field(o));
                }
            }
            // Processing a node never merges it, so putting the (possibly
            // still-growing at the rep) list back is safe.
            let slot = self.find(n);
            self.geps[slot as usize].extend(gep_list);
            // Load rule: `dst ⊇ *addr` becomes edges obj → dst.
            let load_list = std::mem::take(&mut self.load_dsts[n as usize]);
            for &dst in &load_list {
                for &o in &d {
                    let on = self.obj_node(ObjectId(o));
                    self.add_edge(on, dst);
                }
            }
            let slot = self.find(n);
            self.load_dsts[slot as usize].extend(load_list);
            // Store rule: `*addr ⊇ val` becomes edges val → obj.
            let store_list = std::mem::take(&mut self.store_vals[n as usize]);
            for &val in &store_list {
                for &o in &d {
                    let on = self.obj_node(ObjectId(o));
                    self.add_edge(val, on);
                }
            }
            let slot = self.find(n);
            self.store_vals[slot as usize].extend(store_list);
            // Copy rule: push only the delta to each successor.
            let succ_list = std::mem::take(&mut self.succ[n as usize]);
            for &s in &succ_list {
                let s = self.find(s);
                if s != n {
                    self.add_objs(s, &d, Origin::Copy(n));
                }
            }
            let slot = self.find(n);
            debug_assert_eq!(slot, n, "processing must not merge the node");
            if self.succ[slot as usize].is_empty() {
                self.succ[slot as usize] = succ_list;
            } else {
                // Edges added while processing (via add_edge re-entry on
                // the same rep cannot happen, but merges into `n` can't
                // either; keep the union just in case).
                for s in succ_list {
                    match self.succ[slot as usize].binary_search(&s) {
                        Ok(_) => {}
                        Err(at) => self.succ[slot as usize].insert(at, s),
                    }
                }
            }
        }

        manta_telemetry::counter("pointsto.worklist_iters", self.iterations as u64);
        manta_telemetry::counter("pointsto.objects", self.objects.len() as u64);
        manta_telemetry::counter("pointsto.scc_merges", self.scc_merges);
        let out = self.export();
        manta_telemetry::counter("pointsto.constraint_nodes", out.constraint_nodes as u64);
        manta_telemetry::counter("pointsto.constraint_edges", out.constraint_edges as u64);
        PEAK_PTS.record_max(out.peak_pts as u64);
        Ok(out)
    }

    fn node_of(&self, n: Node) -> u32 {
        match n {
            Node::Var(v) => self.var_node(v),
            Node::Obj(o) => self.obj_node(o),
        }
    }

    /// Materializes the dense solution back into the map-keyed form the
    /// public API serves; every member of a collapsed cycle gets the
    /// representative's (shared) final set.
    fn export(mut self) -> PointsTo {
        let total = self.parent.len();
        let mut pts: HashMap<Node, BTreeSet<ObjectId>> = HashMap::new();
        let mut peak = 0usize;
        for n in 0..total as u32 {
            let rep = self.find(n);
            if self.pts[rep as usize].is_empty() {
                continue;
            }
            let set: BTreeSet<ObjectId> = self.pts[rep as usize].iter().map(ObjectId).collect();
            peak = peak.max(set.len());
            let key = if (n as usize) < self.nv {
                Node::Var(self.vars[n as usize])
            } else {
                Node::Obj(ObjectId(n - self.nv as u32))
            };
            pts.insert(key, set);
        }
        // Resolve raw dense node ids to public references. Every dense
        // node index names a concrete variable or object even after SCC
        // collapse (representatives are cycle members, not synthetics).
        let nv = self.nv;
        let vars = std::mem::take(&mut self.vars);
        let node_key = |raw: u32| -> Node {
            if (raw as usize) < nv {
                Node::Var(vars[raw as usize])
            } else {
                Node::Obj(ObjectId(raw - nv as u32))
            }
        };
        let provenance = self.prov.take().map(|raw| {
            let mut p = PointsToProvenance::default();
            for ((n, o), origin) in raw {
                let source = match origin {
                    Origin::Seed => PtsSource::Seed,
                    Origin::Copy(m) => match node_key(m) {
                        Node::Var(v) => PtsSource::CopiedFromVar(v),
                        Node::Obj(obj) => PtsSource::CopiedFromObj(obj),
                    },
                    Origin::Field(parent) => PtsSource::FieldOf(ObjectId(parent)),
                };
                match node_key(n) {
                    Node::Var(v) => {
                        p.var_origins.insert((v, ObjectId(o)), source);
                    }
                    Node::Obj(obj) => {
                        p.obj_origins.insert((obj, ObjectId(o)), source);
                    }
                }
            }
            p
        });
        PointsTo {
            objects: self.objects,
            field_intern: self.field_intern,
            pts,
            iterations: self.iterations,
            constraint_nodes: total,
            constraint_edges: self.total_edges,
            scc_merges: self.scc_merges as usize,
            peak_pts: peak,
            provenance,
        }
    }
}

// ---------------------------------------------------------------------------
// Reference solver (differential-testing oracle)
// ---------------------------------------------------------------------------

/// The historical whole-set fixpoint solver: re-propagates full points-to
/// sets every round. Quadratic on copy chains; kept only as the oracle the
/// delta solver is differentially tested against.
#[cfg(any(test, feature = "reference-solver"))]
pub(super) mod reference {
    use super::*;

    pub(in crate::pointsto) struct Solver<'a> {
        pre: &'a Preprocessed,
        objects: Vec<ObjectKind>,
        field_intern: HashMap<(ObjectId, u64), ObjectId>,
        pts: HashMap<Node, BTreeSet<ObjectId>>,
        /// Simple inclusion edges `src ⊆ dst`, deduplicated at insertion.
        copy_edges: HashMap<Node, Vec<Node>>,
        /// Complex constraints re-evaluated each round.
        loads: Vec<(VarRef, VarRef)>,
        stores: Vec<(VarRef, VarRef)>,
        geps: Vec<(VarRef, VarRef, u64)>,
    }

    impl<'a> Solver<'a> {
        pub(in crate::pointsto) fn new(pre: &'a Preprocessed) -> Self {
            Solver {
                pre,
                objects: Vec::new(),
                field_intern: HashMap::new(),
                pts: HashMap::new(),
                copy_edges: HashMap::new(),
                loads: Vec::new(),
                stores: Vec::new(),
                geps: Vec::new(),
            }
        }

        fn field(&mut self, parent: ObjectId, offset: u64) -> ObjectId {
            if let Some(&f) = self.field_intern.get(&(parent, offset)) {
                return f;
            }
            let f = ObjectId(self.objects.len() as u32);
            self.objects.push(ObjectKind::Field { parent, offset });
            self.field_intern.insert((parent, offset), f);
            f
        }

        fn add_obj(&mut self, n: Node, o: ObjectId) -> bool {
            self.pts.entry(n).or_default().insert(o)
        }

        fn add_copy(&mut self, src: Node, dst: Node) {
            // Deduplicate at insertion: repeated copy constraints used to
            // multiply propagation work for no precision.
            let edges = self.copy_edges.entry(src).or_default();
            if !edges.contains(&dst) {
                edges.push(dst);
            }
        }

        pub(in crate::pointsto) fn run(
            mut self,
            budget: &manta_resilience::Budget,
        ) -> Result<PointsTo, manta_resilience::BudgetExceeded> {
            let constraints = Constraints::collect(self.pre);
            self.objects = constraints.objects;
            for (i, kind) in self.objects.iter().enumerate() {
                if let ObjectKind::Field { parent, offset } = *kind {
                    self.field_intern
                        .insert((parent, offset), ObjectId(i as u32));
                }
            }
            for &(n, o) in &constraints.seeds {
                self.add_obj(n, o);
            }
            for &(s, d) in &constraints.copies {
                self.add_copy(s, d);
            }
            self.loads = constraints.loads;
            self.stores = constraints.stores;
            self.geps = constraints.geps;

            // Fixpoint: propagate along copy edges, then re-derive complex
            // constraints; repeat until stable.
            let mut iterations = 0;
            loop {
                iterations += 1;
                budget.tick()?;
                let mut changed = false;
                // Copy propagation to a local fixpoint.
                loop {
                    budget.tick()?;
                    let mut inner_changed = false;
                    let srcs: Vec<Node> = self.copy_edges.keys().copied().collect();
                    for src in srcs {
                        budget.tick()?;
                        let set = match self.pts.get(&src) {
                            Some(s) if !s.is_empty() => s.clone(),
                            _ => continue,
                        };
                        let dsts = self.copy_edges[&src].clone();
                        for dst in dsts {
                            for &o in &set {
                                if self.add_obj(dst, o) {
                                    inner_changed = true;
                                }
                            }
                        }
                    }
                    if !inner_changed {
                        break;
                    }
                    changed = true;
                }
                // Complex constraints.
                budget.consume((self.geps.len() + self.loads.len() + self.stores.len()) as u64)?;
                for (base, dst, offset) in self.geps.clone() {
                    let bases = self.pts.get(&Node::Var(base)).cloned().unwrap_or_default();
                    for b in bases {
                        let f = self.field(b, offset);
                        if self.add_obj(Node::Var(dst), f) {
                            changed = true;
                        }
                    }
                }
                for (addr, dst) in self.loads.clone() {
                    let addrs = self.pts.get(&Node::Var(addr)).cloned().unwrap_or_default();
                    for o in addrs {
                        let contents = self.pts.get(&Node::Obj(o)).cloned().unwrap_or_default();
                        for c in contents {
                            if self.add_obj(Node::Var(dst), c) {
                                changed = true;
                            }
                        }
                    }
                }
                for (addr, val) in self.stores.clone() {
                    let addrs = self.pts.get(&Node::Var(addr)).cloned().unwrap_or_default();
                    let vals = self.pts.get(&Node::Var(val)).cloned().unwrap_or_default();
                    for o in addrs {
                        for &v in &vals {
                            if self.add_obj(Node::Obj(o), v) {
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            // The oracle has no dense arena or SCC machinery; shape
            // introspection and provenance are delta-solver features.
            let peak = self.pts.values().map(BTreeSet::len).max().unwrap_or(0);
            Ok(PointsTo {
                objects: self.objects,
                field_intern: self.field_intern,
                pts: self.pts,
                iterations,
                constraint_nodes: 0,
                constraint_edges: 0,
                scc_merges: 0,
                peak_pts: peak,
                provenance: None,
            })
        }
    }
}
