//! The compositional (partitioned) points-to solver and its resident
//! incremental session.
//!
//! ## Model
//!
//! The module's constraint system is split into one partition per
//! function ([`super::constraints::FunctionConstraints`]). A partition
//! owns its function's variable nodes outright; everything that crosses
//! a function boundary goes through shared state with explicit
//! interfaces:
//!
//! * **boundary slots** — one per `(function, parameter)` and one per
//!   function return ([`super::constraints::BoundaryTable`]). Callers
//!   write argument facts into the callee's parameter slots and read
//!   the callee's return slot; the callee does the converse.
//! * **object contents** — the points-to sets of abstract objects.
//!   Stores write them, loads read them; since objects escape freely
//!   (globals, heap buffers passed around), they are the shared medium
//!   for every aliasing flow the boundary slots don't capture.
//!
//! ## Schedule
//!
//! Partitions are condensed over the direct-call graph
//! ([`manta_parallel::wavefront::condense`]) and solved callees-first,
//! level by level: every dirty partition in a level runs its *local*
//! fixpoint as an independent parallel job against a frozen snapshot of
//! the shared state, then a sequential merge (in batch order — the same
//! merge a serial run performs) applies each job's deltas, materializes
//! new field objects into the global table, and re-dirties exactly the
//! partitions whose read footprint intersects the changed slots and
//! objects. Sweeps repeat until no partition is dirty — at which point
//! every constraint in the module is satisfied, i.e. the result is the
//! same least fixpoint the monolithic [`super::solver::DeltaSolver`]
//! computes (the differential suite pins this via [`ObjectKind`]
//! chains; field-object *numbering* may differ, as it already does
//! between the delta and reference solvers).
//!
//! Determinism: jobs only read the frozen snapshot, merges run in batch
//! order, and local field objects are remapped through the shared
//! intern table at merge — so the result is a pure function of the
//! module, independent of thread count.
//!
//! ## Incremental re-solve
//!
//! [`PointsToSession`] keeps the solved partitions resident. On an
//! edit, it diffs per-partition constraint fingerprints, computes the
//! *dirty closure* (edited partitions plus every transitive consumer of
//! facts they wrote, via recorded read/write footprints over objects
//! and boundary slots), resets only that closure, rebuilds the shared
//! state from the untouched partitions' recorded contributions, and
//! re-runs the sweep with just the closure enqueued. A one-function
//! edit therefore re-solves its own partition plus the dirtied part of
//! its caller/alias neighborhood, not the module.

use std::collections::{HashMap, VecDeque};

use manta_ir::{FuncId, ValueId};
use manta_parallel::wavefront;
use manta_resilience::{Budget, BudgetExceeded};

use super::constraints::{
    BoundaryKind, BoundaryTable, FunctionConstraints, PartitionedConstraints,
};
use super::objset::ObjSet;
use super::{Node, ObjectId, ObjectKind, PointsTo, PEAK_PTS};
use crate::preprocess::Preprocessed;
use crate::VarRef;

/// What one partitioned solve (or session update) did — the
/// observability surface for the edit-storm suite and the benchmark's
/// incremental leg.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Partitions whose constraint fingerprint changed (function
    /// indices). On a fresh solve: every function.
    pub edited: Vec<u32>,
    /// The dirty closure that was reset and re-enqueued (function
    /// indices, ascending). On a fresh solve: every function.
    pub closure: Vec<u32>,
    /// Local fixpoint jobs dispatched (a partition re-run in two sweeps
    /// counts twice).
    pub jobs: usize,
    /// Distinct partitions that ran at least one job.
    pub resolved: usize,
    /// Wavefront sweeps until quiescence.
    pub sweeps: usize,
    /// Facts merged into shared state (boundary slots plus object
    /// contents).
    pub boundary_deltas: u64,
    /// Whether the update fell back to a counted full re-solve
    /// (function count or signature surface changed).
    pub full_resolve: bool,
}

/// One function's resident solver state.
struct Partition {
    cons: FunctionConstraints,
    fingerprint: u64,
    /// Persistent local solution, indexed by dense `ValueId`.
    var_pts: Vec<ObjSet>,
    /// Objects whose contents this partition has loaded.
    reads_objs: ObjSet,
    /// Objects this partition has stored into.
    writes_objs: ObjSet,
    /// Everything this partition contributed to shared object contents
    /// (lets shared state be rebuilt without re-running the partition).
    contrib_obj: HashMap<u32, ObjSet>,
    /// Contributions to boundary slots.
    contrib_bnd: HashMap<u32, ObjSet>,
    dirty: bool,
    ran: bool,
}

impl Partition {
    fn new(cons: FunctionConstraints, objects: &[ObjectKind]) -> Partition {
        let fingerprint = cons.fingerprint(objects);
        let var_pts = (0..cons.num_vars).map(|_| ObjSet::default()).collect();
        Partition {
            cons,
            fingerprint,
            var_pts,
            reads_objs: ObjSet::default(),
            writes_objs: ObjSet::default(),
            contrib_obj: HashMap::new(),
            contrib_bnd: HashMap::new(),
            dirty: true,
            ran: false,
        }
    }
}

/// A local fixpoint job's result over a frozen snapshot. Object ids
/// `>= base` index `new_objs` (job-local field objects, remapped at
/// merge).
struct JobOut {
    part: u32,
    /// The global object-table length the job was dispatched against.
    base: u32,
    var_pts: Vec<ObjSet>,
    /// Accumulated object contents (the job's full local view, diffed
    /// against shared state at merge), ascending by object id.
    obj_acc: Vec<(u32, ObjSet)>,
    /// Accumulated boundary-slot facts, ascending by slot.
    bnd_acc: Vec<(u32, ObjSet)>,
    /// Locally materialized field objects `(parent, offset)` in
    /// creation order; `parent` may itself be local.
    new_objs: Vec<(u32, u64)>,
    reads_objs: ObjSet,
    writes_objs: ObjSet,
    iterations: usize,
}

/// Runs one partition's local fixpoint against the frozen snapshot.
///
/// The kernel is difference-propagating, like the module-level delta
/// solver: each `(edge, object)` pair is visited once per job, not once
/// per round, so the partitioned solve keeps the delta solver's cost
/// model and the batch-mode win reduces to wavefront scheduling. Loads
/// and stores discover their object targets as address sets grow and
/// register dynamic edges (`obj_sinks`, `val_sinks`) so later content
/// growth reaches them without a rescan.
#[allow(clippy::too_many_arguments)] // solver plumbing, all call sites internal
fn run_local(
    part: u32,
    cons: &FunctionConstraints,
    mut var_pts: Vec<ObjSet>,
    base: u32,
    field_intern: &HashMap<(ObjectId, u64), ObjectId>,
    obj_pts: &[ObjSet],
    bnd_pts: &[ObjSet],
    budget: &Budget,
) -> Result<JobOut, BudgetExceeded> {
    let nv = cons.num_vars as usize;
    let mut new_objs: Vec<(u32, u64)> = Vec::new();
    let mut local_intern: HashMap<(u32, u64), u32> = HashMap::new();
    let mut obj_acc: HashMap<u32, ObjSet> = HashMap::new();
    let mut bnd_acc: HashMap<u32, ObjSet> = HashMap::new();
    let mut reads_objs = ObjSet::default();
    let mut writes_objs = ObjSet::default();
    let mut iterations = 0usize;

    // Static per-variable constraint indexes, built once per job.
    let mut copy_out: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for &(src, dst) in &cons.copies {
        if src != dst {
            copy_out[src as usize].push(dst);
        }
    }
    let mut gep_out: Vec<Vec<(u32, u64)>> = vec![Vec::new(); nv];
    for &(bse, dst, offset) in &cons.geps {
        gep_out[bse as usize].push((dst, offset));
    }
    let mut load_out: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for &(addr, dst) in &cons.loads {
        load_out[addr as usize].push(dst);
    }
    let mut store_out: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for &(addr, val) in &cons.stores {
        store_out[addr as usize].push(val);
    }
    let mut bout_out: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for &(v, slot) in &cons.bout {
        bout_out[v as usize].push(slot);
    }

    // Dynamic edges discovered as address sets grow: object → load
    // destinations, and store-value variable → target objects.
    let mut obj_sinks: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut val_sinks: Vec<Vec<u32>> = vec![Vec::new(); nv];

    let mut var_delta: Vec<ObjSet> = (0..nv).map(|_| ObjSet::default()).collect();
    let mut var_q: VecDeque<u32> = VecDeque::new();
    let mut var_in_q: Vec<bool> = vec![false; nv];
    // An object is queued iff it has an `obj_delta` entry.
    let mut obj_delta: HashMap<u32, ObjSet> = HashMap::new();
    let mut obj_q: VecDeque<u32> = VecDeque::new();

    macro_rules! var_insert {
        ($v:expr, $x:expr) => {{
            let v = $v as usize;
            let x: u32 = $x;
            if var_pts[v].insert(x) {
                var_delta[v].insert(x);
                if !var_in_q[v] {
                    var_in_q[v] = true;
                    var_q.push_back(v as u32);
                }
            }
        }};
    }
    // Accumulates unconditionally into `obj_acc` (the merge rebuilds
    // shared state from contributions, so every stored fact must be
    // recorded even when the frozen global set already holds it), but
    // only propagates union-new members: registered readers saw the
    // frozen global set at registration time.
    macro_rules! obj_insert {
        ($o:expr, $x:expr) => {{
            let o: u32 = $o;
            let x: u32 = $x;
            if obj_acc.entry(o).or_default().insert(x)
                && !(o < base && obj_pts[o as usize].contains(x))
            {
                let d = obj_delta.entry(o).or_default();
                if d.is_empty() {
                    obj_q.push_back(o);
                }
                d.insert(x);
            }
        }};
    }

    for &(v, o) in &cons.seeds {
        var_insert!(v, o.0);
    }
    for &(slot, v) in &cons.bin {
        for x in bnd_pts[slot as usize].iter() {
            var_insert!(v, x);
        }
    }
    // Warm start: the partition's previous solution must re-propagate
    // in full — shared object/boundary state was rebuilt from scratch
    // around this job.
    for v in 0..nv {
        let existing: Vec<u32> = var_pts[v].iter().collect();
        for x in existing {
            var_delta[v].insert(x);
        }
        if !var_delta[v].is_empty() && !var_in_q[v] {
            var_in_q[v] = true;
            var_q.push_back(v as u32);
        }
    }

    loop {
        if let Some(v) = var_q.pop_front() {
            let vi = v as usize;
            var_in_q[vi] = false;
            let d = std::mem::take(&mut var_delta[vi]);
            iterations += 1;
            budget.tick()?;
            budget.consume(d.len() as u64)?;
            for x in d.iter() {
                for &dst in &copy_out[vi] {
                    var_insert!(dst, x);
                }
                for &(dst, offset) in &gep_out[vi] {
                    // Fields already materialized globally keep their
                    // global id; everything else interns locally.
                    let known = if x < base {
                        field_intern.get(&(ObjectId(x), offset)).map(|g| g.0)
                    } else {
                        None
                    };
                    let f = match known {
                        Some(g) => g,
                        None => *local_intern.entry((x, offset)).or_insert_with(|| {
                            let id = base + new_objs.len() as u32;
                            new_objs.push((x, offset));
                            id
                        }),
                    };
                    var_insert!(dst, f);
                }
                for &dst in &load_out[vi] {
                    // `x` just entered a load address set: register the
                    // destination as a reader and replay the object's
                    // current content (frozen global + local additions).
                    reads_objs.insert(x);
                    obj_sinks.entry(x).or_default().push(dst);
                    if x < base {
                        if let Some(s) = obj_pts.get(x as usize) {
                            for y in s.iter() {
                                var_insert!(dst, y);
                            }
                        }
                    }
                    let cur: Vec<u32> = obj_acc
                        .get(&x)
                        .map(|s| s.iter().collect())
                        .unwrap_or_default();
                    for y in cur {
                        var_insert!(dst, y);
                    }
                }
                for &val in &store_out[vi] {
                    // `x` just entered a store address set: the value
                    // variable's whole current set flows in, and future
                    // value growth follows via `val_sinks`.
                    writes_objs.insert(x);
                    val_sinks[val as usize].push(x);
                    let cur: Vec<u32> = var_pts[val as usize].iter().collect();
                    for y in cur {
                        obj_insert!(x, y);
                    }
                }
                for &o in &val_sinks[vi] {
                    obj_insert!(o, x);
                }
                for &slot in &bout_out[vi] {
                    bnd_acc.entry(slot).or_default().insert(x);
                }
            }
        } else if let Some(o) = obj_q.pop_front() {
            let d = obj_delta.remove(&o).unwrap_or_default();
            iterations += 1;
            budget.tick()?;
            budget.consume(d.len() as u64)?;
            let sinks: Vec<u32> = obj_sinks.get(&o).cloned().unwrap_or_default();
            for x in d.iter() {
                for &dst in &sinks {
                    var_insert!(dst, x);
                }
            }
        } else {
            break;
        }
    }

    let mut obj_acc: Vec<(u32, ObjSet)> = obj_acc.into_iter().collect();
    obj_acc.sort_unstable_by_key(|&(o, _)| o);
    let mut bnd_acc: Vec<(u32, ObjSet)> = bnd_acc.into_iter().collect();
    bnd_acc.sort_unstable_by_key(|&(s, _)| s);
    Ok(JobOut {
        part,
        base,
        var_pts,
        obj_acc,
        bnd_acc,
        new_objs,
        reads_objs,
        writes_objs,
        iterations,
    })
}

/// FNV over the boundary slot list: any signature-surface change (a
/// function added, removed, or re-aritied) reshapes it, forcing the
/// session down the counted full-re-solve path.
fn boundary_shape(boundary: &BoundaryTable) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in 0..boundary.len() as u32 {
        let (f, k) = boundary.slot(s);
        let tag = match k {
            BoundaryKind::Param(i) => (u64::from(i) << 1) | 2,
            BoundaryKind::Ret => 1,
        };
        h ^= u64::from(f.0).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Groups function indices into wavefront levels (callees first).
fn schedule(nfuncs: usize, call_edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let cond = wavefront::condense(nfuncs, call_edges);
    let node_levels = cond.node_levels();
    wavefront::group_by_level((0..nfuncs as u32).map(|f| (f, ())).collect(), |f: u32| {
        node_levels[f as usize]
    })
    .into_iter()
    .map(|l| l.into_iter().map(|(f, ())| f).collect())
    .collect()
}

/// The resident partitioned solver: the shared tables plus one
/// partition per function. [`PointsToSession::export`] produces a
/// [`PointsTo`]; [`PointsToSession::update_budgeted`] re-solves after
/// an edit, touching only the dirty closure.
pub struct PointsToSession {
    objects: Vec<ObjectKind>,
    field_intern: HashMap<(ObjectId, u64), ObjectId>,
    /// Non-field object kinds → ids, matching allocation sites across
    /// edits (object ids are append-only for the session's lifetime).
    site_index: HashMap<ObjectKind, ObjectId>,
    obj_pts: Vec<ObjSet>,
    bnd_pts: Vec<ObjSet>,
    boundary_slots: usize,
    boundary_shape: u64,
    parts: Vec<Partition>,
    /// Reverse read index: object id -> partitions that have loaded its
    /// contents (registered as each job merges). May hold stale entries
    /// after a closure reset -- a superset only costs a warm no-op job.
    obj_readers: HashMap<u32, Vec<u32>>,
    /// Reverse boundary index: slot -> partitions with a boundary-in
    /// copy on it. Static per constraint set; rebuilt whenever any
    /// partition's constraints are replaced.
    bnd_readers: Vec<Vec<u32>>,
    /// Wavefront levels over function indices (callees first).
    levels: Vec<Vec<u32>>,
    iterations: usize,
    /// Last report (the fresh solve, or the latest update).
    last_report: SessionReport,
}

impl PointsToSession {
    /// Builds the partitions and solves to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when `budget` trips; the session is
    /// not usable afterwards (points-to state is only meaningful at
    /// fixpoint).
    pub fn new_budgeted(
        pre: &Preprocessed,
        budget: &Budget,
    ) -> Result<PointsToSession, BudgetExceeded> {
        budget.tick()?;
        let pc = PartitionedConstraints::collect(pre);
        let nfuncs = pc.funcs.len();
        let mut site_index = HashMap::new();
        for (i, &k) in pc.objects.iter().enumerate() {
            site_index.insert(k, ObjectId(i as u32));
        }
        let levels = schedule(nfuncs, &pc.call_edges);
        let shape = boundary_shape(&pc.boundary);
        let parts: Vec<Partition> = pc
            .funcs
            .into_iter()
            .map(|fc| Partition::new(fc, &pc.objects))
            .collect();
        let mut session = PointsToSession {
            obj_pts: (0..pc.objects.len()).map(|_| ObjSet::default()).collect(),
            bnd_pts: (0..pc.boundary.len()).map(|_| ObjSet::default()).collect(),
            boundary_slots: pc.boundary.len(),
            boundary_shape: shape,
            objects: pc.objects,
            field_intern: HashMap::new(),
            site_index,
            parts,
            obj_readers: HashMap::new(),
            bnd_readers: Vec::new(),
            levels,
            iterations: 0,
            last_report: SessionReport::default(),
        };
        session.rebuild_bnd_readers();
        let mut report = SessionReport {
            edited: (0..nfuncs as u32).collect(),
            closure: (0..nfuncs as u32).collect(),
            ..SessionReport::default()
        };
        session.solve_dirty(budget, &mut report)?;
        manta_telemetry::counter("pointsto.partitions", nfuncs as u64);
        session.last_report = report;
        Ok(session)
    }

    /// Builds and solves with an unlimited budget.
    pub fn new(pre: &Preprocessed) -> PointsToSession {
        let unlimited = Budget::unlimited();
        match PointsToSession::new_budgeted(pre, &unlimited) {
            Ok(s) => s,
            // A fresh unlimited budget never trips.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// The report of the most recent solve or update.
    pub fn report(&self) -> &SessionReport {
        &self.last_report
    }

    /// Number of partitions (one per function).
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Re-solves after an edit: diffs constraint fingerprints, resets
    /// the dirty closure, rebuilds shared state from the untouched
    /// partitions' contributions, and sweeps only what the closure
    /// dirties. Falls back to a counted full re-solve when the module's
    /// shape changed incompatibly (function count or signature
    /// surface).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when `budget` trips.
    pub fn update_budgeted(
        &mut self,
        pre: &Preprocessed,
        budget: &Budget,
    ) -> Result<&SessionReport, BudgetExceeded> {
        budget.tick()?;
        let pc = PartitionedConstraints::collect(pre);
        let nfuncs = pc.funcs.len();
        if nfuncs != self.parts.len() || boundary_shape(&pc.boundary) != self.boundary_shape {
            manta_telemetry::counter("pointsto.full_resolves", 1);
            *self = PointsToSession::new_budgeted(pre, budget)?;
            self.last_report.full_resolve = true;
            return Ok(&self.last_report);
        }

        // Map the fresh collection's object ids onto the session's
        // append-only table; allocation sites match by kind.
        let mut obj_map: Vec<u32> = Vec::with_capacity(pc.objects.len());
        for &k in &pc.objects {
            let id = match self.site_index.get(&k) {
                Some(&id) => id,
                None => {
                    let id = ObjectId(self.objects.len() as u32);
                    self.objects.push(k);
                    self.obj_pts.push(ObjSet::default());
                    self.site_index.insert(k, id);
                    id
                }
            };
            obj_map.push(id.0);
        }
        let new_cons: Vec<FunctionConstraints> = pc
            .funcs
            .into_iter()
            .map(|mut fc| {
                for (_, o) in &mut fc.seeds {
                    *o = ObjectId(obj_map[o.index()]);
                }
                fc
            })
            .collect();

        // Diff fingerprints against the resident partitions.
        let edited: Vec<u32> = new_cons
            .iter()
            .enumerate()
            .filter(|(i, fc)| fc.fingerprint(&self.objects) != self.parts[*i].fingerprint)
            .map(|(i, _)| i as u32)
            .collect();

        // The call graph may have been rewired: rebuild the schedule.
        self.levels = schedule(nfuncs, &pc.call_edges);

        // Dirty closure: edited partitions plus every transitive
        // consumer of facts they wrote (object contents they stored to,
        // boundary slots they fed). Old footprints cover retraction of
        // previously-derived facts; *new* writes dirty their readers
        // during the sweep itself, as in a fresh solve.
        let mut in_closure = vec![false; nfuncs];
        let mut frontier: Vec<u32> = edited.clone();
        for &e in &edited {
            in_closure[e as usize] = true;
        }
        while let Some(d) = frontier.pop() {
            let part = &self.parts[d as usize];
            let wrote_objs = &part.writes_objs;
            let wrote_bnds: Vec<u32> = part
                .contrib_bnd
                .keys()
                .copied()
                .chain(part.cons.bout.iter().map(|&(_, s)| s))
                .chain(new_cons[d as usize].bout.iter().map(|&(_, s)| s))
                .collect();
            for (p, other) in self.parts.iter().enumerate() {
                if in_closure[p] {
                    continue;
                }
                let hit = other.reads_objs.iter().any(|o| wrote_objs.contains(o))
                    || wrote_bnds
                        .iter()
                        .any(|s| other.cons.bin.iter().any(|&(slot, _)| slot == *s));
                if hit {
                    in_closure[p] = true;
                    frontier.push(p as u32);
                }
            }
        }
        let closure: Vec<u32> = (0..nfuncs as u32)
            .filter(|&p| in_closure[p as usize])
            .collect();

        // Reset the closure; rebuild shared state from the untouched
        // partitions' recorded contributions.
        for &p in &closure {
            self.parts[p as usize] = Partition::new(new_cons[p as usize].clone(), &self.objects);
        }
        // Reset partitions re-register their true read sets as they
        // re-run; drop their old registrations so the index mirrors
        // `reads_objs` again.
        if !closure.is_empty() {
            let in_cl = &in_closure;
            for readers in self.obj_readers.values_mut() {
                readers.retain(|&p| !in_cl[p as usize]);
            }
        }
        self.rebuild_bnd_readers();
        for s in &mut self.obj_pts {
            *s = ObjSet::default();
        }
        for s in &mut self.bnd_pts {
            *s = ObjSet::default();
        }
        for part in &self.parts {
            if part.dirty {
                continue; // reset partitions re-contribute by running
            }
            for (&o, set) in &part.contrib_obj {
                let dst = &mut self.obj_pts[o as usize];
                for x in set.iter() {
                    dst.insert(x);
                }
            }
            for (&s, set) in &part.contrib_bnd {
                let dst = &mut self.bnd_pts[s as usize];
                for x in set.iter() {
                    dst.insert(x);
                }
            }
        }

        for part in &mut self.parts {
            part.ran = false;
        }
        let mut report = SessionReport {
            edited,
            closure,
            ..SessionReport::default()
        };
        self.solve_dirty(budget, &mut report)?;
        self.last_report = report;
        Ok(&self.last_report)
    }

    /// [`PointsToSession::update_budgeted`] with an unlimited budget.
    pub fn update(&mut self, pre: &Preprocessed) -> &SessionReport {
        let unlimited = Budget::unlimited();
        match self.update_budgeted(pre, &unlimited) {
            Ok(_) => &self.last_report,
            // A fresh unlimited budget never trips.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// Sweeps wavefront levels until no partition is dirty.
    fn solve_dirty(
        &mut self,
        budget: &Budget,
        report: &mut SessionReport,
    ) -> Result<(), BudgetExceeded> {
        loop {
            let mut any = false;
            for li in 0..self.levels.len() {
                let batch: Vec<u32> = self.levels[li]
                    .iter()
                    .copied()
                    .filter(|&p| self.parts[p as usize].dirty)
                    .collect();
                if batch.is_empty() {
                    continue;
                }
                any = true;
                for &p in &batch {
                    self.parts[p as usize].dirty = false;
                    self.parts[p as usize].ran = true;
                }
                report.jobs += batch.len();
                let outs: Vec<Result<JobOut, BudgetExceeded>> = {
                    let parts = &self.parts;
                    let base = self.objects.len() as u32;
                    let field_intern = &self.field_intern;
                    let obj_pts = &self.obj_pts;
                    let bnd_pts = &self.bnd_pts;
                    wavefront::wavefront_dispatch(vec![batch], "pointsto.wavefronts", |p| {
                        let part = &parts[p as usize];
                        run_local(
                            p,
                            &part.cons,
                            part.var_pts.clone(),
                            base,
                            field_intern,
                            obj_pts,
                            bnd_pts,
                            budget,
                        )
                    })
                };
                for out in outs {
                    self.merge(out?, report);
                }
            }
            if !any {
                break;
            }
            report.sweeps += 1;
        }
        report.resolved = self.parts.iter().filter(|p| p.ran).count();
        manta_telemetry::counter("pointsto.boundary_delta", report.boundary_deltas);
        Ok(())
    }

    /// Applies one job's results: remaps local field objects through
    /// the shared intern table, diffs accumulated facts against shared
    /// state, and re-dirties readers of anything that grew.
    fn merge(&mut self, out: JobOut, report: &mut SessionReport) {
        let base = out.base;
        let mut remap: Vec<u32> = Vec::with_capacity(out.new_objs.len());
        for &(parent_raw, offset) in &out.new_objs {
            // Parents created earlier in the job already have a mapping.
            let parent = if parent_raw >= base {
                remap[(parent_raw - base) as usize]
            } else {
                parent_raw
            };
            let gid = match self.field_intern.get(&(ObjectId(parent), offset)) {
                Some(&g) => g.0,
                None => {
                    let id = ObjectId(self.objects.len() as u32);
                    self.objects.push(ObjectKind::Field {
                        parent: ObjectId(parent),
                        offset,
                    });
                    self.obj_pts.push(ObjSet::default());
                    self.field_intern.insert((ObjectId(parent), offset), id);
                    id.0
                }
            };
            remap.push(gid);
        }
        // A job that materialized no local field objects needs no id
        // remapping: its sets move through verbatim. This is the common
        // case (gep-free functions) and skips a full clone of every
        // var/object/boundary set on the serial merge path.
        let identity = out.new_objs.is_empty();
        let map_id = |x: u32| -> u32 {
            if x >= base {
                remap[(x - base) as usize]
            } else {
                x
            }
        };
        let map_set = |s: &ObjSet| -> ObjSet {
            let mut mapped = ObjSet::default();
            for x in s.iter() {
                mapped.insert(map_id(x));
            }
            mapped
        };

        self.iterations += out.iterations;

        let mut changed_objs: Vec<u32> = Vec::new();
        let mut changed_bnds: Vec<u32> = Vec::new();
        {
            let part = &mut self.parts[out.part as usize];
            let obj_readers = &mut self.obj_readers;
            part.var_pts = if identity {
                out.var_pts
            } else {
                out.var_pts.iter().map(map_set).collect()
            };
            for x in out.reads_objs.iter() {
                let m = map_id(x);
                if part.reads_objs.insert(m) {
                    obj_readers.entry(m).or_default().push(out.part);
                }
            }
            for x in out.writes_objs.iter() {
                part.writes_objs.insert(map_id(x));
            }
        }
        for (o_raw, set) in &out.obj_acc {
            let o = map_id(*o_raw);
            let mapped_store;
            let mapped: &ObjSet = if identity {
                set
            } else {
                mapped_store = map_set(set);
                &mapped_store
            };
            let mut added = 0u64;
            let dst = &mut self.obj_pts[o as usize];
            for x in mapped.iter() {
                if dst.insert(x) {
                    added += 1;
                }
            }
            let contrib = self.parts[out.part as usize]
                .contrib_obj
                .entry(o)
                .or_default();
            for x in mapped.iter() {
                contrib.insert(x);
            }
            if added > 0 {
                changed_objs.push(o);
                report.boundary_deltas += added;
            }
        }
        for (s, set) in &out.bnd_acc {
            let mapped_store;
            let mapped: &ObjSet = if identity {
                set
            } else {
                mapped_store = map_set(set);
                &mapped_store
            };
            let mut added = 0u64;
            let dst = &mut self.bnd_pts[*s as usize];
            for x in mapped.iter() {
                if dst.insert(x) {
                    added += 1;
                }
            }
            let contrib = self.parts[out.part as usize]
                .contrib_bnd
                .entry(*s)
                .or_default();
            for x in mapped.iter() {
                contrib.insert(x);
            }
            if added > 0 {
                changed_bnds.push(*s);
                report.boundary_deltas += added;
            }
        }
        if changed_objs.is_empty() && changed_bnds.is_empty() {
            return;
        }
        // Re-dirty readers of anything that grew (via the reverse
        // indexes) — except the job's own partition: everything this
        // merge added came out of that job's local view, which is
        // already at fixpoint over it. Growth from *other* partitions
        // re-dirties it through their merges.
        for &o in &changed_objs {
            if let Some(readers) = self.obj_readers.get(&o) {
                for &p in readers {
                    if p != out.part {
                        self.parts[p as usize].dirty = true;
                    }
                }
            }
        }
        for &sl in &changed_bnds {
            for &p in &self.bnd_readers[sl as usize] {
                if p != out.part {
                    self.parts[p as usize].dirty = true;
                }
            }
        }
    }

    /// Rebuilds the slot -> readers index from every partition's
    /// boundary-in constraints.
    fn rebuild_bnd_readers(&mut self) {
        let mut idx: Vec<Vec<u32>> = (0..self.bnd_pts.len()).map(|_| Vec::new()).collect();
        for (pi, part) in self.parts.iter().enumerate() {
            for &(slot, _) in &part.cons.bin {
                let readers = &mut idx[slot as usize];
                if readers.last() != Some(&(pi as u32)) {
                    readers.push(pi as u32);
                }
            }
        }
        self.bnd_readers = idx;
    }

    /// Exports the resident solution as a [`PointsTo`].
    pub fn export(&self) -> PointsTo {
        let mut constraint_edges = 0usize;
        let mut nv = 0usize;
        for part in &self.parts {
            nv += part.var_pts.len();
            constraint_edges += part.cons.copies.len() + part.cons.bin.len() + part.cons.bout.len();
        }
        // Row conversion (set iteration, per-entry vector builds) fans
        // out across the pool; the serial remainder is map insertion of
        // prebuilt rows.
        type Row = Vec<(u32, std::collections::BTreeSet<ObjectId>)>;
        let rows: Vec<(usize, Row)> =
            manta_parallel::par_map((0..self.parts.len()).collect(), |fi: usize| {
                let part = &self.parts[fi];
                let mut out = Vec::new();
                for (vi, set) in part.var_pts.iter().enumerate() {
                    if set.is_empty() {
                        continue;
                    }
                    out.push((vi as u32, set.iter().map(ObjectId).collect()));
                }
                (fi, out)
            });
        let mut pts = HashMap::with_capacity(rows.iter().map(|(_, r)| r.len()).sum::<usize>() + 64);
        let mut peak = 0usize;
        for (fi, row) in rows {
            for (vi, set) in row {
                peak = peak.max(set.len());
                let key = Node::Var(VarRef::new(FuncId(fi as u32), ValueId(vi)));
                pts.insert(key, set);
            }
        }
        for (oi, set) in self.obj_pts.iter().enumerate() {
            if set.is_empty() {
                continue;
            }
            peak = peak.max(set.len());
            pts.insert(
                Node::Obj(ObjectId(oi as u32)),
                set.iter().map(ObjectId).collect(),
            );
        }
        let out = PointsTo {
            objects: self.objects.clone(),
            field_intern: self.field_intern.clone(),
            pts,
            iterations: self.iterations,
            constraint_nodes: nv + self.objects.len() + self.boundary_slots,
            constraint_edges,
            scc_merges: 0,
            peak_pts: peak,
            provenance: None,
        };
        PEAK_PTS.record_max(out.peak_pts as u64);
        out
    }
}
