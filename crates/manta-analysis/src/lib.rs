//! # manta-analysis
//!
//! The binary static-analysis substrate the Manta type inference runs on:
//!
//! * [`preprocess`] — the paper's §3 pre-processing: every loop in each
//!   function's CFG is unrolled (twice by default) and back edges on the
//!   call graph are broken, so all later analyses operate on acyclic
//!   structures.
//! * [`callgraph`] — direct-call graph with bottom-up ordering.
//! * [`pointsto`] — a field-sensitive, inclusion-based points-to analysis
//!   over the block memory model with allocation-site heap abstraction,
//!   reproducing the paper's documented unsound choices (function pointers
//!   are not modeled, arrays collapse to a monolithic object, parameters
//!   are assumed non-aliasing).
//! * [`ddg`] — the data-dependence graph of Definition 1, with call edges
//!   labeled by call site so CFL-reachability (context sensitivity) can be
//!   enforced during traversal.
//! * [`cfl`] — the calling-context stack used by Algorithms 1 and 2.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
// Fixpoint loops in this crate must not clone per-iteration state; prefer
// index/borrow patterns. Promote to `#![deny(clippy::redundant_clone)]` in CI
// if a regression slips through review.
#![warn(clippy::redundant_clone)]

pub mod callgraph;
pub mod cfl;
pub mod ddg;
pub mod pointsto;
pub mod preprocess;
pub mod summary;

pub use callgraph::CallGraph;
pub use cfl::CtxStack;
pub use ddg::{CallSite, Ddg, DepKind, NodeId};
pub use pointsto::{
    ObjectId, ObjectKind, PointsTo, PointsToProvenance, PointsToSession, PtsSource, SessionReport,
};
pub use preprocess::{preprocess, PreprocessConfig, Preprocessed};
pub use summary::{summarize_function, summarize_module, FnSummary, ModuleSummaries};

/// A module-global reference to an SSA value: the pair of its function and
/// the function-local value id. This is the variable domain `𝕍` shared by
/// the points-to analysis, the DDG and the type maps.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarRef {
    /// Owning function.
    pub func: manta_ir::FuncId,
    /// Function-local value.
    pub value: manta_ir::ValueId,
}

impl VarRef {
    /// Shorthand constructor.
    pub fn new(func: manta_ir::FuncId, value: manta_ir::ValueId) -> VarRef {
        VarRef { func, value }
    }
}

impl std::fmt::Display for VarRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.func, self.value)
    }
}

/// Substrate build options beyond preprocessing configuration.
#[derive(Clone, Debug, Default)]
pub struct BuildOptions {
    /// Preprocessing configuration.
    pub config: PreprocessConfig,
    /// Solve points-to with the compositional partitioned solver
    /// (per-function constraint partitions scheduled as call-graph
    /// wavefronts, [`pointsto::partition`]) instead of the monolithic
    /// delta solver. Produces the same points-to relations.
    pub partitioned_pointsto: bool,
}

/// Bundles the full analysis state for one module: the preprocessed module,
/// its call graph, points-to results and DDG. This is the input the `manta`
/// crate's type inference consumes.
#[derive(Debug)]
pub struct ModuleAnalysis {
    /// Preprocessing output (owns the acyclic module).
    pub pre: Preprocessed,
    /// The direct call graph (broken edges excluded).
    pub callgraph: CallGraph,
    /// Points-to results.
    pub pointsto: PointsTo,
    /// The data-dependence graph.
    pub ddg: Ddg,
}

impl ModuleAnalysis {
    /// Runs the whole substrate pipeline on `module` with default
    /// preprocessing configuration.
    pub fn build(module: manta_ir::Module) -> ModuleAnalysis {
        Self::build_with(module, PreprocessConfig::default())
    }

    /// Runs the whole substrate pipeline with an explicit configuration.
    pub fn build_with(module: manta_ir::Module, config: PreprocessConfig) -> ModuleAnalysis {
        manta_telemetry::span!("analysis.build");
        let pre = {
            manta_telemetry::span!("preprocess");
            preprocess(module, config)
        };
        let callgraph = {
            manta_telemetry::span!("callgraph");
            CallGraph::build(&pre)
        };
        let pointsto = {
            manta_telemetry::span!("pointsto");
            PointsTo::solve(&pre, &callgraph)
        };
        let ddg = {
            manta_telemetry::span!("ddg");
            Ddg::build(&pre, &pointsto)
        };
        ModuleAnalysis {
            pre,
            callgraph,
            pointsto,
            ddg,
        }
    }

    /// Runs the whole substrate pipeline under a cooperative budget, with
    /// each stage behind a panic-isolation boundary.
    ///
    /// Unlike the inference cascade there is no weaker tier to fall back
    /// to here — inference cannot run without the substrate — so a blown
    /// budget or a caught panic surfaces as a structured error rather
    /// than a degradation. Callers (the eval runner, the CLI) decide
    /// whether to skip the module or abort the run.
    ///
    /// # Errors
    ///
    /// Returns [`MantaError::Budget`] when `budget` trips and
    /// [`MantaError::Panic`] when a stage panics.
    pub fn build_budgeted(
        module: manta_ir::Module,
        config: PreprocessConfig,
        budget: &manta_resilience::Budget,
    ) -> Result<ModuleAnalysis, manta_resilience::MantaError> {
        Self::build_budgeted_with(
            module,
            BuildOptions {
                config,
                ..BuildOptions::default()
            },
            budget,
        )
    }

    /// [`ModuleAnalysis::build_budgeted`] with full [`BuildOptions`]
    /// (preprocessing configuration plus the points-to solver choice).
    ///
    /// # Errors
    ///
    /// Returns [`MantaError::Budget`] when `budget` trips and
    /// [`MantaError::Panic`] when a stage panics.
    ///
    /// [`MantaError::Budget`]: manta_resilience::MantaError::Budget
    /// [`MantaError::Panic`]: manta_resilience::MantaError::Panic
    pub fn build_budgeted_with(
        module: manta_ir::Module,
        opts: BuildOptions,
        budget: &manta_resilience::Budget,
    ) -> Result<ModuleAnalysis, manta_resilience::MantaError> {
        use manta_resilience::{fault_point_budgeted, isolate, MantaError};
        let config = opts.config;
        manta_telemetry::span!("analysis.build");
        let budget_err = |stage: &str, e: manta_resilience::BudgetExceeded| {
            manta_resilience::budget_exhausted(stage);
            MantaError::Budget {
                stage: stage.to_string(),
                kind: e.kind,
            }
        };
        // Each stage runs fully inside its isolation boundary — including
        // the fault-injection point, so an injected panic is caught and
        // attributed to the stage it was armed on.
        let pre = {
            manta_telemetry::span!("preprocess");
            let fc = module.function_count() as u64;
            isolate("analysis.preprocess", || {
                fault_point_budgeted("analysis.preprocess", budget);
                budget.consume(fc)?;
                Ok(preprocess(module, config))
            })?
            .map_err(|e| budget_err("analysis.preprocess", e))?
        };
        let callgraph = {
            manta_telemetry::span!("callgraph");
            isolate("analysis.callgraph", || {
                fault_point_budgeted("analysis.callgraph", budget);
                budget.tick()?;
                Ok(CallGraph::build(&pre))
            })?
            .map_err(|e| budget_err("analysis.callgraph", e))?
        };
        let pointsto = {
            manta_telemetry::span!("pointsto");
            isolate("analysis.pointsto", || {
                fault_point_budgeted("analysis.pointsto", budget);
                if opts.partitioned_pointsto {
                    PointsTo::solve_partitioned_budgeted(&pre, &callgraph, budget)
                } else {
                    PointsTo::solve_budgeted(&pre, &callgraph, budget)
                }
            })?
            .map_err(|e| budget_err("analysis.pointsto", e))?
        };
        let ddg = {
            manta_telemetry::span!("ddg");
            isolate("analysis.ddg", || {
                fault_point_budgeted("analysis.ddg", budget);
                Ddg::build_budgeted(&pre, &pointsto, budget)
            })?
            .map_err(|e| budget_err("analysis.ddg", e))?
        };
        Ok(ModuleAnalysis {
            pre,
            callgraph,
            pointsto,
            ddg,
        })
    }

    /// The analyzed (acyclic) module.
    pub fn module(&self) -> &manta_ir::Module {
        &self.pre.module
    }
}
