//! The calling-context stack (`ctx_stack` of Algorithms 1 and 2).
//!
//! During DDG/CFG traversal, crossing an interprocedural edge pushes or pops
//! a [`CallSite`]. A traversal step is *CFL-valid* when the parenthesis
//! string stays partially balanced: a close parenthesis must match the top
//! of the stack, but closing with an empty stack is allowed (realizable
//! paths may begin mid-callee). Recursion was removed during pre-processing,
//! so "calling contexts can be tracked via pushing and popping from a stack,
//! without risk of non-termination" (§4.2.1) — the depth bound is a
//! scalability guard, not a correctness requirement.

use crate::ddg::{CallSite, DepKind};

/// Traversal direction over the DDG/CFG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Along edges (def → use).
    Forward,
    /// Against edges (use → def).
    Backward,
}

/// What crossing an edge does to the context stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CtxOp {
    /// No context change (intraprocedural edge).
    None,
    /// Enter a callee: push the call site.
    Push(CallSite),
    /// Leave a callee: pop a matching call site.
    Pop(CallSite),
}

/// Classifies the context operation of crossing an edge of kind `kind` in
/// `dir`.
pub fn ctx_op(kind: DepKind, dir: Direction) -> CtxOp {
    match (kind, dir) {
        (DepKind::CallParam(cs), Direction::Forward) => CtxOp::Push(cs),
        (DepKind::CallParam(cs), Direction::Backward) => CtxOp::Pop(cs),
        (DepKind::CallReturn(cs), Direction::Forward) => CtxOp::Pop(cs),
        (DepKind::CallReturn(cs), Direction::Backward) => CtxOp::Push(cs),
        _ => CtxOp::None,
    }
}

/// A bounded calling-context stack with CFL-validity checking.
#[derive(Clone, Debug)]
pub struct CtxStack {
    stack: Vec<CallSite>,
    /// How many unmatched closes were consumed with an empty stack; kept so
    /// that `enter`/`leave` stay symmetric.
    free_pops: Vec<CallSite>,
    max_depth: usize,
}

impl CtxStack {
    /// Creates an empty stack bounded at `max_depth` frames.
    pub fn new(max_depth: usize) -> CtxStack {
        CtxStack {
            stack: Vec::new(),
            free_pops: Vec::new(),
            max_depth,
        }
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Attempts to cross an edge. Returns `true` (and records the
    /// operation) when the crossing is CFL-valid; callers must later undo a
    /// successful crossing with [`leave`](Self::leave), passing the same
    /// operation.
    pub fn enter(&mut self, op: CtxOp) -> bool {
        static QUERIES: manta_telemetry::Counter = manta_telemetry::Counter::new("cfl.queries");
        QUERIES.incr();
        match op {
            CtxOp::None => true,
            CtxOp::Push(cs) => {
                if self.stack.len() >= self.max_depth {
                    return false;
                }
                self.stack.push(cs);
                true
            }
            CtxOp::Pop(cs) => match self.stack.last() {
                Some(&top) if top == cs => {
                    self.stack.pop();
                    true
                }
                Some(_) => false, // mismatched context: CFL-unreachable
                None => {
                    // Partially balanced: allowed, remember for symmetry.
                    self.free_pops.push(cs);
                    true
                }
            },
        }
    }

    /// Undoes a successful [`enter`](Self::enter).
    ///
    /// # Panics
    ///
    /// Panics if `op` does not correspond to the most recent `enter`.
    pub fn leave(&mut self, op: CtxOp) {
        match op {
            CtxOp::None => {}
            CtxOp::Push(cs) => match self.stack.pop() {
                Some(top) => assert_eq!(top, cs, "unbalanced CtxStack::leave"),
                None => panic!("leave(Push) on empty stack"),
            },
            CtxOp::Pop(cs) => {
                if let Some(&last_free) = self.free_pops.last() {
                    if last_free == cs && self.stack.is_empty() {
                        self.free_pops.pop();
                        return;
                    }
                }
                self.stack.push(cs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::{FuncId, InstId};

    fn cs(n: u32) -> CallSite {
        CallSite {
            caller: FuncId(n),
            site: InstId(n),
        }
    }

    #[test]
    fn balanced_push_pop() {
        let mut st = CtxStack::new(8);
        assert!(st.enter(CtxOp::Push(cs(1))));
        assert_eq!(st.depth(), 1);
        assert!(st.enter(CtxOp::Pop(cs(1))));
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn mismatched_pop_rejected() {
        let mut st = CtxStack::new(8);
        assert!(st.enter(CtxOp::Push(cs(1))));
        assert!(
            !st.enter(CtxOp::Pop(cs(2))),
            "CFL-unreachable path must be rejected"
        );
        assert_eq!(st.depth(), 1);
    }

    #[test]
    fn empty_stack_pop_allowed() {
        let mut st = CtxStack::new(8);
        assert!(
            st.enter(CtxOp::Pop(cs(3))),
            "partially balanced strings are realizable"
        );
    }

    #[test]
    fn depth_bound_enforced() {
        let mut st = CtxStack::new(2);
        assert!(st.enter(CtxOp::Push(cs(1))));
        assert!(st.enter(CtxOp::Push(cs(2))));
        assert!(!st.enter(CtxOp::Push(cs(3))));
    }

    #[test]
    fn enter_leave_roundtrip_restores_state() {
        let mut st = CtxStack::new(8);
        st.enter(CtxOp::Push(cs(1)));
        let op = CtxOp::Pop(cs(1));
        assert!(st.enter(op));
        st.leave(op);
        assert_eq!(st.depth(), 1);
        st.leave(CtxOp::Push(cs(1)));
        assert_eq!(st.depth(), 0);

        // Free-pop symmetry.
        let op = CtxOp::Pop(cs(9));
        assert!(st.enter(op));
        st.leave(op);
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn ctx_op_direction_table() {
        use crate::ddg::DepKind;
        let c = cs(4);
        assert_eq!(
            ctx_op(DepKind::CallParam(c), Direction::Forward),
            CtxOp::Push(c)
        );
        assert_eq!(
            ctx_op(DepKind::CallParam(c), Direction::Backward),
            CtxOp::Pop(c)
        );
        assert_eq!(
            ctx_op(DepKind::CallReturn(c), Direction::Forward),
            CtxOp::Pop(c)
        );
        assert_eq!(
            ctx_op(DepKind::CallReturn(c), Direction::Backward),
            CtxOp::Push(c)
        );
        assert_eq!(ctx_op(DepKind::Direct, Direction::Forward), CtxOp::None);
    }
}
