//! Compositional per-function summaries (Manta §3's bottom-up unit).
//!
//! A [`FnSummary`] is computed from one function's body alone, solved
//! against *symbolic placeholders* for everything that crosses the call
//! boundary: formal parameters, module globals, callee returns and the
//! function's own escaping allocations. It captures, per function:
//!
//! * **boundary flows** — which placeholder sources can reach which
//!   boundary sinks (the return value, memory reachable from a
//!   parameter or global, an outgoing call argument);
//! * **escape records** — which local allocation sites leak out;
//! * **boundary unification classes** — which boundary slots the local
//!   flow-insensitive rules would co-unify (the type-constraint half of
//!   the summary);
//! * **reveal digests** — a hash of the locally revealed types flowing
//!   into each boundary slot;
//! * the **direct callee** and **global access** lists.
//!
//! Because the summary reads nothing outside the function, its
//! serialized bytes change only when the function's *boundary-visible
//! behaviour* changes. That is the incremental-invalidation contract:
//! an edit whose recomputed summary is bit-identical to the cached one
//! is *transitively cut off* — callers' deep fingerprints (local
//! fingerprint combined with callee deep fingerprints, bottom-up over
//! the callgraph condensation) cannot change either, so nothing else in
//! the module is dirtied by the summary layer.
//!
//! The solve is a small intraprocedural abstract interpretation: each
//! SSA value carries a set of [`Sym`]bols, memory is a map from base
//! symbol to the symbols stored through it (one `Deref` level,
//! `Deref(Deref(s))` collapses to `Deref(s)` so the domain is finite),
//! and the whole thing runs to a fixpoint. Sets are `BTreeSet`s and all
//! outputs are sorted, so summaries are deterministic bit-for-bit.

use std::collections::{BTreeMap, BTreeSet};

use manta_ir::{Callee, ExternEffect, Function, InstKind, Module, Terminator, ValueId, ValueKind};
use manta_store::{ByteReader, ByteWriter, DecodeError, Fingerprint};

use crate::CallGraph;

/// Bump when the summary encoding changes shape.
pub const SUMMARY_VERSION: u32 = 1;

fn bad(context: &'static str) -> DecodeError {
    DecodeError { context, offset: 0 }
}

/// An abstract boundary symbol: something a value inside the function
/// can carry that is visible at (or originates from) the call boundary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sym {
    /// The `i`-th formal parameter.
    Param(u32),
    /// The address of a module global.
    Global(u32),
    /// A local allocation site (`alloca` or a heap-allocating extern
    /// call), identified by its instruction id.
    Alloc(u32),
    /// The return value of a direct call at instruction `site` — the
    /// hook where a callee's summary plugs in.
    CalleeRet(u32),
    /// The return value of an external call at instruction `site`.
    ExternRet(u32),
    /// One load level through another symbol (`Deref(Deref(s))`
    /// collapses to `Deref(s)` to keep the domain finite).
    Deref(DerefBase),
}

/// The base of a [`Sym::Deref`] — the non-`Deref` symbols only.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DerefBase {
    /// Deref of a parameter.
    Param(u32),
    /// Deref of a global.
    Global(u32),
    /// Deref of a local allocation.
    Alloc(u32),
    /// Deref of a direct-call result.
    CalleeRet(u32),
    /// Deref of an extern-call result.
    ExternRet(u32),
}

impl Sym {
    /// One load level through `self`; already-dereffed symbols stay put.
    fn deref(self) -> Sym {
        match self {
            Sym::Param(i) => Sym::Deref(DerefBase::Param(i)),
            Sym::Global(g) => Sym::Deref(DerefBase::Global(g)),
            Sym::Alloc(s) => Sym::Deref(DerefBase::Alloc(s)),
            Sym::CalleeRet(s) => Sym::Deref(DerefBase::CalleeRet(s)),
            Sym::ExternRet(s) => Sym::Deref(DerefBase::ExternRet(s)),
            Sym::Deref(_) => self,
        }
    }

    fn encode(self, w: &mut ByteWriter) {
        match self {
            Sym::Param(i) => w.u8(0).u32(i),
            Sym::Global(g) => w.u8(1).u32(g),
            Sym::Alloc(s) => w.u8(2).u32(s),
            Sym::CalleeRet(s) => w.u8(3).u32(s),
            Sym::ExternRet(s) => w.u8(4).u32(s),
            Sym::Deref(b) => {
                let (tag, payload) = match b {
                    DerefBase::Param(i) => (5u8, i),
                    DerefBase::Global(g) => (6, g),
                    DerefBase::Alloc(s) => (7, s),
                    DerefBase::CalleeRet(s) => (8, s),
                    DerefBase::ExternRet(s) => (9, s),
                };
                w.u8(tag).u32(payload)
            }
        };
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Sym, DecodeError> {
        let tag = r.u8("Sym tag")?;
        let v = r.u32("Sym payload")?;
        Ok(match tag {
            0 => Sym::Param(v),
            1 => Sym::Global(v),
            2 => Sym::Alloc(v),
            3 => Sym::CalleeRet(v),
            4 => Sym::ExternRet(v),
            5 => Sym::Deref(DerefBase::Param(v)),
            6 => Sym::Deref(DerefBase::Global(v)),
            7 => Sym::Deref(DerefBase::Alloc(v)),
            8 => Sym::Deref(DerefBase::CalleeRet(v)),
            9 => Sym::Deref(DerefBase::ExternRet(v)),
            _ => return Err(bad("Sym tag")),
        })
    }
}

/// A boundary sink a symbol can flow into.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Slot {
    /// The function's return value.
    Ret,
    /// The `i`-th formal parameter itself (for unification classes).
    Param(u32),
    /// Memory reachable from the `i`-th parameter (a store through it).
    ParamMem(u32),
    /// Memory reachable from global `g`.
    GlobalMem(u32),
    /// Passed as argument `arg` of the direct call at `site` (escapes
    /// into a callee; the callee's summary decides what happens next).
    CallArg {
        /// Call instruction.
        site: u32,
        /// Zero-based argument position.
        arg: u32,
    },
    /// Passed to an external or indirect callee at `site`.
    ExternArg {
        /// Call instruction.
        site: u32,
        /// Zero-based argument position.
        arg: u32,
    },
}

impl Slot {
    fn encode(self, w: &mut ByteWriter) {
        match self {
            Slot::Ret => {
                w.u8(0);
            }
            Slot::Param(i) => {
                w.u8(1).u32(i);
            }
            Slot::ParamMem(i) => {
                w.u8(2).u32(i);
            }
            Slot::GlobalMem(g) => {
                w.u8(3).u32(g);
            }
            Slot::CallArg { site, arg } => {
                w.u8(4).u32(site).u32(arg);
            }
            Slot::ExternArg { site, arg } => {
                w.u8(5).u32(site).u32(arg);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Slot, DecodeError> {
        Ok(match r.u8("Slot tag")? {
            0 => Slot::Ret,
            1 => Slot::Param(r.u32("Slot param")?),
            2 => Slot::ParamMem(r.u32("Slot parammem")?),
            3 => Slot::GlobalMem(r.u32("Slot globalmem")?),
            4 => Slot::CallArg {
                site: r.u32("Slot callarg site")?,
                arg: r.u32("Slot callarg idx")?,
            },
            5 => Slot::ExternArg {
                site: r.u32("Slot externarg site")?,
                arg: r.u32("Slot externarg idx")?,
            },
            _ => return Err(bad("Slot tag")),
        })
    }
}

/// The compact call-boundary summary of one function.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FnSummary {
    /// Hash of the function's name (stable across id renumbering).
    pub name_hash: u64,
    /// Formal parameter count.
    pub param_count: u32,
    /// Whether the function returns a value.
    pub returns: bool,
    /// Which boundary symbols reach which boundary sinks, sorted.
    pub flows: Vec<(Sym, Slot)>,
    /// Local allocation sites that escape (appear in any flow), sorted.
    pub escapes: Vec<u32>,
    /// Boundary-slot unification classes induced by the local
    /// flow-insensitive rules; each class sorted, classes sorted by
    /// first member. Singleton classes are omitted.
    pub unify_classes: Vec<Vec<Slot>>,
    /// Per boundary slot, an order-independent digest of the local
    /// reveal types attached to values carrying that slot's symbol.
    pub slot_reveals: Vec<(Slot, u64)>,
    /// Name hashes of direct callees, sorted and deduplicated.
    pub callees: Vec<u64>,
    /// Global accesses: `(global, mask)` with bit 0 = address taken /
    /// read, bit 1 = written through.
    pub globals: Vec<(u32, u8)>,
}

impl FnSummary {
    /// Serializes via the length-prefixed store codec.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(SUMMARY_VERSION)
            .u64(self.name_hash)
            .u32(self.param_count)
            .bool(self.returns)
            .usize(self.flows.len());
        for &(s, d) in &self.flows {
            s.encode(&mut w);
            d.encode(&mut w);
        }
        w.usize(self.escapes.len());
        for &e in &self.escapes {
            w.u32(e);
        }
        w.usize(self.unify_classes.len());
        for class in &self.unify_classes {
            w.usize(class.len());
            for &s in class {
                s.encode(&mut w);
            }
        }
        w.usize(self.slot_reveals.len());
        for &(s, digest) in &self.slot_reveals {
            s.encode(&mut w);
            w.u64(digest);
        }
        w.usize(self.callees.len());
        for &c in &self.callees {
            w.u64(c);
        }
        w.usize(self.globals.len());
        for &(g, mask) in &self.globals {
            w.u32(g).u8(mask);
        }
        w.finish()
    }

    /// Decodes bytes produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a positioned [`DecodeError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<FnSummary, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u32("summary version")?;
        if version != SUMMARY_VERSION {
            return Err(bad("unsupported summary version"));
        }
        let name_hash = r.u64("summary name")?;
        let param_count = r.u32("summary params")?;
        let returns = r.bool("summary returns")?;
        let mut flows = Vec::new();
        for _ in 0..r.len("summary flows")? {
            let s = Sym::decode(&mut r)?;
            let d = Slot::decode(&mut r)?;
            flows.push((s, d));
        }
        let mut escapes = Vec::new();
        for _ in 0..r.len("summary escapes")? {
            escapes.push(r.u32("summary escape site")?);
        }
        let mut unify_classes = Vec::new();
        for _ in 0..r.len("summary classes")? {
            let mut class = Vec::new();
            for _ in 0..r.len("summary class")? {
                class.push(Slot::decode(&mut r)?);
            }
            unify_classes.push(class);
        }
        let mut slot_reveals = Vec::new();
        for _ in 0..r.len("summary reveals")? {
            let s = Slot::decode(&mut r)?;
            slot_reveals.push((s, r.u64("summary reveal digest")?));
        }
        let mut callees = Vec::new();
        for _ in 0..r.len("summary callees")? {
            callees.push(r.u64("summary callee")?);
        }
        let mut globals = Vec::new();
        for _ in 0..r.len("summary globals")? {
            let g = r.u32("summary global")?;
            globals.push((g, r.u8("summary global mask")?));
        }
        r.expect_end("summary tail")?;
        Ok(FnSummary {
            name_hash,
            param_count,
            returns,
            flows,
            escapes,
            unify_classes,
            slot_reveals,
            callees,
            globals,
        })
    }

    /// The summary's content fingerprint (hash of its encoded bytes).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        manta_store::hash_bytes(&self.encode())
    }
}

/// Cap on a single value's symbol set; beyond it the solve stops adding
/// symbols to that value (the summary stays sound for invalidation
/// purposes — it is a fingerprinting artifact, not a proof — while the
/// fixpoint stays linear on pathological phi webs).
const MAX_SYMS_PER_VALUE: usize = 32;

/// Summarizes one function against symbolic boundary placeholders.
#[must_use]
pub fn summarize_function(module: &Module, func: &Function) -> FnSummary {
    let value_count = func.value_count();
    let mut syms: Vec<BTreeSet<Sym>> = vec![BTreeSet::new(); value_count];
    // Seed: parameters, global addresses, allocation sites, call results.
    for (v, val) in func.values() {
        match val.kind {
            ValueKind::Param { index } => {
                syms[v.index()].insert(Sym::Param(index));
            }
            ValueKind::GlobalAddr(g) => {
                syms[v.index()].insert(Sym::Global(g.0));
            }
            _ => {}
        }
    }
    for inst in func.insts() {
        let site = inst.id.0;
        match &inst.kind {
            InstKind::Alloca { dst, .. } => {
                syms[dst.index()].insert(Sym::Alloc(site));
            }
            InstKind::Call {
                dst: Some(d),
                callee,
                ..
            } => match callee {
                Callee::Direct(_) => {
                    syms[d.index()].insert(Sym::CalleeRet(site));
                }
                Callee::Extern(e) => {
                    let effect = module.extern_decl(*e).effect;
                    let sym = if effect == ExternEffect::AllocHeap {
                        Sym::Alloc(site)
                    } else {
                        Sym::ExternRet(site)
                    };
                    syms[d.index()].insert(sym);
                }
                Callee::Indirect(_) => {
                    syms[d.index()].insert(Sym::ExternRet(site));
                }
            },
            _ => {}
        }
    }

    // Fixpoint: propagate symbol sets through copies/phis/geps/loads and
    // a one-level abstract memory (base symbol -> stored symbols).
    let mut memory: BTreeMap<Sym, BTreeSet<Sym>> = BTreeMap::new();
    fn merge(dst: ValueId, add: BTreeSet<Sym>, syms: &mut [BTreeSet<Sym>], changed: &mut bool) {
        let set = &mut syms[dst.index()];
        for s in add {
            if set.len() >= MAX_SYMS_PER_VALUE {
                break;
            }
            if set.insert(s) {
                *changed = true;
            }
        }
    }
    loop {
        let mut changed = false;
        for inst in func.insts() {
            match &inst.kind {
                InstKind::Copy { dst, src } => {
                    let add = syms[src.index()].clone();
                    merge(*dst, add, &mut syms, &mut changed);
                }
                InstKind::Phi { dst, incomings } => {
                    let mut add = BTreeSet::new();
                    for (_, v) in incomings {
                        add.extend(syms[v.index()].iter().copied());
                    }
                    merge(*dst, add, &mut syms, &mut changed);
                }
                InstKind::Gep { dst, base, .. } => {
                    // Field addresses carry the base's identity
                    // (field-insensitive at the boundary).
                    let add = syms[base.index()].clone();
                    merge(*dst, add, &mut syms, &mut changed);
                }
                InstKind::Load { dst, addr, .. } => {
                    let mut add = BTreeSet::new();
                    for &a in &syms[addr.index()].clone() {
                        add.insert(a.deref());
                        if let Some(stored) = memory.get(&a) {
                            add.extend(stored.iter().copied());
                        }
                    }
                    merge(*dst, add, &mut syms, &mut changed);
                }
                InstKind::Store { addr, val } => {
                    let bases = syms[addr.index()].clone();
                    let stored = syms[val.index()].clone();
                    for a in bases {
                        let cell = memory.entry(a).or_default();
                        for &s in &stored {
                            if cell.len() >= MAX_SYMS_PER_VALUE {
                                break;
                            }
                            if cell.insert(s) {
                                changed = true;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Boundary sinks.
    let mut flows: BTreeSet<(Sym, Slot)> = BTreeSet::new();
    let mut callees: BTreeSet<u64> = BTreeSet::new();
    let mut globals: BTreeMap<u32, u8> = BTreeMap::new();
    let slot_of_base = |s: Sym| -> Option<Slot> {
        match s {
            Sym::Param(i) | Sym::Deref(DerefBase::Param(i)) => Some(Slot::ParamMem(i)),
            Sym::Global(g) | Sym::Deref(DerefBase::Global(g)) => Some(Slot::GlobalMem(g)),
            _ => None,
        }
    };
    for (v, val) in func.values() {
        if let ValueKind::GlobalAddr(g) = val.kind {
            if !func.users(v).is_empty() {
                *globals.entry(g.0).or_default() |= 1;
            }
        }
    }
    for inst in func.insts() {
        let site = inst.id.0;
        match &inst.kind {
            InstKind::Store { addr, val } => {
                for &a in &syms[addr.index()] {
                    if let Some(slot) = slot_of_base(a) {
                        if let Slot::GlobalMem(g) = slot {
                            *globals.entry(g).or_default() |= 2;
                        }
                        for &s in &syms[val.index()] {
                            flows.insert((s, slot));
                        }
                    }
                }
            }
            InstKind::Call { callee, args, .. } => {
                let direct = matches!(callee, Callee::Direct(_));
                if let Callee::Direct(f) = callee {
                    callees.insert(manta_store::hash_str(module.function(*f).name()));
                }
                for (i, &a) in args.iter().enumerate() {
                    let slot = if direct {
                        Slot::CallArg {
                            site,
                            arg: i as u32,
                        }
                    } else {
                        Slot::ExternArg {
                            site,
                            arg: i as u32,
                        }
                    };
                    for &s in &syms[a.index()] {
                        flows.insert((s, slot));
                    }
                }
            }
            _ => {}
        }
    }
    for block in func.blocks() {
        if let Terminator::Ret(Some(v)) = &block.term {
            for &s in &syms[v.index()] {
                flows.insert((s, Slot::Ret));
            }
        }
    }

    // Escaping allocations: any Alloc symbol present in a flow source.
    let escapes: BTreeSet<u32> = flows
        .iter()
        .filter_map(|&(s, _)| match s {
            Sym::Alloc(a) | Sym::Deref(DerefBase::Alloc(a)) => Some(a),
            _ => None,
        })
        .collect();

    // Boundary unification classes: union boundary slots whose symbols
    // co-occupy an SSA value, meet at a cmp, or co-flow into the return
    // — the local shadow of the global FI rules.
    let boundary_slot = |s: Sym| -> Option<Slot> {
        match s {
            Sym::Param(i) => Some(Slot::Param(i)),
            Sym::Global(g) => Some(Slot::GlobalMem(g)),
            _ => None,
        }
    };
    let mut uf = SlotUf::default();
    for set in &syms {
        let slots: Vec<Slot> = set.iter().copied().filter_map(boundary_slot).collect();
        for pair in slots.windows(2) {
            uf.union(pair[0], pair[1]);
        }
    }
    for inst in func.insts() {
        if let InstKind::Cmp { lhs, rhs, .. } = &inst.kind {
            let l = syms[lhs.index()].iter().copied().find_map(boundary_slot);
            let r = syms[rhs.index()].iter().copied().find_map(boundary_slot);
            if let (Some(a), Some(b)) = (l, r) {
                uf.union(a, b);
            }
        }
    }
    for block in func.blocks() {
        if let Terminator::Ret(Some(v)) = &block.term {
            for s in syms[v.index()].iter().copied().filter_map(boundary_slot) {
                uf.union(Slot::Ret, s);
            }
        }
    }
    let unify_classes = uf.classes();

    // Reveal digests: local reveal rules (the same shapes
    // `manta::reveal` recognizes) hashed per boundary slot, XORed so the
    // digest is order-independent.
    let mut digests: BTreeMap<Slot, u64> = BTreeMap::new();
    let mut reveal = |v: ValueId, tag: u64, syms: &[BTreeSet<Sym>]| {
        for &s in &syms[v.index()] {
            if let Some(slot) = boundary_slot(s) {
                let mut h = Fingerprint::new();
                h.write_u64(tag);
                *digests.entry(slot).or_default() ^= h.finish();
            }
        }
    };
    for inst in func.insts() {
        match &inst.kind {
            InstKind::Load { addr, .. } | InstKind::Store { addr, .. } => {
                reveal(*addr, 1, &syms);
            }
            InstKind::BinOp { op, dst, lhs, rhs } if op.is_numeric_only() => {
                reveal(*dst, 2, &syms);
                reveal(*lhs, 2, &syms);
                reveal(*rhs, 2, &syms);
            }
            InstKind::Call {
                callee: Callee::Extern(e),
                args,
                ..
            } => {
                if let Some(sig) = &module.extern_decl(*e).sig {
                    for (i, &a) in args.iter().enumerate() {
                        if let Some(t) = sig.params.get(i) {
                            let mut h = Fingerprint::new();
                            h.write_str(&format!("{t:?}"));
                            let tag = h.finish();
                            reveal(a, tag, &syms);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    FnSummary {
        name_hash: manta_store::hash_str(func.name()),
        param_count: func.params().len() as u32,
        returns: func.ret_width().is_some(),
        flows: flows.into_iter().collect(),
        escapes: escapes.into_iter().collect(),
        unify_classes,
        slot_reveals: digests.into_iter().collect(),
        callees: callees.into_iter().collect(),
        globals: globals.into_iter().collect(),
    }
}

/// A tiny union-find over [`Slot`]s for the boundary classes.
#[derive(Default)]
struct SlotUf {
    parent: BTreeMap<Slot, Slot>,
}

impl SlotUf {
    fn find(&mut self, s: Slot) -> Slot {
        let p = *self.parent.entry(s).or_insert(s);
        if p == s {
            return s;
        }
        let root = self.find(p);
        self.parent.insert(s, root);
        root
    }

    fn union(&mut self, a: Slot, b: Slot) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic root: smaller slot wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }

    /// Non-singleton classes, each sorted, ordered by first member.
    fn classes(&mut self) -> Vec<Vec<Slot>> {
        let members: Vec<Slot> = self.parent.keys().copied().collect();
        let mut by_root: BTreeMap<Slot, Vec<Slot>> = BTreeMap::new();
        for s in members {
            let r = self.find(s);
            by_root.entry(r).or_default().push(s);
        }
        by_root.into_values().filter(|c| c.len() > 1).collect()
    }
}

/// The summary table of a whole module: one [`FnSummary`] per function
/// plus local and dependency-closed (deep) fingerprints.
#[derive(Clone, Debug)]
pub struct ModuleSummaries {
    /// Per function (indexed by `FuncId` order).
    pub summaries: Vec<FnSummary>,
    /// `local_fp[f]` = hash of `summaries[f]`'s bytes.
    pub local_fp: Vec<u64>,
    /// `deep_fp[f]` = local fingerprint combined with every callee's
    /// deep fingerprint, bottom-up over the callgraph condensation.
    /// Functions in a cyclic SCC share the combined fingerprint of the
    /// whole component. An unchanged local summary therefore leaves
    /// every caller's deep fingerprint unchanged — the transitive
    /// cutoff.
    pub deep_fp: Vec<u64>,
    /// Wavefront widths of the callgraph condensation (independent
    /// SCCs per bottom-up level) — the available summary parallelism.
    pub wavefront_widths: Vec<usize>,
}

/// Computes every function's summary (in parallel over the pool) and
/// the bottom-up deep fingerprints over the callgraph condensation.
#[must_use]
pub fn summarize_module(module: &Module, callgraph: &CallGraph) -> ModuleSummaries {
    let funcs: Vec<&Function> = module.functions().collect();
    let summaries: Vec<FnSummary> =
        manta_parallel::par_map(funcs, |f| summarize_function(module, f));
    let local_fp: Vec<u64> = summaries.iter().map(FnSummary::fingerprint).collect();

    // Callgraph -> DepGraph (caller depends on callee), condensed into
    // bottom-up wavefronts. The current preprocessor breaks recursion,
    // so SCCs are singletons today; the condensation keeps this correct
    // if cyclic components ever survive preprocessing.
    let n = module.function_count();
    let mut dg = manta_store::DepGraph::new(n);
    for e in callgraph.edges() {
        dg.add_dep(e.caller.0, e.callee.0);
    }
    let cond = dg.condense();
    let mut deep_fp = vec![0u64; n];
    for level in &cond.levels {
        for &scc in level {
            let members = &cond.sccs[scc as usize];
            // Component fingerprint: members' local fps (sorted member
            // order) plus external callee deep fps (sorted, deduped).
            let mut h = Fingerprint::new();
            for &m in members {
                h.write_u64(local_fp[m as usize]);
            }
            let mut ext: Vec<u64> = members
                .iter()
                .flat_map(|&m| callgraph.callees(manta_ir::FuncId(m)))
                .filter(|e| cond.scc_of[e.callee.0 as usize] != scc)
                .map(|e| deep_fp[e.callee.0 as usize])
                .collect();
            ext.sort_unstable();
            ext.dedup();
            for x in ext {
                h.write_u64(x);
            }
            let fp = h.finish();
            for &m in members {
                deep_fp[m as usize] = fp;
            }
        }
    }
    ModuleSummaries {
        summaries,
        local_fp,
        deep_fp,
        wavefront_widths: cond.widths(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::{ModuleBuilder, Width};

    /// `ret_global() { return *g0; }` and
    /// `wrapper(p0) { return ret_global(p0); }`.
    fn tiny_module() -> Module {
        let mut mb = ModuleBuilder::new("summary-test");
        let g = mb.global("g0", 8);
        let (leaf_id, mut f) = mb.function("ret_global", &[], Some(Width::W64));
        let addr = f.global_addr(g);
        let v = f.load(addr, Width::W64);
        f.ret(Some(v));
        mb.finish_function(f);
        let (_, mut h) = mb.function("wrapper", &[Width::W64], Some(Width::W64));
        let p0 = h.param(0);
        let r = h.call(leaf_id, &[p0], Some(Width::W64));
        h.ret(r);
        mb.finish_function(h);
        mb.finish()
    }

    #[test]
    fn summary_roundtrips_and_fingerprints() {
        let m = tiny_module();
        for f in m.functions() {
            let s = summarize_function(&m, f);
            let bytes = s.encode();
            let back = FnSummary::decode(&bytes).expect("roundtrip");
            assert_eq!(s, back);
            assert_eq!(s.fingerprint(), back.fingerprint());
        }
    }

    #[test]
    fn global_load_flows_to_ret() {
        let m = tiny_module();
        let f = m.function_by_name("ret_global").expect("exists");
        let s = summarize_function(&m, f);
        assert!(s
            .flows
            .iter()
            .any(|&(sym, slot)| sym == Sym::Deref(DerefBase::Global(0)) && slot == Slot::Ret));
        assert_eq!(s.globals, vec![(0, 1)]);
    }

    #[test]
    fn caller_lists_callee_and_param_escape() {
        let m = tiny_module();
        let f = m.function_by_name("wrapper").expect("exists");
        let s = summarize_function(&m, f);
        assert_eq!(s.callees, vec![manta_store::hash_str("ret_global")]);
        assert!(s.flows.iter().any(
            |&(sym, slot)| sym == Sym::Param(0) && matches!(slot, Slot::CallArg { arg: 0, .. })
        ));
    }

    #[test]
    fn deep_fps_are_deterministic_and_distinct() {
        let m = tiny_module();
        let analysis = crate::ModuleAnalysis::build(m);
        let module = analysis.module();
        let sums = summarize_module(module, &analysis.callgraph);
        assert_eq!(sums.summaries.len(), 2);
        let leaf = module.function_by_name("ret_global").expect("f").id().0 as usize;
        let caller = module.function_by_name("wrapper").expect("f").id().0 as usize;
        // The caller's deep fp folds in the leaf's, so it differs from
        // its local fp; the leaf (no callees) folds in nothing.
        assert_ne!(sums.deep_fp[caller], sums.local_fp[caller]);
        let again = summarize_module(module, &analysis.callgraph);
        assert_eq!(sums.deep_fp[leaf], again.deep_fp[leaf]);
        assert_eq!(sums.deep_fp[caller], again.deep_fp[caller]);
    }
}
