//! The direct call graph and its bottom-up ordering.
//!
//! Indirect calls are *not* edges here: the paper resolves them only through
//! the type-based client (§5.1), and function pointers are deliberately not
//! modeled by the points-to analysis (§3). Calls whose edge was broken by
//! [`crate::preprocess`] are likewise excluded, so the graph is acyclic.

use std::collections::HashMap;

use manta_ir::{Callee, FuncId, InstId, InstKind};

use crate::preprocess::Preprocessed;

/// A call edge: caller, call-site instruction, callee.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CallEdge {
    /// Calling function.
    pub caller: FuncId,
    /// The call instruction inside the caller.
    pub site: InstId,
    /// Called function.
    pub callee: FuncId,
}

/// The acyclic direct call graph of a preprocessed module.
#[derive(Clone, Debug)]
pub struct CallGraph {
    edges: Vec<CallEdge>,
    callees_of: HashMap<FuncId, Vec<CallEdge>>,
    callers_of: HashMap<FuncId, Vec<CallEdge>>,
    bottom_up: Vec<FuncId>,
}

impl CallGraph {
    /// Builds the call graph of `pre.module`, excluding broken edges.
    pub fn build(pre: &Preprocessed) -> CallGraph {
        let module = &pre.module;
        let mut edges = Vec::new();
        for f in module.functions() {
            for inst in f.insts() {
                if let InstKind::Call {
                    callee: Callee::Direct(target),
                    ..
                } = &inst.kind
                {
                    if pre.is_broken_call(f.id(), inst.id) {
                        continue;
                    }
                    edges.push(CallEdge {
                        caller: f.id(),
                        site: inst.id,
                        callee: *target,
                    });
                }
            }
        }
        let mut callees_of: HashMap<FuncId, Vec<CallEdge>> = HashMap::new();
        let mut callers_of: HashMap<FuncId, Vec<CallEdge>> = HashMap::new();
        for &e in &edges {
            callees_of.entry(e.caller).or_default().push(e);
            callers_of.entry(e.callee).or_default().push(e);
        }

        // Bottom-up (callees before callers) topological order via DFS
        // post-order. The graph is acyclic after preprocessing.
        let n = module.function_count();
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for root in module.functions().map(|f| f.id()) {
            if visited[root.index()] {
                continue;
            }
            let mut stack: Vec<(FuncId, usize)> = vec![(root, 0)];
            visited[root.index()] = true;
            while let Some(&mut (f, ref mut next)) = stack.last_mut() {
                let cs = callees_of.get(&f).map(Vec::as_slice).unwrap_or(&[]);
                if *next < cs.len() {
                    let child = cs[*next].callee;
                    *next += 1;
                    if !visited[child.index()] {
                        visited[child.index()] = true;
                        stack.push((child, 0));
                    }
                } else {
                    order.push(f);
                    stack.pop();
                }
            }
        }
        CallGraph {
            edges,
            callees_of,
            callers_of,
            bottom_up: order,
        }
    }

    /// All call edges.
    pub fn edges(&self) -> &[CallEdge] {
        &self.edges
    }

    /// Outgoing edges of `f` (its call sites with direct targets).
    pub fn callees(&self, f: FuncId) -> &[CallEdge] {
        self.callees_of.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Incoming edges of `f` (who calls it, and from where).
    pub fn callers(&self, f: FuncId) -> &[CallEdge] {
        self.callers_of.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Functions in bottom-up order: every callee precedes its callers.
    /// This is the processing order of the compositional analyses (§3).
    pub fn bottom_up(&self) -> &[FuncId] {
        &self.bottom_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use manta_ir::{ModuleBuilder, Width};

    fn chain_module() -> Preprocessed {
        // main -> mid -> leaf
        let mut mb = ModuleBuilder::new("m");
        let (leaf, mut lb) = mb.function("leaf", &[Width::W64], Some(Width::W64));
        let p = lb.param(0);
        lb.ret(Some(p));
        mb.finish_function(lb);
        let (mid, mut mbf) = mb.function("mid", &[Width::W64], Some(Width::W64));
        let p = mbf.param(0);
        let r = mbf.call(leaf, &[p], Some(Width::W64)).unwrap();
        mbf.ret(Some(r));
        mb.finish_function(mbf);
        let (_main, mut mf) = mb.function("main", &[], Some(Width::W64));
        let k = mf.const_int(7, Width::W64);
        let r = mf.call(mid, &[k], Some(Width::W64)).unwrap();
        mf.ret(Some(r));
        mb.finish_function(mf);
        preprocess(mb.finish(), PreprocessConfig::default())
    }

    #[test]
    fn edges_and_adjacency() {
        let pre = chain_module();
        let cg = CallGraph::build(&pre);
        assert_eq!(cg.edges().len(), 2);
        let main = pre.module.function_by_name("main").unwrap().id();
        let mid = pre.module.function_by_name("mid").unwrap().id();
        let leaf = pre.module.function_by_name("leaf").unwrap().id();
        assert_eq!(cg.callees(main).len(), 1);
        assert_eq!(cg.callees(main)[0].callee, mid);
        assert_eq!(cg.callers(leaf).len(), 1);
        assert_eq!(cg.callers(leaf)[0].caller, mid);
        assert!(cg.callees(leaf).is_empty());
    }

    #[test]
    fn bottom_up_orders_callees_first() {
        let pre = chain_module();
        let cg = CallGraph::build(&pre);
        let pos = |name: &str| {
            let id = pre.module.function_by_name(name).unwrap().id();
            cg.bottom_up().iter().position(|&f| f == id).unwrap()
        };
        assert!(pos("leaf") < pos("mid"));
        assert!(pos("mid") < pos("main"));
        assert_eq!(cg.bottom_up().len(), 3);
    }

    #[test]
    fn broken_edges_are_excluded() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("rec", &[], None);
        fb.call(fid, &[], None);
        fb.ret(None);
        mb.finish_function(fb);
        let pre = preprocess(mb.finish(), PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        assert!(cg.edges().is_empty());
        assert_eq!(cg.bottom_up().len(), 1);
    }
}
