//! §3 pre-processing: acyclic CFGs and an acyclic call graph.
//!
//! > "To ensure the analysis scalability, we pre-process the lifted IR to be
//! > acyclic by unrolling each loop in the control flow graph (CFG) and the
//! > call graph, following the existing bug-finding tools."
//!
//! Loops are unrolled by cloning the whole body of a cyclic function
//! [`PreprocessConfig::unroll_factor`] times: forward edges stay within a
//! copy, each back edge is redirected to the loop head in the *next* copy,
//! and back edges leaving the final copy are cut (redirected to an
//! `unreachable` stub). This is a well-identified *unsound* choice the
//! paper makes deliberately — paths beyond `unroll_factor` iterations are
//! not analyzed.
//!
//! Recursion is handled by breaking back edges on the call graph: the
//! offending call *edges* are recorded in [`Preprocessed::broken_call_edges`]
//! and ignored by the call graph, points-to analysis and DDG construction.

use std::collections::{HashMap, HashSet};

use manta_ir::cfg::Cfg;
use manta_ir::{
    BlockId, Callee, FuncId, Function, InstId, InstKind, Module, Terminator, Value, ValueId,
    ValueKind,
};

/// Tuning knobs for pre-processing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PreprocessConfig {
    /// How many times loop bodies are replicated. The paper unrolls twice.
    pub unroll_factor: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig { unroll_factor: 2 }
    }
}

/// Summary counters from pre-processing, reported by the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PreprocessStats {
    /// Functions that contained at least one CFG cycle.
    pub cyclic_functions: usize,
    /// Back edges removed across all functions.
    pub back_edges_cut: usize,
    /// Recursive call edges broken on the call graph.
    pub recursive_calls_broken: usize,
}

/// The result of pre-processing: an acyclic module plus bookkeeping.
#[derive(Debug)]
pub struct Preprocessed {
    /// The transformed module; every function CFG is acyclic.
    pub module: Module,
    /// Call instructions whose call edge was broken to acyclify the call
    /// graph. Interprocedural analyses must treat these as opaque.
    pub broken_call_edges: HashSet<(FuncId, InstId)>,
    /// Counters.
    pub stats: PreprocessStats,
    /// The configuration used.
    pub config: PreprocessConfig,
}

impl Preprocessed {
    /// Whether the call at `(func, inst)` had its edge broken.
    pub fn is_broken_call(&self, func: FuncId, inst: InstId) -> bool {
        self.broken_call_edges.contains(&(func, inst))
    }
}

/// Runs pre-processing on `module`.
pub fn preprocess(mut module: Module, config: PreprocessConfig) -> Preprocessed {
    let mut stats = PreprocessStats::default();

    // 1. Unroll cyclic CFGs. Each function unrolls independently of every
    // other, so the rewriting fans out across the pool; the results are
    // grafted back in function order, which keeps stats and module layout
    // identical to a serial pass.
    let func_ids: Vec<FuncId> = module.functions().map(Function::id).collect();
    let module_ref = &module;
    let unrolled: Vec<Option<(FuncId, usize, Function)>> = manta_parallel::par_map(func_ids, |f| {
        let func = module_ref.function(f);
        let cfg = Cfg::new(func);
        let back_edges = cfg.back_edges();
        if back_edges.is_empty() {
            return None;
        }
        let cut = back_edges.len();
        Some((
            f,
            cut,
            unroll_function(func, &cfg, config.unroll_factor.max(1)),
        ))
    });
    for (f, cut, rewritten) in unrolled.into_iter().flatten() {
        stats.cyclic_functions += 1;
        stats.back_edges_cut += cut;
        *module.function_mut(f) = rewritten;
        debug_assert!(
            !Cfg::new(module.function(f)).has_cycle(),
            "unrolling must produce an acyclic CFG"
        );
    }

    // 2. Break call-graph back edges (recursion).
    let broken = break_recursion(&module);
    stats.recursive_calls_broken = broken.len();
    manta_telemetry::counter("preprocess.recursive_calls_broken", broken.len() as u64);
    manta_telemetry::counter("preprocess.cyclic_functions", stats.cyclic_functions as u64);
    manta_telemetry::counter("preprocess.back_edges_cut", stats.back_edges_cut as u64);

    Preprocessed {
        module,
        broken_call_edges: broken,
        stats,
        config,
    }
}

/// Clones the body of `func` `k` times, redirecting back edges forward
/// through the copies. Copy 0 keeps the original block/value numbering for
/// its own blocks where possible.
fn unroll_function(func: &Function, cfg: &Cfg, k: usize) -> Function {
    let back: HashSet<(BlockId, BlockId)> = cfg.back_edges().into_iter().collect();
    let param_widths: Vec<_> = func.params().iter().map(|&p| func.value(p).width).collect();
    let mut out = Function::new(
        func.id(),
        func.name().to_string(),
        &param_widths,
        func.ret_width(),
    );
    out.set_address_taken(func.is_address_taken());

    // Map (copy, old block) -> new block. Copy 0 of the entry is the new
    // entry; everything else is appended in a deterministic order.
    let mut block_map: HashMap<(usize, BlockId), BlockId> = HashMap::new();
    block_map.insert((0, func.entry()), out.entry());
    for c in 0..k {
        for b in func.blocks() {
            block_map
                .entry((c, b.id))
                .or_insert_with(|| out.add_block());
        }
    }
    // Stub target for back edges leaving the last copy.
    let exhausted = out.add_block();
    out.replace_terminator(exhausted, Terminator::Unreachable);

    // Determine the instruction push order up front so instruction-defined
    // values can be created with their final `InstId` before emission.
    let mut push_order: Vec<(usize, InstId)> = Vec::new();
    for c in 0..k {
        for b in func.blocks() {
            for &i in &b.insts {
                push_order.push((c, i));
            }
        }
    }
    let new_inst_id: HashMap<(usize, InstId), InstId> = push_order
        .iter()
        .enumerate()
        .map(|(n, &key)| (key, InstId::from_index(n)))
        .collect();

    // Map (copy, old value) -> new value.
    let mut value_map: HashMap<(usize, ValueId), ValueId> = HashMap::new();
    for c in 0..k {
        for (v, data) in func.values() {
            let new_v = match data.kind {
                ValueKind::Param { index } => out.params()[index as usize],
                ValueKind::Inst { def } => out.add_value(Value {
                    kind: ValueKind::Inst {
                        def: new_inst_id[&(c, def)],
                    },
                    width: data.width,
                }),
                other => out.add_value(Value {
                    kind: other,
                    width: data.width,
                }),
            };
            value_map.insert((c, v), new_v);
        }
    }

    // Emit instructions.
    for &(c, i) in &push_order {
        let inst = func.inst(i);
        let old_block = inst.block;
        let nb = block_map[&(c, old_block)];
        let m = |v: ValueId| value_map[&(c, v)];
        let kind = match &inst.kind {
            InstKind::Copy { dst, src } => InstKind::Copy {
                dst: m(*dst),
                src: m(*src),
            },
            InstKind::Phi { dst, incomings } => {
                let mut incs = Vec::new();
                for (p, v) in incomings {
                    if back.contains(&(*p, old_block)) {
                        if c > 0 {
                            incs.push((block_map[&(c - 1, *p)], value_map[&(c - 1, *v)]));
                        }
                        // c == 0: the back-edge predecessor no longer reaches
                        // this copy; drop the incoming.
                    } else {
                        incs.push((block_map[&(c, *p)], m(*v)));
                    }
                }
                if incs.is_empty() {
                    // Degenerate phi (head with only back-edge incomings);
                    // keep SSA shape with a copy of the first original value.
                    let (_, v0) = incomings[0];
                    InstKind::Copy {
                        dst: m(*dst),
                        src: m(v0),
                    }
                } else {
                    InstKind::Phi {
                        dst: m(*dst),
                        incomings: incs,
                    }
                }
            }
            InstKind::Load { dst, addr, width } => InstKind::Load {
                dst: m(*dst),
                addr: m(*addr),
                width: *width,
            },
            InstKind::Store { addr, val } => InstKind::Store {
                addr: m(*addr),
                val: m(*val),
            },
            InstKind::Alloca { dst, size } => InstKind::Alloca {
                dst: m(*dst),
                size: *size,
            },
            InstKind::Gep { dst, base, offset } => InstKind::Gep {
                dst: m(*dst),
                base: m(*base),
                offset: *offset,
            },
            InstKind::BinOp { op, dst, lhs, rhs } => InstKind::BinOp {
                op: *op,
                dst: m(*dst),
                lhs: m(*lhs),
                rhs: m(*rhs),
            },
            InstKind::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            } => InstKind::Cmp {
                dst: m(*dst),
                pred: *pred,
                lhs: m(*lhs),
                rhs: m(*rhs),
            },
            InstKind::Call { dst, callee, args } => InstKind::Call {
                dst: dst.map(m),
                callee: match callee {
                    Callee::Indirect(v) => Callee::Indirect(m(*v)),
                    other => *other,
                },
                args: args.iter().map(|&a| m(a)).collect(),
            },
        };
        let pushed = out.append_inst(nb, kind);
        debug_assert_eq!(pushed, new_inst_id[&(c, i)]);
    }

    // Emit terminators with back edges redirected across copies.
    for c in 0..k {
        for b in func.blocks() {
            let nb = block_map[&(c, b.id)];
            let map_target = |s: BlockId| -> BlockId {
                if back.contains(&(b.id, s)) {
                    if c + 1 < k {
                        block_map[&(c + 1, s)]
                    } else {
                        exhausted
                    }
                } else {
                    block_map[&(c, s)]
                }
            };
            let m = |v: ValueId| value_map[&(c, v)];
            let term = match &b.term {
                Terminator::Br(t) => Terminator::Br(map_target(*t)),
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => Terminator::CondBr {
                    cond: m(*cond),
                    then_bb: map_target(*then_bb),
                    else_bb: map_target(*else_bb),
                },
                Terminator::Ret(v) => Terminator::Ret(v.map(m)),
                Terminator::Unreachable => Terminator::Unreachable,
            };
            out.replace_terminator(nb, term);
        }
    }
    out
}

/// Finds a set of direct-call edges whose removal makes the call graph
/// acyclic, via DFS back-edge detection.
fn break_recursion(module: &Module) -> HashSet<(FuncId, InstId)> {
    // Collect direct call edges.
    let n = module.function_count();
    let mut edges: Vec<Vec<(FuncId, InstId)>> = vec![Vec::new(); n]; // callee + site per caller
    for f in module.functions() {
        for inst in f.insts() {
            if let InstKind::Call {
                callee: Callee::Direct(target),
                ..
            } = &inst.kind
            {
                edges[f.id().index()].push((*target, inst.id));
            }
        }
    }

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        Active,
        Done,
    }
    let mut state = vec![State::Unvisited; n];
    let mut broken = HashSet::new();
    for root in 0..n {
        if state[root] != State::Unvisited {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        state[root] = State::Active;
        while let Some(&mut (f, ref mut next)) = stack.last_mut() {
            if *next < edges[f].len() {
                let (callee, site) = edges[f][*next];
                *next += 1;
                match state[callee.index()] {
                    State::Active => {
                        broken.insert((FuncId::from_index(f), site));
                    }
                    State::Unvisited => {
                        state[callee.index()] = State::Active;
                        stack.push((callee.index(), 0));
                    }
                    State::Done => {}
                }
            } else {
                state[f] = State::Done;
                stack.pop();
            }
        }
    }
    broken
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::verify::verify_module;
    use manta_ir::{CmpPred, ModuleBuilder, Width};

    /// A counting loop: `while (n > 0) { n -= 1; }` plus a live phi.
    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("count", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let entry = fb.current_block();
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let dec_placeholder = fb.const_int(1, Width::W64);
        let n = fb.phi(&[(entry, p), (body, dec_placeholder)], Width::W64);
        let zero = fb.const_int(0, Width::W64);
        let c = fb.cmp(CmpPred::Gt, n, zero);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let one = fb.const_int(1, Width::W64);
        let dec = fb.binop(manta_ir::BinOp::Sub, n, one, Width::W64);
        let _ = dec; // the phi references dec_placeholder for simplicity
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(n));
        mb.finish_function(fb);
        mb.finish()
    }

    #[test]
    fn unrolling_makes_cfg_acyclic() {
        let pre = preprocess(loop_module(), PreprocessConfig::default());
        verify_module(&pre.module).unwrap();
        for f in pre.module.functions() {
            assert!(
                !Cfg::new(f).has_cycle(),
                "function {} still cyclic",
                f.name()
            );
        }
        assert_eq!(pre.stats.cyclic_functions, 1);
        assert_eq!(pre.stats.back_edges_cut, 1);
    }

    #[test]
    fn unroll_factor_scales_block_count() {
        let m1 = preprocess(loop_module(), PreprocessConfig { unroll_factor: 1 });
        let m3 = preprocess(loop_module(), PreprocessConfig { unroll_factor: 3 });
        let b1 = m1.module.function_by_name("count").unwrap().block_count();
        let b3 = m3.module.function_by_name("count").unwrap().block_count();
        assert!(b3 > b1);
        // 4 original blocks × factor + 1 exhausted stub.
        assert_eq!(b1, 4 + 1);
        assert_eq!(b3, 12 + 1);
    }

    #[test]
    fn acyclic_function_untouched() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("straight", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        fb.ret(Some(p));
        mb.finish_function(fb);
        let m = mb.finish();
        let before = m.function_by_name("straight").unwrap().block_count();
        let pre = preprocess(m, PreprocessConfig::default());
        assert_eq!(
            pre.module
                .function_by_name("straight")
                .unwrap()
                .block_count(),
            before
        );
        assert_eq!(pre.stats.cyclic_functions, 0);
    }

    #[test]
    fn breaks_direct_recursion() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("rec", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let r = fb.call(fid, &[p], Some(Width::W64)).unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);
        let pre = preprocess(mb.finish(), PreprocessConfig::default());
        assert_eq!(pre.stats.recursive_calls_broken, 1);
        let f = pre.module.function_by_name("rec").unwrap();
        let site = f.insts().next().unwrap().id;
        assert!(pre.is_broken_call(f.id(), site));
    }

    #[test]
    fn breaks_mutual_recursion_but_not_all_edges() {
        let mut mb = ModuleBuilder::new("m");
        let (fa, mut ba) = mb.function("a", &[], None);
        let (fb_, mut bb) = mb.function("b", &[], None);
        ba.call(fb_, &[], None);
        ba.ret(None);
        mb.finish_function(ba);
        bb.call(fa, &[], None);
        bb.ret(None);
        mb.finish_function(bb);
        let pre = preprocess(mb.finish(), PreprocessConfig::default());
        // Exactly one of the two edges must be cut.
        assert_eq!(pre.stats.recursive_calls_broken, 1);
    }

    #[test]
    fn unrolled_loop_preserves_verifier_invariants() {
        for k in 1..=4 {
            let pre = preprocess(loop_module(), PreprocessConfig { unroll_factor: k });
            verify_module(&pre.module).unwrap();
        }
    }
}
