//! The data-dependence graph (paper Definition 1).
//!
//! Vertices are SSA values (`v@s` collapses to `v` since values are in SSA
//! form — a value has one def site; the *use*-site granularity the
//! flow-sensitive refinement needs is recovered on the CFG). Edges carry a
//! [`DepKind`]:
//!
//! * intra-procedural value flow (`copy`/`phi`), arithmetic operand flow
//!   (the edges Table 2 prunes), field derivation (`gep`);
//! * memory dependencies `⟨p@*a=p, q@q=*b⟩` constructed iff a stored value
//!   and a loaded value share a points-to object;
//! * interprocedural parameter/return bindings labeled with their call
//!   site, which act as the open/close parentheses of CFL-reachability for
//!   the context-sensitive refinement (Algorithm 1).

use std::collections::{BTreeSet, HashMap};

use manta_ir::{BinOp, Callee, ExternEffect, FuncId, InstId, InstKind, Terminator, ValueId};

use crate::pointsto::{ObjectId, PointsTo};
use crate::preprocess::Preprocessed;
use crate::VarRef;

/// A call site: caller function plus the call instruction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CallSite {
    /// Calling function.
    pub caller: FuncId,
    /// Call instruction within the caller.
    pub site: InstId,
}

/// Dense DDG node id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a data dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Value copy (`copy`, `phi`).
    Direct,
    /// Operand of a binary arithmetic instruction flowing into its result.
    /// `operand` is 0 (lhs) or 1 (rhs). These are the candidates for
    /// Table 2's infeasible-dependency pruning.
    Arith {
        /// The arithmetic operator.
        op: BinOp,
        /// Which operand (0 = lhs, 1 = rhs).
        operand: u8,
    },
    /// Operand of a comparison flowing into its boolean result. Not a value
    /// flow; excluded from slicing traversals.
    Cmp,
    /// Base address flowing into a `gep` field address.
    Field,
    /// A stored value reaching a load through abstract object `o`.
    Memory(ObjectId),
    /// Actual argument flowing into a formal parameter at a call site
    /// (CFL open parenthesis).
    CallParam(CallSite),
    /// Callee return value flowing into the call result (CFL close
    /// parenthesis).
    CallReturn(CallSite),
    /// Flow through a modeled external function (`strcpy`, `atoi`, …).
    ExternFlow,
}

impl DepKind {
    /// Whether slicing treats this edge as value flow.
    pub fn is_value_flow(self) -> bool {
        !matches!(self, DepKind::Cmp)
    }
}

/// The data-dependence graph of a module.
#[derive(Debug)]
pub struct Ddg {
    node_base: Vec<u32>,
    vars: Vec<VarRef>,
    fwd: Vec<Vec<(NodeId, DepKind)>>,
    bwd: Vec<Vec<(NodeId, DepKind)>>,
    edge_count: usize,
}

impl Ddg {
    /// Builds the DDG of a preprocessed module given points-to results.
    pub fn build(pre: &Preprocessed, pts: &PointsTo) -> Ddg {
        let unlimited = manta_resilience::Budget::unlimited();
        match Self::build_budgeted(pre, pts, &unlimited) {
            Ok(d) => d,
            // A fresh unlimited budget never trips.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// Builds the DDG under a cooperative budget; fuel is charged per
    /// instruction scanned and per memory-dependency pairing.
    ///
    /// # Errors
    ///
    /// Returns [`manta_resilience::BudgetExceeded`] when `budget` trips;
    /// the partially built graph is discarded.
    pub fn build_budgeted(
        pre: &Preprocessed,
        pts: &PointsTo,
        budget: &manta_resilience::Budget,
    ) -> Result<Ddg, manta_resilience::BudgetExceeded> {
        let module = &pre.module;
        // Dense node numbering: per-function bases.
        let mut node_base = Vec::with_capacity(module.function_count());
        let mut vars = Vec::new();
        let mut next = 0u32;
        for f in module.functions() {
            node_base.push(next);
            for (v, _) in f.values() {
                vars.push(VarRef::new(f.id(), v));
            }
            next += f.value_count() as u32;
        }
        let n = vars.len();
        let mut ddg = Ddg {
            node_base,
            vars,
            fwd: vec![Vec::new(); n],
            bwd: vec![Vec::new(); n],
            edge_count: 0,
        };

        // Per-function scans are independent: every edge an instruction
        // emits is discovered while scanning exactly one function, so the
        // scans fan out across the pool and the collected lists are applied
        // in function order — the same insertion order a serial pass
        // produces. Write/read records borrow the points-to sets instead of
        // cloning them (they are only consulted during pairing below).
        let func_ids: Vec<FuncId> = module.functions().map(|f| f.id()).collect();
        let scans: Vec<Result<FuncScan<'_>, manta_resilience::BudgetExceeded>> =
            manta_parallel::par_map(func_ids, |fid| scan_function(pre, pts, fid, budget));

        // Memory writes: (written value, objects it reaches, via) — stores
        // plus extern copy effects; paired against loads below.
        let mut writes: Vec<(VarRef, &BTreeSet<ObjectId>)> = Vec::new();
        let mut reads: Vec<(VarRef, &BTreeSet<ObjectId>)> = Vec::new();
        for scan in scans {
            let scan = scan?;
            for (from, to, kind) in scan.edges {
                ddg.add_edge(from.func, from.value, to.func, to.value, kind);
            }
            writes.extend(scan.writes);
            reads.extend(scan.reads);
        }

        // Memory dependencies: a write reaches a read iff they share an
        // object.
        let mut writes_by_obj: HashMap<ObjectId, Vec<VarRef>> = HashMap::new();
        for (val, objs) in &writes {
            for &o in objs.iter() {
                writes_by_obj.entry(o).or_default().push(*val);
            }
        }
        for (dst, objs) in &reads {
            budget.tick()?;
            for &o in objs.iter() {
                if let Some(ws) = writes_by_obj.get(&o) {
                    for &w in ws {
                        ddg.add_edge(w.func, w.value, dst.func, dst.value, DepKind::Memory(o));
                    }
                }
            }
        }
        manta_telemetry::counter("ddg.nodes", ddg.node_count() as u64);
        manta_telemetry::counter("ddg.edges", ddg.edge_count() as u64);
        Ok(ddg)
    }

    /// The node for variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the analyzed module.
    pub fn node(&self, v: VarRef) -> NodeId {
        NodeId(self.node_base[v.func.index()] + v.value.0)
    }

    /// The variable of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn var(&self, n: NodeId) -> VarRef {
        self.vars[n.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of (directed) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Forward (def → use) adjacency of `n` (paper: `DDG.childs`).
    pub fn children(&self, n: NodeId) -> &[(NodeId, DepKind)] {
        &self.fwd[n.index()]
    }

    /// Backward (use → def) adjacency of `n` (paper: `DDG.parents`).
    pub fn parents(&self, n: NodeId) -> &[(NodeId, DepKind)] {
        &self.bwd[n.index()]
    }

    /// Removes every edge from `from` to `to` whose kind satisfies `pred`.
    /// Returns the number of edges removed. Used by the Table 2 pruning
    /// client.
    pub fn remove_edges(
        &mut self,
        from: NodeId,
        to: NodeId,
        pred: impl Fn(DepKind) -> bool,
    ) -> usize {
        let before = self.fwd[from.index()].len();
        self.fwd[from.index()].retain(|&(t, k)| !(t == to && pred(k)));
        let removed = before - self.fwd[from.index()].len();
        self.bwd[to.index()].retain(|&(s, k)| !(s == from && pred(k)));
        self.edge_count -= removed;
        removed
    }

    fn add_edge(&mut self, ff: FuncId, fv: ValueId, tf: FuncId, tv: ValueId, kind: DepKind) {
        let from = self.node(VarRef::new(ff, fv));
        let to = self.node(VarRef::new(tf, tv));
        self.fwd[from.index()].push((to, kind));
        self.bwd[to.index()].push((from, kind));
        self.edge_count += 1;
    }
}

/// Everything one function's instruction scan contributes to the graph.
/// Write/read records keep borrows into the points-to relation; only the
/// pairing pass below consumes them.
struct FuncScan<'a> {
    edges: Vec<(VarRef, VarRef, DepKind)>,
    writes: Vec<(VarRef, &'a BTreeSet<ObjectId>)>,
    reads: Vec<(VarRef, &'a BTreeSet<ObjectId>)>,
}

/// Scans one function for DDG edges and memory write/read records. Fuel is
/// charged exactly as the historical serial pass: one unit per function
/// plus one per instruction.
fn scan_function<'a>(
    pre: &Preprocessed,
    pts: &'a PointsTo,
    fid: FuncId,
    budget: &manta_resilience::Budget,
) -> Result<FuncScan<'a>, manta_resilience::BudgetExceeded> {
    let module = &pre.module;
    let func = module.function(fid);
    let mut scan = FuncScan {
        edges: Vec::new(),
        writes: Vec::new(),
        reads: Vec::new(),
    };
    let var = |v: ValueId| VarRef::new(fid, v);
    budget.tick()?;
    for inst in func.insts() {
        budget.tick()?;
        match &inst.kind {
            InstKind::Copy { dst, src } => {
                scan.edges.push((var(*src), var(*dst), DepKind::Direct));
            }
            InstKind::Phi { dst, incomings } => {
                for (_, v) in incomings {
                    scan.edges.push((var(*v), var(*dst), DepKind::Direct));
                }
            }
            InstKind::BinOp { op, dst, lhs, rhs } => {
                scan.edges.push((
                    var(*lhs),
                    var(*dst),
                    DepKind::Arith {
                        op: *op,
                        operand: 0,
                    },
                ));
                scan.edges.push((
                    var(*rhs),
                    var(*dst),
                    DepKind::Arith {
                        op: *op,
                        operand: 1,
                    },
                ));
            }
            InstKind::Cmp { dst, lhs, rhs, .. } => {
                scan.edges.push((var(*lhs), var(*dst), DepKind::Cmp));
                scan.edges.push((var(*rhs), var(*dst), DepKind::Cmp));
            }
            InstKind::Gep { dst, base, .. } => {
                scan.edges.push((var(*base), var(*dst), DepKind::Field));
            }
            InstKind::Alloca { .. } => {}
            InstKind::Store { addr, val } => {
                let objs = pts.pts_var(var(*addr));
                if !objs.is_empty() {
                    scan.writes.push((var(*val), objs));
                }
            }
            InstKind::Load { dst, addr, .. } => {
                let objs = pts.pts_var(var(*addr));
                if !objs.is_empty() {
                    scan.reads.push((var(*dst), objs));
                }
            }
            InstKind::Call { dst, callee, args } => match callee {
                Callee::Direct(target) => {
                    if pre.is_broken_call(fid, inst.id) {
                        continue;
                    }
                    let cs = CallSite {
                        caller: fid,
                        site: inst.id,
                    };
                    let tf = module.function(*target);
                    for (i, &a) in args.iter().enumerate() {
                        if let Some(&p) = tf.params().get(i) {
                            scan.edges.push((
                                var(a),
                                VarRef::new(*target, p),
                                DepKind::CallParam(cs),
                            ));
                        }
                    }
                    if let Some(d) = dst {
                        for b in tf.blocks() {
                            if let Terminator::Ret(Some(r)) = b.term {
                                scan.edges.push((
                                    VarRef::new(*target, r),
                                    var(*d),
                                    DepKind::CallReturn(cs),
                                ));
                            }
                        }
                    }
                }
                Callee::Extern(e) => {
                    let decl = module.extern_decl(*e);
                    match decl.effect {
                        ExternEffect::StrCopy => {
                            // dst buffer contents and return value both
                            // carry the source string.
                            if let Some(&src) = args.get(1) {
                                if let Some(d) = dst {
                                    scan.edges.push((var(src), var(*d), DepKind::ExternFlow));
                                }
                                if let Some(&dbuf) = args.first() {
                                    let objs = pts.pts_var(var(dbuf));
                                    if !objs.is_empty() {
                                        scan.writes.push((var(src), objs));
                                    }
                                }
                            }
                        }
                        ExternEffect::IntParse | ExternEffect::Pure => {
                            if let (Some(d), Some(&a0)) = (dst, args.first()) {
                                scan.edges.push((var(a0), var(*d), DepKind::ExternFlow));
                            }
                        }
                        _ => {}
                    }
                }
                Callee::Indirect(_) => {
                    // Unresolved before the §5.1 client runs; no edges
                    // (function pointers unmodeled).
                }
            },
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use manta_ir::{ModuleBuilder, Width};

    fn build(m: manta_ir::Module) -> (Preprocessed, Ddg) {
        let pre = preprocess(m, PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let pts = PointsTo::solve(&pre, &cg);
        let ddg = Ddg::build(&pre, &pts);
        (pre, ddg)
    }

    #[test]
    fn copy_and_arith_edges() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let c = fb.copy(p);
        let one = fb.const_int(1, Width::W64);
        let s = fb.binop(BinOp::Add, c, one, Width::W64);
        fb.ret(Some(s));
        mb.finish_function(fb);
        let (_, ddg) = build(mb.finish());
        let np = ddg.node(VarRef::new(fid, p));
        let nc = ddg.node(VarRef::new(fid, c));
        let ns = ddg.node(VarRef::new(fid, s));
        assert!(ddg
            .children(np)
            .iter()
            .any(|&(t, k)| t == nc && k == DepKind::Direct));
        assert!(ddg.children(nc).iter().any(|&(t, k)| t == ns
            && matches!(
                k,
                DepKind::Arith {
                    op: BinOp::Add,
                    operand: 0
                }
            )));
        assert!(ddg.parents(ns).len() >= 2);
    }

    #[test]
    fn memory_edge_requires_shared_object() {
        // Two disjoint slots: store into one, load from the other ⇒ no edge.
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let a = fb.alloca(8);
        let b = fb.alloca(8);
        fb.store(a, p);
        let l = fb.load(b, Width::W64);
        fb.ret(Some(l));
        mb.finish_function(fb);
        let (_, ddg) = build(mb.finish());
        let np = ddg.node(VarRef::new(fid, p));
        let nl = ddg.node(VarRef::new(fid, l));
        assert!(!ddg.children(np).iter().any(|&(t, _)| t == nl));

        // Same slot ⇒ edge.
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let a = fb.alloca(8);
        fb.store(a, p);
        let l = fb.load(a, Width::W64);
        fb.ret(Some(l));
        mb.finish_function(fb);
        let (_, ddg) = build(mb.finish());
        let np = ddg.node(VarRef::new(fid, p));
        let nl = ddg.node(VarRef::new(fid, l));
        assert!(ddg
            .children(np)
            .iter()
            .any(|&(t, k)| t == nl && matches!(k, DepKind::Memory(_))));
    }

    #[test]
    fn call_edges_carry_call_sites() {
        let mut mb = ModuleBuilder::new("m");
        let (callee, mut cb) = mb.function("callee", &[Width::W64], Some(Width::W64));
        let x = cb.param(0);
        cb.ret(Some(x));
        mb.finish_function(cb);
        let (caller, mut fb) = mb.function("caller", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let r = fb.call(callee, &[p], Some(Width::W64)).unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);
        let (pre, ddg) = build(mb.finish());
        let callee = pre.module.function_by_name("callee").unwrap().id();
        let x = pre.module.function(callee).params()[0];
        let np = ddg.node(VarRef::new(caller, p));
        let nx = ddg.node(VarRef::new(callee, x));
        let param_edge = ddg
            .children(np)
            .iter()
            .find(|&&(t, k)| t == nx && matches!(k, DepKind::CallParam(_)))
            .expect("param binding edge");
        let DepKind::CallParam(cs) = param_edge.1 else {
            unreachable!()
        };
        assert_eq!(cs.caller, caller);
        // Return edge closes with the same call site.
        let nr = ddg.node(VarRef::new(caller, r));
        assert!(ddg
            .parents(nr)
            .iter()
            .any(|&(s, k)| s == nx && k == DepKind::CallReturn(cs)));
    }

    #[test]
    fn remove_edges_prunes_both_directions() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64, Width::W64], Some(Width::W64));
        let a = fb.param(0);
        let b = fb.param(1);
        let s = fb.binop(BinOp::Add, a, b, Width::W64);
        fb.ret(Some(s));
        mb.finish_function(fb);
        let (_, mut ddg) = build(mb.finish());
        let nb = ddg.node(VarRef::new(fid, b));
        let ns = ddg.node(VarRef::new(fid, s));
        let e0 = ddg.edge_count();
        let removed = ddg.remove_edges(nb, ns, |k| matches!(k, DepKind::Arith { .. }));
        assert_eq!(removed, 1);
        assert_eq!(ddg.edge_count(), e0 - 1);
        assert!(!ddg.children(nb).iter().any(|&(t, _)| t == ns));
        assert!(!ddg.parents(ns).iter().any(|&(s_, _)| s_ == nb));
    }

    #[test]
    fn strcpy_propagates_through_buffer() {
        let mut mb = ModuleBuilder::new("m");
        let strcpy = mb.extern_fn("strcpy", &[], None);
        let nvram = mb.extern_fn("nvram_get", &[], None);
        let (fid, mut fb) = mb.function("f", &[], Some(Width::W64));
        let key = fb.alloca(8);
        let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
        let buf = fb.alloca(64);
        fb.call_extern(strcpy, &[buf, taint], Some(Width::W64));
        let out = fb.load(buf, Width::W64);
        fb.ret(Some(out));
        mb.finish_function(fb);
        let (_, ddg) = build(mb.finish());
        let nt = ddg.node(VarRef::new(fid, taint));
        let no = ddg.node(VarRef::new(fid, out));
        assert!(ddg
            .children(nt)
            .iter()
            .any(|&(t, k)| t == no && matches!(k, DepKind::Memory(_))));
    }
}
