//! Wavefront scheduling over SCC-condensed dependency graphs.
//!
//! Several subsystems share the same scheduling shape: a dependency
//! graph over work units (functions in a call graph, modules in a
//! batch), condensed into strongly-connected components and arranged
//! into bottom-up *wavefronts* — levels whose members are mutually
//! independent and depend only on earlier levels. Each level is then
//! dispatched across the pool with [`crate::par_map`], and levels run
//! in order so every unit sees its dependencies' results.
//!
//! This module is the shared home for that shape. It used to live as a
//! `pub(crate)` helper inside `manta::summaries` (with the engine's
//! batch scheduler reaching into it — an inverted layering); now the
//! summary driver, the partitioned points-to solver, and
//! `Engine::analyze_batch` all schedule through this API.
//!
//! The condensation here is deliberately self-contained (this crate
//! depends only on `manta-telemetry`) and matches the deterministic
//! contract of `manta_store::DepGraph::condense`: SCC ids are ordered
//! by smallest member, members are sorted, and levels are sorted — the
//! output is a pure function of the node count and edge set,
//! independent of DFS traversal details or thread count.

/// The SCC condensation of a dependency graph, arranged into bottom-up
/// wavefronts. Produced by [`condense`].
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `scc_of[n]` = the SCC id containing node `n`.
    pub scc_of: Vec<u32>,
    /// Members of each SCC, sorted; ids are ordered by smallest member.
    pub sccs: Vec<Vec<u32>>,
    /// `level_of[s]` = the wavefront level of SCC `s`.
    pub level_of: Vec<u32>,
    /// `levels[k]` = SCC ids at level `k`, sorted. Level 0 components
    /// depend on nothing outside themselves; level `k` components only
    /// on levels `< k`. SCCs within one level are mutually independent.
    pub levels: Vec<Vec<u32>>,
}

impl Condensation {
    /// Widths of the wavefronts (number of independent SCCs per level):
    /// the available parallelism at each scheduling step.
    #[must_use]
    pub fn widths(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Per-node wavefront level: `node_levels()[n]` is the level of the
    /// SCC containing node `n`. Convenience for callers that schedule
    /// nodes rather than components.
    #[must_use]
    pub fn node_levels(&self) -> Vec<u32> {
        self.scc_of
            .iter()
            .map(|&s| self.level_of[s as usize])
            .collect()
    }
}

/// Condenses a dependency graph into SCC wavefronts. `edges` are
/// `(from, to)` pairs meaning *`from` depends on `to`* (for a call
/// graph: caller depends on callee), so level 0 holds the leaves and a
/// bottom-up sweep visits callees before callers. Edges naming nodes
/// `>= nodes` are ignored, mirroring `DepGraph::add_dep`.
///
/// Deterministic: iterative Tarjan in node order; component ids are
/// relabeled by smallest member and levels assigned from the
/// condensation's pop order, so the result depends only on `(nodes,
/// edges)`.
#[must_use]
pub fn condense(nodes: usize, edges: &[(u32, u32)]) -> Condensation {
    let n = nodes;
    let mut deps: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(from, to) in edges {
        if (from as usize) < n && (to as usize) < n {
            deps[from as usize].push(to);
        }
    }
    const UNSEEN: u32 = u32::MAX;
    let mut discovery = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![0u32; n];
    // Components in Tarjan pop order: a component is completed only
    // after everything it depends on, so pop order is a bottom-up
    // topological order of the condensation.
    let mut comps: Vec<Vec<u32>> = Vec::new();
    let mut next = 0u32;
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if discovery[root as usize] != UNSEEN {
            continue;
        }
        call.push((root, 0));
        while let Some(&(v, ei)) = call.last() {
            let vi = v as usize;
            if ei == 0 {
                discovery[vi] = next;
                low[vi] = next;
                next += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            if ei < deps[vi].len() {
                if let Some(frame) = call.last_mut() {
                    frame.1 += 1;
                }
                let w = deps[vi][ei] as usize;
                if discovery[w] == UNSEEN {
                    call.push((w as u32, 0));
                } else if on_stack[w] {
                    low[vi] = low[vi].min(discovery[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == discovery[vi] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comps.len() as u32;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    // Levels in pop order: every out-of-component dependency was popped
    // earlier, so its level is already final.
    let mut pop_level = vec![0u32; comps.len()];
    for (c, members) in comps.iter().enumerate() {
        for &v in members {
            for &w in &deps[v as usize] {
                let d = comp_of[w as usize] as usize;
                if d != c {
                    pop_level[c] = pop_level[c].max(pop_level[d] + 1);
                }
            }
        }
    }
    // Relabel components by smallest member so ids are independent of
    // DFS traversal details.
    let mut order: Vec<usize> = (0..comps.len()).collect();
    order.sort_unstable_by_key(|&c| comps[c].first().copied().unwrap_or(u32::MAX));
    let mut new_id = vec![0u32; comps.len()];
    for (pos, &c) in order.iter().enumerate() {
        new_id[c] = pos as u32;
    }
    let mut sccs = vec![Vec::new(); comps.len()];
    let mut level_of = vec![0u32; comps.len()];
    let depth = pop_level
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut levels = vec![Vec::new(); depth];
    for (c, members) in comps.into_iter().enumerate() {
        let id = new_id[c];
        level_of[id as usize] = pop_level[c];
        levels[pop_level[c] as usize].push(id);
        sccs[id as usize] = members;
    }
    for l in &mut levels {
        l.sort_unstable();
    }
    let scc_of = comp_of.into_iter().map(|c| new_id[c as usize]).collect();
    Condensation {
        scc_of,
        sccs,
        level_of,
        levels,
    }
}

/// Groups keyed work items by wavefront level (dependencies before
/// dependents), preserving input order within a level and dropping
/// empty levels. `level_of` maps an item's key to its level.
pub fn group_by_level<K: Copy, T>(
    items: Vec<(K, T)>,
    level_of: impl Fn(K) -> u32,
) -> Vec<Vec<(K, T)>> {
    let max_level = items
        .iter()
        .map(|(k, _)| level_of(*k))
        .max()
        .map(|l| l as usize + 1)
        .unwrap_or(0);
    let mut levels: Vec<Vec<(K, T)>> = (0..max_level).map(|_| Vec::new()).collect();
    for (k, item) in items {
        levels[level_of(k) as usize].push((k, item));
    }
    levels.retain(|l| !l.is_empty());
    levels
}

/// Dispatches work level by level across the pool: each inner vec is
/// one wavefront whose items run concurrently via [`crate::par_map`];
/// levels run in order. Results come back flattened in input order.
/// `counter` names the telemetry counter bumped once per dispatched
/// level (e.g. `"summary.wavefronts"`, `"pointsto.wavefronts"`), so
/// each consumer keeps its own observability surface.
pub fn wavefront_dispatch<T: Send, R: Send>(
    levels: Vec<Vec<T>>,
    counter: &str,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let mut out = Vec::new();
    for level in levels {
        if level.is_empty() {
            continue;
        }
        manta_telemetry::counter(counter, 1);
        out.extend(crate::par_map(level, &f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condense_chain_levels_are_bottom_up() {
        // 0 -> 1 -> 2 (0 depends on 1, 1 on 2); 3 isolated.
        let c = condense(4, &[(0, 1), (1, 2)]);
        assert_eq!(c.sccs.len(), 4);
        let lvl = c.node_levels();
        assert_eq!(lvl[2], 0);
        assert_eq!(lvl[1], 1);
        assert_eq!(lvl[0], 2);
        assert_eq!(lvl[3], 0);
    }

    #[test]
    fn condense_collapses_cycles() {
        // 0 <-> 1 form one SCC; 2 depends on the cycle.
        let c = condense(3, &[(0, 1), (1, 0), (2, 0)]);
        assert_eq!(c.scc_of[0], c.scc_of[1]);
        assert_ne!(c.scc_of[0], c.scc_of[2]);
        assert_eq!(c.sccs[c.scc_of[0] as usize], vec![0, 1]);
        let lvl = c.node_levels();
        assert_eq!(lvl[0], 0);
        assert!(lvl[2] > lvl[0]);
    }

    #[test]
    fn condense_matches_on_edge_permutations() {
        let a = condense(5, &[(0, 1), (1, 2), (3, 1), (2, 0)]);
        let b = condense(5, &[(2, 0), (3, 1), (1, 2), (0, 1)]);
        assert_eq!(a.scc_of, b.scc_of);
        assert_eq!(a.sccs, b.sccs);
        assert_eq!(a.levels, b.levels);
    }

    #[test]
    fn condense_ignores_out_of_range_edges() {
        let c = condense(2, &[(0, 1), (1, 9), (9, 0)]);
        assert_eq!(c.sccs.len(), 2);
        assert_eq!(c.node_levels(), vec![1, 0]);
    }

    #[test]
    fn group_by_level_orders_and_drops_empties() {
        let items = vec![(2u32, 'a'), (0, 'b'), (2, 'c')];
        let grouped = group_by_level(items, |k| k);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0], vec![(0, 'b')]);
        assert_eq!(grouped[1], vec![(2, 'a'), (2, 'c')]);
    }

    #[test]
    fn dispatch_flattens_in_input_order() {
        let levels = vec![vec![1, 2], vec![], vec![3]];
        let out = wavefront_dispatch(levels, "test.wavefronts", |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
