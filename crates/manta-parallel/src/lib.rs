//! # manta-parallel
//!
//! A zero-dependency scoped work-stealing thread pool for intra-module
//! parallelism, following the repo's in-tree-substitutes convention (no
//! external crates; `std` only).
//!
//! Two entry points:
//!
//! * [`par_map`] — the workhorse: maps a function over a `Vec` of items
//!   on a transient work-stealing pool and returns the results **in
//!   input order** (deterministic reduce). The pipeline uses this for
//!   its per-function stages; because every merge happens in input
//!   (function-id) order, parallel output is bit-identical to serial.
//! * [`scope`] — a scoped pool with [`Scope::spawn`] /
//!   [`JoinHandle::join`] for irregular task graphs.
//!
//! The [`wavefront`] module layers dependency-ordered scheduling on top
//! of `par_map`: SCC condensation plus level-by-level dispatch, shared
//! by the summary driver, the partitioned points-to solver, and
//! `Engine::analyze_batch`.
//!
//! ## Determinism contract
//!
//! `par_map(items, f)` returns exactly `items.into_iter().map(f)
//! .collect()` as long as `f` is a pure function of its item (plus
//! shared read-only state). Scheduling decides only *when* each item
//! runs, never how results are ordered. Callers that mutate shared
//! state must confine themselves to commutative sinks (atomic counters,
//! a shared [`Budget`](../manta_resilience/struct.Budget.html)).
//!
//! ## Panic and budget semantics
//!
//! A panicking item does not tear down the pool: every worker runs items
//! under `catch_unwind`, the first panic **by item index** (not by wall
//! clock) is re-raised on the calling thread after all workers have
//! joined, and later panics are dropped. An enclosing
//! `manta_resilience::isolate` boundary therefore observes exactly the
//! panic a serial run would have surfaced first. Budgets are shared
//! (`Budget` is `Sync`): workers tick one budget cooperatively, and a
//! tripped budget fails every in-flight item at its next tick.
//!
//! ## Thread-count policy
//!
//! The pool size is a process-wide setting ([`set_threads`]): `0` means
//! "auto" (`std::thread::available_parallelism`). [`par_map`] clamps
//! the configured count to the host's cores ([`effective_threads`]):
//! oversubscribing a core adds scheduling overhead without speedup, so
//! `--threads 8` on a single-core box runs inline. With an effective
//! count of 1 every entry point degenerates to a plain inline loop — no
//! threads, no `catch_unwind` — so `--threads 1` *is* the serial
//! engine, not an emulation of it. Nested calls from inside a worker
//! also run inline, so recursive parallelism cannot oversubscribe.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod wavefront;

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use manta_telemetry::{Counter, Histogram};

/// Items executed across all `par_map` calls.
static TASKS: Counter = Counter::new("parallel.tasks");
/// Work units seeded across parallel `par_map` calls. With chunking on
/// (large item counts) one unit covers many items, so
/// `tasks / chunks` is the realized batching factor.
static CHUNKS: Counter = Counter::new("parallel.chunks");
/// Successful steals (an idle worker took a work unit from a peer's
/// deque). With chunking a steal moves a whole chunk, not one item.
static STEALS: Counter = Counter::new("parallel.steals");
/// Steal *attempts*: every probe of a peer's deque, successful or not.
/// `steals / steal_attempts` is the steal hit rate; a low ratio means
/// workers burn time sweeping drained peers.
static STEAL_ATTEMPTS: Counter = Counter::new("parallel.steal_attempts");
/// Number of `par_map` invocations that actually went parallel.
static MAPS: Counter = Counter::new("parallel.par_maps");
/// Cumulative worker busy time across parallel `par_map` calls, µs.
static BUSY_US: Counter = Counter::new("parallel.busy_us");
/// Cumulative pool capacity (wall µs × workers) across those calls; the
/// ratio `busy_us / capacity_us` is the pool utilization.
static CAPACITY_US: Counter = Counter::new("parallel.capacity_us");
/// Cumulative worker idle time (worker wall time minus time inside
/// items), µs. Covers steal sweeps and scheduling overhead.
static IDLE_US: Counter = Counter::new("parallel.idle_us");
/// Deepest single deque observed at seeding time (high-water mark —
/// deques only shrink once workers start).
static QUEUE_HWM: Counter = Counter::new("parallel.queue_depth_hwm");
/// Items executed per worker per parallel call: the load-balance shape
/// (a wide spread at equal item cost means stealing is not keeping up).
static WORKER_TASKS: Histogram = Histogram::new("parallel.worker_tasks");

/// Configured pool size; 0 = auto (`available_parallelism`).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool worker threads; makes nested calls run inline.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Sets the process-wide worker count used by [`par_map`] and [`scope`].
/// `0` restores the default (one worker per available core).
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::SeqCst);
}

/// The `MANTA_THREADS` environment override, read once per process;
/// unset, `0` or unparsable all mean auto. Lets a test run force a pool
/// size without touching every call site (CI runs the suite at 1 and 4).
fn env_threads() -> usize {
    static ENV: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MANTA_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// The effective worker count: the value from [`set_threads`], else the
/// `MANTA_THREADS` environment variable, else `available_parallelism()`.
/// Always ≥ 1.
#[must_use]
pub fn threads() -> usize {
    match CONFIGURED.load(Ordering::SeqCst) {
        0 => match env_threads() {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            n => n,
        },
        n => n,
    }
    .max(1)
}

/// Test-only override of the detected host parallelism; 0 = real value.
static CORES_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the detected host core count (`0` restores detection).
/// Correctness tests use this to exercise the multi-worker path on
/// single-core CI hosts, where the [`effective_threads`] clamp would
/// otherwise make every entry point inline. Not part of the stable API.
#[doc(hidden)]
pub fn override_host_cores(n: usize) {
    CORES_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The host's available parallelism, read once per process.
fn host_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    match CORES_OVERRIDE.load(Ordering::SeqCst) {
        0 => *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        }),
        n => n,
    }
}

/// The pool size [`par_map`] will actually use: [`threads`] clamped to
/// the host's available parallelism. Requesting more workers than the
/// host has cores cannot add speedup, only scheduling overhead, so on a
/// single-core host every configuration degenerates to the inline
/// fast-path (`effective_threads() == 1`).
#[must_use]
pub fn effective_threads() -> usize {
    threads().min(host_cores())
}

/// Whether the current thread is a pool worker (nested parallel calls
/// from here run inline).
#[must_use]
pub fn in_pool() -> bool {
    IN_POOL.with(std::cell::Cell::get)
}

/// Maps `f` over `items` on a work-stealing pool, returning results in
/// input order.
///
/// Runs inline (plain `map`) when the effective pool size
/// ([`effective_threads`], i.e. the configured count clamped to the
/// host's cores) is 1, when called from inside a pool worker, or when
/// there are fewer than two items. See the crate docs for the
/// determinism and panic contract.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed panicking item, after all
/// workers have drained.
pub fn par_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let workers = effective_threads().min(items.len());
    if workers <= 1 || in_pool() {
        return items.into_iter().map(f).collect();
    }
    MAPS.incr();
    manta_telemetry::counter_set("parallel.threads", workers as u64);
    let total = items.len();

    // Batch tiny per-item work into contiguous chunks so the steal loop
    // moves ~4 units per worker instead of contending once per item.
    // Sub-millisecond function solves otherwise spend more wall clock in
    // deque locks than in the items themselves. Small inputs keep one
    // item per unit: there the limiting factor is load balance, not
    // scheduling overhead.
    let chunk_size = if total >= workers * 8 {
        total.div_ceil(workers * 4)
    } else {
        1
    };

    // Round-robin initial distribution: chunk `c` seeds deque `c % w`,
    // so every worker starts with a spread of early and late items.
    // Each queued unit is a chunk tagged with its first item's index.
    type ChunkDeque<I> = Mutex<VecDeque<(usize, Vec<I>)>>;
    let deques: Vec<ChunkDeque<I>> = (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    {
        let mut items = items.into_iter().enumerate();
        let mut c = 0usize;
        loop {
            let chunk: Vec<(usize, I)> = items.by_ref().take(chunk_size).collect();
            let Some(&(start, _)) = chunk.first() else {
                break;
            };
            let chunk: Vec<I> = chunk.into_iter().map(|(_, it)| it).collect();
            lock(&deques[c % workers]).push_back((start, chunk));
            c += 1;
        }
        CHUNKS.add(c as u64);
    }
    if let Some(deepest) = deques.iter().map(|d| lock(d).len()).max() {
        QUEUE_HWM.record_max(deepest as u64);
    }
    // Per-item timing costs two `Instant::now` calls per task; only pay
    // for it while collection is on.
    let detailed = manta_telemetry::is_enabled();

    let start = Instant::now();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let f = &f;
                s.spawn(move || {
                    IN_POOL.with(|c| c.set(true));
                    let busy = Instant::now();
                    let mut done: Vec<(usize, R)> = Vec::new();
                    let mut caught: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
                    let mut steals = 0u64;
                    let mut steal_attempts = 0u64;
                    let mut exec_ns = 0u128;
                    loop {
                        // Own deque first (front = oldest seeded item),
                        // then sweep peers' backs. The own-deque guard must
                        // drop before the sweep: holding it while probing
                        // peers lets N drained workers form a circular wait
                        // (each holding deque[w], requesting deque[w+1]).
                        let own = lock(&deques[w]).pop_front();
                        let next = match own {
                            Some(x) => Some(x),
                            None => (1..workers).find_map(|off| {
                                steal_attempts += 1;
                                let got = lock(&deques[(w + off) % workers]).pop_back();
                                if got.is_some() {
                                    steals += 1;
                                }
                                got
                            }),
                        };
                        let Some((start, chunk)) = next else { break };
                        let item_start = detailed.then(Instant::now);
                        for (off, item) in chunk.into_iter().enumerate() {
                            let idx = start + off;
                            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                                Ok(r) => done.push((idx, r)),
                                Err(p) => caught.push((idx, p)),
                            }
                        }
                        if let Some(t) = item_start {
                            exec_ns += t.elapsed().as_nanos();
                        }
                    }
                    IN_POOL.with(|c| c.set(false));
                    let wall_us = busy.elapsed().as_micros() as u64;
                    TASKS.add(done.len() as u64 + caught.len() as u64);
                    WORKER_TASKS.record(done.len() as u64 + caught.len() as u64);
                    STEALS.add(steals);
                    STEAL_ATTEMPTS.add(steal_attempts);
                    BUSY_US.add(wall_us);
                    if detailed {
                        IDLE_US.add(wall_us.saturating_sub((exec_ns / 1_000) as u64));
                    }
                    (done, caught)
                })
            })
            .collect();
        for h in handles {
            // Workers never panic themselves (items run under
            // catch_unwind), so join only fails on external SIGKILL-ish
            // conditions we cannot recover from anyway.
            #[allow(clippy::unwrap_used)]
            let (done, caught) = h.join().unwrap();
            for (idx, r) in done {
                slots[idx] = Some(r);
            }
            panics.extend(caught);
        }
    });
    CAPACITY_US.add(start.elapsed().as_micros() as u64 * workers as u64);

    if let Some((_, payload)) = panics.into_iter().min_by_key(|&(idx, _)| idx) {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|r| {
            // Every index was pushed exactly once and no panic survived.
            #[allow(clippy::unwrap_used)]
            r.unwrap()
        })
        .collect()
}

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

struct PoolState<'env> {
    queue: Mutex<(VecDeque<Task<'env>>, bool)>,
    cv: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A handle to a task spawned on a [`Scope`]; resolves to the task's
/// return value.
pub struct JoinHandle<R> {
    slot: Arc<Slot<R>>,
}

struct Slot<R> {
    result: Mutex<Option<std::thread::Result<R>>>,
    cv: Condvar,
}

impl<R> JoinHandle<R> {
    /// Blocks until the task finishes and returns its result.
    ///
    /// # Panics
    ///
    /// Re-raises the task's panic on the joining thread (mirroring
    /// `std::thread::JoinHandle`, but without wrapping in `Result`).
    pub fn join(self) -> R {
        let mut guard = lock(&self.slot.result);
        while guard.is_none() {
            guard = self
                .slot
                .cv
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // The loop above only exits when the worker stored a result.
        #[allow(clippy::unwrap_used)]
        match guard.take().unwrap() {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// A scoped task spawner backed by the pool; see [`scope`].
pub struct Scope<'pool, 'env> {
    state: &'pool PoolState<'env>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Queues `f` on the pool and returns a [`JoinHandle`] for its
    /// result. Tasks may borrow from the environment enclosing
    /// [`scope`] (`'env`).
    pub fn spawn<R, F>(&self, f: F) -> JoinHandle<R>
    where
        R: Send + 'env,
        F: FnOnce() -> R + Send + 'env,
    {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        });
        let out = Arc::clone(&slot);
        let task: Task<'env> = Box::new(move || {
            let r = catch_unwind(AssertUnwindSafe(f));
            *lock(&out.result) = Some(r);
            out.cv.notify_all();
        });
        {
            let mut q = lock(&self.state.queue);
            q.0.push_back(task);
        }
        self.state.cv.notify_one();
        JoinHandle { slot }
    }
}

/// Closes the queue even when the scope body panics, so workers always
/// terminate and `std::thread::scope` can join them.
struct CloseGuard<'pool, 'env>(&'pool PoolState<'env>);

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        lock(&self.0.queue).1 = true;
        self.0.cv.notify_all();
    }
}

/// Runs `body` with a [`Scope`] whose spawned tasks execute on a
/// transient pool of [`threads`] workers. All tasks complete (or their
/// panics are parked in their [`JoinHandle`]s) before `scope` returns.
///
/// With an effective thread count of 1 the pool still exists (one
/// worker), so `spawn` + `join` is always safe — `join` never deadlocks
/// waiting for the spawning thread to run the task.
pub fn scope<'env, T, F>(body: F) -> T
where
    F: FnOnce(&Scope<'_, 'env>) -> T,
{
    let workers = threads();
    let state = PoolState {
        queue: Mutex::new((VecDeque::new(), false)),
        cv: Condvar::new(),
    };
    std::thread::scope(|s| {
        for _ in 0..workers {
            let state = &state;
            s.spawn(move || {
                IN_POOL.with(|c| c.set(true));
                loop {
                    let task = {
                        let mut q = lock(&state.queue);
                        loop {
                            if let Some(t) = q.0.pop_front() {
                                break Some(t);
                            }
                            if q.1 {
                                break None;
                            }
                            q = state
                                .cv
                                .wait(q)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    match task {
                        Some(t) => t(),
                        None => break,
                    }
                }
                IN_POOL.with(|c| c.set(false));
            });
        }
        let _close = CloseGuard(&state);
        body(&Scope { state: &state })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global thread count.
    fn config_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn par_map_preserves_order() {
        let _l = config_lock();
        set_threads(4);
        let out = par_map((0..1000).collect::<Vec<u64>>(), |x| x * 2);
        set_threads(0);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn par_map_matches_serial_map_exactly() {
        let _l = config_lock();
        let items: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        set_threads(1);
        let serial = par_map(items.clone(), |s| s.len() + s.ends_with('3') as usize);
        set_threads(8);
        let parallel = par_map(items, |s| s.len() + s.ends_with('3') as usize);
        set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_borrows_environment() {
        let _l = config_lock();
        set_threads(2);
        let base = [10u64, 20, 30];
        let out = par_map(vec![0usize, 1, 2], |i| base[i] + 1);
        set_threads(0);
        assert_eq!(out, vec![11, 21, 31]);
    }

    /// Regression test: workers whose deques drain simultaneously all
    /// enter the steal sweep at once. Holding the own-deque guard across
    /// that sweep used to form a circular wait (each worker holding
    /// `deque[w]`, requesting `deque[w+1]`) and hang the pool. Tiny
    /// batches at high worker counts maximize the drained-sweep overlap.
    #[test]
    fn drained_workers_never_deadlock_while_stealing() {
        let _l = config_lock();
        set_threads(8);
        for round in 0..200usize {
            let out = par_map((0..8usize).collect::<Vec<_>>(), |i| i + round);
            assert_eq!(out.len(), 8);
        }
        set_threads(0);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let _l = config_lock();
        set_threads(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            par_map((0..32).collect::<Vec<u32>>(), |x| {
                if x % 7 == 3 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        set_threads(0);
        let payload = r.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom at 3", "first panic by item index must win");
    }

    #[test]
    fn nested_par_map_runs_inline() {
        let _l = config_lock();
        set_threads(4);
        // On a single-core host the clamp makes the outer call inline
        // too, in which case there is no pool to observe.
        let expect_pool = effective_threads() > 1;
        let out = par_map(vec![1u64, 2, 3, 4], |x| {
            assert_eq!(in_pool(), expect_pool);
            // Nested call must not deadlock or oversubscribe.
            par_map(vec![x, x + 10], |y| y * 2).iter().sum::<u64>()
        });
        set_threads(0);
        assert_eq!(out, vec![24, 28, 32, 36]);
    }

    #[test]
    fn effective_threads_is_clamped_to_host_cores() {
        let _l = config_lock();
        set_threads(4096);
        // `threads()` reports the configured value verbatim; the pool
        // size is what gets clamped.
        assert_eq!(threads(), 4096);
        assert!(effective_threads() <= host_cores());
        assert!(effective_threads() >= 1);
        set_threads(0);
    }

    #[test]
    fn scope_spawn_join_returns_values() {
        let _l = config_lock();
        set_threads(3);
        let data = [1u64, 2, 3];
        let total = scope(|s| {
            let a = s.spawn(|| data.iter().sum::<u64>());
            let b = s.spawn(|| data.len() as u64);
            a.join() + b.join()
        });
        set_threads(0);
        assert_eq!(total, 9);
    }

    #[test]
    fn scope_join_reraises_task_panic() {
        let _l = config_lock();
        set_threads(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                let h = s.spawn(|| -> u32 { panic!("task died") });
                h.join()
            })
        }));
        set_threads(0);
        let msg = r
            .unwrap_err()
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default();
        assert_eq!(msg, "task died");
    }

    #[test]
    fn shared_budget_is_spent_cooperatively() {
        let _l = config_lock();
        set_threads(4);
        let budget = manta_resilience_stub::SharedCounter::default();
        let out = par_map((0..100).collect::<Vec<u32>>(), |x| {
            budget.spend(1);
            x
        });
        set_threads(0);
        assert_eq!(out.len(), 100);
        assert_eq!(budget.total(), 100);
    }

    /// Minimal stand-in so this crate does not depend on
    /// `manta-resilience` (which depends on nothing but telemetry, but
    /// keeping the pool dependency-light keeps layering acyclic).
    mod manta_resilience_stub {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        pub struct SharedCounter(AtomicU64);

        impl SharedCounter {
            pub fn spend(&self, n: u64) {
                self.0.fetch_add(n, Ordering::Relaxed);
            }
            pub fn total(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
        }
    }

    /// With 1000 items at 4 workers the chunked path is active
    /// (`total >= workers * 8`): units are contiguous runs, results must
    /// still come back in input order. The core-count override forces
    /// the pool to actually spin up on single-core CI hosts.
    #[test]
    fn chunked_path_preserves_order() {
        let _l = config_lock();
        override_host_cores(4);
        set_threads(4);
        let out = par_map((0..1000).collect::<Vec<u64>>(), |x| x * 3 + 1);
        set_threads(0);
        override_host_cores(0);
        assert_eq!(out, (0..1000).map(|x| x * 3 + 1).collect::<Vec<u64>>());
    }

    /// Panic indexing must survive chunking: the chunk containing item 3
    /// also contains later panicking items, and other chunks panic too —
    /// the lowest *item* index still wins.
    #[test]
    fn chunked_lowest_index_panic_wins() {
        let _l = config_lock();
        override_host_cores(4);
        set_threads(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            par_map((0..256).collect::<Vec<u32>>(), |x| {
                if x % 7 == 3 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        set_threads(0);
        override_host_cores(0);
        let payload = r.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom at 3", "first panic by item index must win");
    }

    /// Small inputs (below `workers * 8`) keep one item per unit so load
    /// balance is unaffected; the seeded unit count equals the item
    /// count. Large inputs seed ~4 units per worker.
    #[test]
    fn chunk_sizing_policy() {
        let _l = config_lock();
        override_host_cores(4);
        set_threads(4);
        manta_telemetry::set_enabled(true);
        let before = manta_telemetry::report()
            .counters
            .get("parallel.chunks")
            .copied()
            .unwrap_or(0);
        // 31 < 4*8: unchunked, 31 units.
        let _ = par_map((0..31).collect::<Vec<u64>>(), |x| x);
        let mid = manta_telemetry::report()
            .counters
            .get("parallel.chunks")
            .copied()
            .unwrap_or(0);
        assert_eq!(mid - before, 31);
        // 1000 >= 4*8: ceil(1000/16) = 63 per chunk -> 16 units.
        let _ = par_map((0..1000).collect::<Vec<u64>>(), |x| x);
        let after = manta_telemetry::report()
            .counters
            .get("parallel.chunks")
            .copied()
            .unwrap_or(0);
        manta_telemetry::set_enabled(false);
        set_threads(0);
        override_host_cores(0);
        assert_eq!(after - mid, 16);
    }

    #[test]
    fn threads_zero_means_auto() {
        let _l = config_lock();
        set_threads(0);
        assert!(threads() >= 1);
        set_threads(7);
        assert_eq!(threads(), 7);
        set_threads(0);
    }
}
