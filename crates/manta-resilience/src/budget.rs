//! Cooperative execution budgets: fuel plus an optional wall-clock
//! deadline, checked from inside the pipeline's fixpoint loops.
//!
//! The design goal is that the *unconstrained* path stays essentially
//! free: [`Budget::unlimited`] short-circuits before touching any
//! counter, so sprinkling `budget.tick()?` through hot loops costs a
//! single branch on a non-atomic bool. Constrained budgets decrement a
//! relaxed `AtomicU64` per tick and only consult the (comparatively
//! expensive) monotonic clock once every [`DEADLINE_PERIOD`] ticks.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many fuel ticks elapse between wall-clock deadline checks.
pub const DEADLINE_PERIOD: u64 = 1024;

/// Why a budget stopped an analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetKind {
    /// The fuel allotment (number of cooperative ticks) ran out.
    Fuel,
    /// The wall-clock deadline passed.
    Deadline,
    /// The budget was exhausted on purpose (fault injection).
    Injected,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Fuel => write!(f, "fuel"),
            BudgetKind::Deadline => write!(f, "deadline"),
            BudgetKind::Injected => write!(f, "injected"),
        }
    }
}

/// Error returned from [`Budget::tick`] when the budget is spent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BudgetExceeded {
    /// Which limit tripped.
    pub kind: BudgetKind,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "budget exceeded ({})", self.kind)
    }
}

impl std::error::Error for BudgetExceeded {}

/// Serializable description of a budget, used to carry limits across API
/// boundaries (CLI flags, configs) and mint a fresh [`Budget`] per run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BudgetSpec {
    /// Maximum number of cooperative ticks, or `None` for unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock limit in milliseconds, or `None` for unlimited.
    pub deadline_ms: Option<u64>,
}

impl BudgetSpec {
    /// True when neither limit is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.fuel.is_none() && self.deadline_ms.is_none()
    }

    /// Starts the clock: builds a [`Budget`] whose deadline (if any) is
    /// `deadline_ms` from now.
    #[must_use]
    pub fn start(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(fuel) = self.fuel {
            b = Budget::with_fuel(fuel);
        }
        if let Some(ms) = self.deadline_ms {
            let deadline = Instant::now() + Duration::from_millis(ms);
            b.deadline = Some(deadline);
            b.limitless = false;
        }
        b
    }
}

/// A cooperative execution budget.
///
/// `Sync`: one `Budget` can be shared by every worker in a
/// `manta-parallel` scope, so a module-wide fuel allotment is spent
/// cooperatively no matter how the work is partitioned. All counters are
/// relaxed atomics — the total amount of fuel spent is exact, only the
/// interleaving of which worker spends which tick is scheduling-
/// dependent (and a tripped budget trips every worker). Interior
/// mutability keeps `tick` callable through shared references, which is
/// what deeply-threaded analysis code wants.
#[derive(Debug)]
pub struct Budget {
    fuel: AtomicU64,
    deadline: Option<Instant>,
    /// Countdown to the next deadline check.
    until_clock: AtomicU64,
    /// Fast path: true iff no limit of any kind is set.
    limitless: bool,
    /// Set by [`Budget::exhaust`]; checked before fuel.
    poisoned: AtomicBool,
}

impl Budget {
    /// A budget that never trips. `tick` on this is a single branch.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget {
            fuel: AtomicU64::new(u64::MAX),
            deadline: None,
            until_clock: AtomicU64::new(DEADLINE_PERIOD),
            limitless: true,
            poisoned: AtomicBool::new(false),
        }
    }

    /// A budget limited to `fuel` cooperative ticks.
    #[must_use]
    pub fn with_fuel(fuel: u64) -> Self {
        Budget {
            fuel: AtomicU64::new(fuel),
            deadline: None,
            until_clock: AtomicU64::new(DEADLINE_PERIOD),
            limitless: false,
            poisoned: AtomicBool::new(false),
        }
    }

    /// A budget limited to `d` of wall-clock time from now.
    #[must_use]
    pub fn with_deadline(d: Duration) -> Self {
        Budget {
            fuel: AtomicU64::new(u64::MAX),
            deadline: Some(Instant::now() + d),
            until_clock: AtomicU64::new(DEADLINE_PERIOD),
            limitless: false,
            poisoned: AtomicBool::new(false),
        }
    }

    /// True when no limit is configured.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.limitless
    }

    /// Remaining fuel (meaningless for unlimited budgets).
    #[must_use]
    pub fn fuel_left(&self) -> u64 {
        self.fuel.load(Ordering::Relaxed)
    }

    /// Forcibly exhausts the budget so the next `tick` fails with
    /// [`BudgetKind::Injected`]. Used by the fault-injection harness.
    pub fn exhaust(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Spends one unit of fuel.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when any configured limit has tripped.
    #[inline]
    pub fn tick(&self) -> Result<(), BudgetExceeded> {
        if self.limitless && !self.poisoned.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.consume(1)
    }

    /// Spends `n` units of fuel at once (bulk work, e.g. a whole
    /// worklist round). Deadline accounting treats this as `n` ticks.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when any configured limit has tripped.
    pub fn consume(&self, n: u64) -> Result<(), BudgetExceeded> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(BudgetExceeded {
                kind: BudgetKind::Injected,
            });
        }
        if self.limitless {
            return Ok(());
        }
        // Saturating fetch-sub: concurrent workers each claim their `n`
        // exactly once, and whoever crosses zero trips (fuel pins at 0
        // so every later caller trips too).
        let claim = self
            .fuel
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |fuel| {
                Some(fuel.saturating_sub(n))
            })
            .unwrap_or(0);
        if claim < n {
            return Err(BudgetExceeded {
                kind: BudgetKind::Fuel,
            });
        }
        if let Some(deadline) = self.deadline {
            let left = self.until_clock.load(Ordering::Relaxed);
            if left <= n {
                self.until_clock.store(DEADLINE_PERIOD, Ordering::Relaxed);
                if Instant::now() >= deadline {
                    return Err(BudgetExceeded {
                        kind: BudgetKind::Deadline,
                    });
                }
            } else {
                self.until_clock.store(left - n, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..1_000_000 {
            b.tick().unwrap();
        }
        assert!(b.is_unlimited());
    }

    #[test]
    fn fuel_runs_out() {
        let b = Budget::with_fuel(3);
        assert!(b.tick().is_ok());
        assert!(b.tick().is_ok());
        assert!(b.tick().is_ok());
        let e = b.tick().unwrap_err();
        assert_eq!(e.kind, BudgetKind::Fuel);
        // Stays tripped.
        assert!(b.tick().is_err());
    }

    #[test]
    fn bulk_consume_matches_ticks() {
        let b = Budget::with_fuel(10);
        b.consume(7).unwrap();
        assert_eq!(b.fuel_left(), 3);
        assert_eq!(b.consume(4).unwrap_err().kind, BudgetKind::Fuel);
    }

    #[test]
    fn elapsed_deadline_trips_within_one_period() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        let mut tripped = None;
        for i in 0..=DEADLINE_PERIOD {
            if let Err(e) = b.tick() {
                tripped = Some((i, e.kind));
                break;
            }
        }
        let (i, kind) = tripped.expect("deadline must trip within one period");
        assert_eq!(kind, BudgetKind::Deadline);
        assert!(i <= DEADLINE_PERIOD);
    }

    #[test]
    fn exhaust_poisons_even_unlimited() {
        let b = Budget::unlimited();
        b.tick().unwrap();
        b.exhaust();
        assert_eq!(b.tick().unwrap_err().kind, BudgetKind::Injected);
    }

    #[test]
    fn spec_round_trip() {
        let spec = BudgetSpec {
            fuel: Some(5),
            deadline_ms: None,
        };
        assert!(!spec.is_unlimited());
        let b = spec.start();
        for _ in 0..5 {
            b.tick().unwrap();
        }
        assert!(b.tick().is_err());

        let unlimited = BudgetSpec::default();
        assert!(unlimited.is_unlimited());
        assert!(unlimited.start().is_unlimited());
    }

    #[test]
    fn spec_with_deadline_sets_clock() {
        let spec = BudgetSpec {
            fuel: None,
            deadline_ms: Some(0),
        };
        let b = spec.start();
        assert!(!b.is_unlimited());
        let mut ok = true;
        for _ in 0..=DEADLINE_PERIOD {
            if b.tick().is_err() {
                ok = false;
                break;
            }
        }
        assert!(!ok, "0ms deadline must trip");
    }
}
