//! Deterministic retry backoff for transient failures.
//!
//! A client hitting an overloaded server must retry *eventually* but not
//! *immediately*, and a fleet of clients must not retry in lockstep.
//! [`Backoff`] produces a capped exponential delay sequence with
//! multiplicative jitter drawn from a seeded splitmix64 stream, so two
//! clients with different seeds spread out while a test with a fixed
//! seed sees the exact same delays on every run.

use std::time::Duration;

/// Policy knobs for a [`Backoff`] sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Ceiling applied to the exponential delay before jitter.
    pub cap: Duration,
    /// Maximum number of retries; [`Backoff::next_delay`] returns `None`
    /// once they are spent.
    pub max_retries: u32,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            max_retries: 6,
        }
    }
}

/// A seeded, capped exponential backoff sequence.
///
/// Delay for attempt `n` (0-based) is `min(base * 2^n, cap)` scaled by a
/// jitter factor in `[0.5, 1.0]` drawn from the seeded stream — the
/// "equal jitter" scheme: never more than the deterministic envelope,
/// never less than half of it, and reproducible for a given seed.
#[derive(Debug)]
pub struct Backoff {
    policy: BackoffPolicy,
    rng: u64,
    attempt: u32,
}

impl Backoff {
    /// Starts a sequence under `policy`, with jitter seeded by `seed`.
    #[must_use]
    pub fn new(policy: BackoffPolicy, seed: u64) -> Backoff {
        Backoff {
            policy,
            rng: seed,
            attempt: 0,
        }
    }

    /// Retries consumed so far.
    #[must_use]
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The delay to sleep before the next retry, or `None` when the
    /// retry budget is spent.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.max_retries {
            return None;
        }
        let exp = self
            .policy
            .base
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX).max(1));
        let envelope = exp.min(self.policy.cap);
        self.attempt += 1;
        // splitmix64 step (same generator as manta-store's hashing
        // utilities; re-derived here to keep this crate's dependency
        // surface unchanged).
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Jitter factor in [0.5, 1.0): keep the top half of the
        // envelope so retries still spread without collapsing to zero.
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 0.5 + unit / 2.0;
        Some(envelope.mul_f64(factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_delays() {
        let policy = BackoffPolicy::default();
        let mut b = Backoff::new(policy, 42);
        let first: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(first.len(), policy.max_retries as usize);
        let mut c = Backoff::new(policy, 42);
        let again: Vec<_> = std::iter::from_fn(|| c.next_delay()).collect();
        assert_eq!(first, again, "a fixed seed reproduces the sequence");
    }

    #[test]
    fn different_seeds_diverge() {
        let policy = BackoffPolicy::default();
        let mut a = Backoff::new(policy, 1);
        let mut b = Backoff::new(policy, 2);
        let da: Vec<_> = std::iter::from_fn(|| a.next_delay()).collect();
        let db: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_ne!(da, db, "seeds must decorrelate retry storms");
    }

    #[test]
    fn delays_grow_exponentially_within_the_jitter_band() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(60),
            max_retries: 5,
        };
        let mut b = Backoff::new(policy, 7);
        for n in 0..policy.max_retries {
            let envelope = policy.base * 2u32.pow(n);
            let d = b.next_delay().expect("within retry budget");
            assert!(
                d >= envelope / 2 && d <= envelope,
                "attempt {n}: {d:?} outside [{:?}, {envelope:?}]",
                envelope / 2
            );
        }
        assert_eq!(b.next_delay(), None, "retry budget must be finite");
    }

    #[test]
    fn cap_bounds_every_delay() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(250),
            max_retries: 10,
        };
        let mut b = Backoff::new(policy, 99);
        while let Some(d) = b.next_delay() {
            assert!(d <= policy.cap);
        }
    }
}
