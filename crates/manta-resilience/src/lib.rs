//! # manta-resilience
//!
//! Robustness primitives for the Manta pipeline: cooperative execution
//! budgets, panic isolation, graceful sensitivity degradation, and a
//! deterministic fault-injection harness.
//!
//! The pipeline's failure policy is *partial results over no results*:
//!
//! * **Budgets** ([`Budget`], [`BudgetSpec`]) bound the fixpoint loops
//!   in `manta-analysis` and the sensitivity cascade in `manta`. A blown
//!   budget does not abort the run — the engine keeps the last completed
//!   sensitivity tier and tags the result with a [`Degradation`].
//! * **Isolation** ([`isolate`]) catches panics at the per-project
//!   boundary (`manta-eval`) and the per-function boundary (refinement
//!   passes), converting crashes into structured [`MantaError`]s so one
//!   bad input cannot take down a suite.
//! * **Fault injection** ([`FaultPlan`], [`fault_point`]) deterministically
//!   fires panics or budget exhaustion at named pipeline sites, letting
//!   tests prove every degradation path yields usable output.
//!
//! Every event reports through `manta-telemetry`:
//! `resilience.degradations`, `resilience.panics_caught`,
//! `resilience.budget_exhausted`, `resilience.faults_fired`.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod backoff;
mod budget;
mod error;
mod fault;
mod isolate;

pub use backoff::{Backoff, BackoffPolicy};
pub use budget::{Budget, BudgetExceeded, BudgetKind, BudgetSpec, DEADLINE_PERIOD};
pub use error::{Degradation, DegradationKind, MantaError, StageName};
pub use fault::{
    fault_point, fault_point_keyed, plan_active, take_pending_exhaustion, Fault, FaultArming,
    FaultGuard, FaultPlan, INJECTED_PANIC,
};
pub use isolate::{isolate, panic_message};

/// The telemetry counters this crate maintains.
pub(crate) mod counters {
    use manta_telemetry::Counter;

    /// Bumped by [`crate::Degradation::record`].
    pub static DEGRADATIONS: Counter = Counter::new("resilience.degradations");
    /// Bumped by [`crate::isolate`] when it catches a panic.
    pub static PANICS_CAUGHT: Counter = Counter::new("resilience.panics_caught");
    /// Bumped by [`crate::budget_exhausted`] when a budget trips a stage.
    pub static BUDGET_EXHAUSTED: Counter = Counter::new("resilience.budget_exhausted");
    /// Bumped each time an armed fault-injection site fires.
    pub static FAULTS_FIRED: Counter = Counter::new("resilience.faults_fired");
}

/// Reports one budget-exhaustion event on `stage` to telemetry. Stage
/// code calls this exactly once per tripped budget, at the point where
/// it decides to degrade or propagate.
pub fn budget_exhausted(stage: &str) {
    counters::BUDGET_EXHAUSTED.incr();
    manta_telemetry::counter(&format!("resilience.budget_exhausted.{stage}"), 1);
}

/// A fault-injection site that owns a budget: fires `site` and, if an
/// [`Fault::ExhaustBudget`] fault landed, poisons `budget` so its next
/// tick fails with [`BudgetKind::Injected`].
///
/// # Panics
///
/// Panics when `site` is armed with [`Fault::Panic`] (by design — the
/// enclosing isolation boundary catches it).
pub fn fault_point_budgeted(site: &str, budget: &Budget) {
    fault_point(site);
    if take_pending_exhaustion() {
        budget.exhaust();
    }
}

/// Serializes tests that touch the process-global fault plan or
/// telemetry collector.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_point_budgeted_poisons_the_budget() {
        let _l = crate::test_lock();
        let _guard = FaultPlan::new()
            .arm("lib.site", Fault::ExhaustBudget, FaultArming::Always)
            .install();
        let b = Budget::unlimited();
        b.tick().unwrap();
        fault_point_budgeted("lib.site", &b);
        assert_eq!(b.tick().unwrap_err().kind, BudgetKind::Injected);
    }

    #[test]
    fn budget_exhausted_bumps_both_counters() {
        let _l = crate::test_lock();
        manta_telemetry::set_enabled(true);
        manta_telemetry::reset();
        budget_exhausted("infer.fs");
        let report = manta_telemetry::report();
        manta_telemetry::set_enabled(false);
        assert!(report.counters.get("resilience.budget_exhausted").copied() >= Some(1));
        assert!(report
            .counters
            .contains_key("resilience.budget_exhausted.infer.fs"));
    }
}
