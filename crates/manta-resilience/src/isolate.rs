//! Panic isolation boundaries.
//!
//! [`isolate`] runs a closure under `catch_unwind`, converting a panic
//! into a structured [`MantaError::Panic`] and bumping the
//! `resilience.panics_caught` counter. While any isolated closure is on
//! the stack, the default panic hook is suppressed (panics are expected
//! and handled — they should not spew backtraces into eval output); a
//! re-entrancy counter keeps nested boundaries and parallel worker
//! threads correct.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::error::MantaError;

/// Number of isolated closures currently on some thread's stack.
static SUPPRESSED: AtomicUsize = AtomicUsize::new(0);
static HOOK_INSTALLED: OnceLock<()> = OnceLock::new();

fn install_hook() {
    HOOK_INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESSED.load(Ordering::SeqCst) == 0 {
                previous(info);
            }
        }));
    });
}

struct SuppressGuard;

impl SuppressGuard {
    fn new() -> SuppressGuard {
        install_hook();
        SUPPRESSED.fetch_add(1, Ordering::SeqCst);
        SuppressGuard
    }
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESSED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Extracts a human-readable message from a panic payload.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting a panic into [`MantaError::Panic`] attributed to
/// `stage`.
///
/// The closure is wrapped in `AssertUnwindSafe`: Manta's stage
/// boundaries either hand the closure exclusive data (per-project
/// builds) or discard partially-updated state on error (per-tier
/// refinement applies updates only after a full pass), so observing
/// broken invariants after a caught panic is not possible by
/// construction at these call sites.
///
/// # Errors
///
/// Returns [`MantaError::Panic`] when `f` panicked.
pub fn isolate<T>(stage: &str, f: impl FnOnce() -> T) -> Result<T, MantaError> {
    let _suppress = SuppressGuard::new();
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            crate::counters::PANICS_CAUGHT.incr();
            Err(MantaError::Panic {
                stage: stage.to_string(),
                message: panic_message(payload.as_ref()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_path_passes_value_through() {
        assert_eq!(isolate("t", || 41 + 1).unwrap(), 42);
    }

    #[test]
    fn panic_becomes_structured_error() {
        let err = isolate("infer.cs", || -> u32 { panic!("boom {}", 7) }).unwrap_err();
        match err {
            MantaError::Panic { stage, message } => {
                assert_eq!(stage, "infer.cs");
                assert!(message.contains("boom 7"), "{message}");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn nested_isolation_unwinds_to_the_inner_boundary() {
        let outer = isolate("outer", || {
            let inner = isolate("inner", || -> u32 { panic!("deep") });
            assert!(inner.is_err());
            7u32
        });
        assert_eq!(outer.unwrap(), 7);
    }

    #[test]
    fn str_and_string_payloads_are_extracted() {
        let e1 = isolate("t", || panic!("literal")).unwrap_err();
        let e2 = isolate("t", || panic!("formatted {}", 1)).unwrap_err();
        let m = |e: MantaError| match e {
            MantaError::Panic { message, .. } => message,
            _ => unreachable!(),
        };
        assert_eq!(m(e1), "literal");
        assert_eq!(m(e2), "formatted 1");
    }
}
