//! Deterministic fault injection.
//!
//! A [`FaultPlan`] maps *site names* — stable strings compiled into the
//! pipeline next to each isolation boundary or budget loop — to faults.
//! Production code calls [`fault_point`] (or [`fault_point_keyed`] for
//! per-item sites like `"eval.project:redis"`); when no plan is armed
//! this is one relaxed atomic load. Tests arm a plan with
//! [`FaultPlan::install`], which returns a guard that disarms on drop.
//!
//! Faults are deliberately simple: [`Fault::Panic`] panics at the site
//! (exercising every `catch_unwind` boundary above it) and
//! [`Fault::ExhaustBudget`] poisons the active budget via a thread-local
//! hook so the next cooperative tick fails (exercising the degradation
//! paths). Malformed-IR mutation is handled by the property tests in
//! `manta-tests`, which corrupt printed IR directly — the plan only
//! needs to cover the in-process sites.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What to do when an armed site is hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Panic at the site with a recognizable payload.
    Panic,
    /// Exhaust the thread's active [`crate::Budget`] so its next tick
    /// fails with [`crate::BudgetKind::Injected`].
    ExhaustBudget,
}

/// How often an armed site fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultArming {
    /// Fire on every hit.
    Always,
    /// Fire on the `n`-th hit only (0-based), pass through otherwise.
    OnHit(u64),
}

#[derive(Debug)]
struct ArmedSite {
    fault: Fault,
    arming: FaultArming,
    hits: u64,
    fired: u64,
}

/// A deterministic plan mapping site names to faults.
///
/// Build one with [`FaultPlan::new`] + [`FaultPlan::arm`], then
/// [`install`](FaultPlan::install) it. Determinism comes from the caller:
/// tests derive site choices and hit indices from the in-tree seeded RNG,
/// so a failing seed replays exactly.
#[derive(Debug, Default)]
pub struct FaultPlan {
    sites: HashMap<String, ArmedSite>,
}

impl FaultPlan {
    /// An empty plan (no sites armed).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms `site` with `fault`, firing per `arming`.
    #[must_use]
    pub fn arm(mut self, site: impl Into<String>, fault: Fault, arming: FaultArming) -> Self {
        self.sites.insert(
            site.into(),
            ArmedSite {
                fault,
                arming,
                hits: 0,
                fired: 0,
            },
        );
        self
    }

    /// Installs the plan globally. The returned guard disarms the plan
    /// when dropped. Only one plan can be active at a time; installing a
    /// second replaces the first.
    #[must_use]
    pub fn install(self) -> FaultGuard {
        let mut slot = lock_plan();
        *slot = Some(self);
        ACTIVE.store(true, Ordering::SeqCst);
        FaultGuard { _priv: () }
    }
}

/// RAII guard from [`FaultPlan::install`]; disarms on drop.
#[derive(Debug)]
pub struct FaultGuard {
    _priv: (),
}

impl FaultGuard {
    /// How many times `site` actually fired under this plan.
    #[must_use]
    pub fn fired(&self, site: &str) -> u64 {
        lock_plan()
            .as_ref()
            .and_then(|p| p.sites.get(site))
            .map_or(0, |s| s.fired)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *lock_plan() = None;
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

fn lock_plan() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    PLAN.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Payload marker for injected panics, so isolation boundaries can label
/// them distinctly from organic crashes.
pub const INJECTED_PANIC: &str = "manta-resilience: injected panic";

thread_local! {
    /// Set by [`fault_point`] when an `ExhaustBudget` fault fires with no
    /// budget registered on this thread; drained by
    /// [`take_pending_exhaustion`].
    static PENDING_EXHAUST: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Checks (and clears) whether an `ExhaustBudget` fault fired on this
/// thread since the last call. Budget-owning loops call this right after
/// minting a budget so an injected exhaustion lands on the budget about
/// to be used.
pub fn take_pending_exhaustion() -> bool {
    PENDING_EXHAUST.with(|c| c.replace(false))
}

/// Whether a fault-injection plan is currently installed. Cache layers
/// consult this to bypass persistent stores during fault-injection
/// tests: results computed under injected faults must never be
/// persisted (they would poison later clean runs), nor should a clean
/// cached result mask the fault being exercised.
#[inline]
#[must_use]
pub fn plan_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// A fault-injection site. Returns normally (the common case: no plan
/// armed, or this site not armed / not yet at its firing hit).
///
/// # Panics
///
/// Panics with [`INJECTED_PANIC`] when the armed fault is
/// [`Fault::Panic`].
#[inline]
pub fn fault_point(site: &str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    fault_point_slow(site);
}

/// [`fault_point`] for per-item sites: checks `"{prefix}:{key}"` without
/// allocating when no plan is armed.
#[inline]
pub fn fault_point_keyed(prefix: &str, key: &str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    fault_point_slow(&format!("{prefix}:{key}"));
}

#[cold]
fn fault_point_slow(site: &str) {
    let fault = {
        let mut slot = lock_plan();
        let Some(plan) = slot.as_mut() else { return };
        let Some(armed) = plan.sites.get_mut(site) else {
            return;
        };
        let hit = armed.hits;
        armed.hits += 1;
        let fire = match armed.arming {
            FaultArming::Always => true,
            FaultArming::OnHit(n) => hit == n,
        };
        if !fire {
            return;
        }
        armed.fired += 1;
        armed.fault
    };
    match fault {
        Fault::Panic => {
            crate::counters::FAULTS_FIRED.incr();
            panic!("{INJECTED_PANIC} at {site}");
        }
        Fault::ExhaustBudget => {
            crate::counters::FAULTS_FIRED.incr();
            PENDING_EXHAUST.with(|c| c.set(true));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_is_a_no_op() {
        let _l = crate::test_lock();
        fault_point("nothing.armed");
        let _guard = FaultPlan::new()
            .arm("other.site", Fault::Panic, FaultArming::Always)
            .install();
        fault_point("nothing.armed");
    }

    #[test]
    fn panic_fault_fires_with_marker() {
        let _l = crate::test_lock();
        let guard = FaultPlan::new()
            .arm("t.site", Fault::Panic, FaultArming::Always)
            .install();
        let r = std::panic::catch_unwind(|| fault_point("t.site"));
        let payload = r.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains(INJECTED_PANIC), "payload: {msg}");
        assert_eq!(guard.fired("t.site"), 1);
    }

    #[test]
    fn on_hit_fires_once_at_the_chosen_hit() {
        let _l = crate::test_lock();
        let guard = FaultPlan::new()
            .arm("t.nth", Fault::ExhaustBudget, FaultArming::OnHit(2))
            .install();
        for _ in 0..5 {
            fault_point("t.nth");
        }
        assert_eq!(guard.fired("t.nth"), 1);
        assert!(take_pending_exhaustion());
        assert!(!take_pending_exhaustion(), "flag must clear");
    }

    #[test]
    fn keyed_sites_select_one_item() {
        let _l = crate::test_lock();
        let guard = FaultPlan::new()
            .arm(
                "eval.project:redis",
                Fault::ExhaustBudget,
                FaultArming::Always,
            )
            .install();
        fault_point_keyed("eval.project", "vsftpd");
        assert!(!take_pending_exhaustion());
        fault_point_keyed("eval.project", "redis");
        assert!(take_pending_exhaustion());
        assert_eq!(guard.fired("eval.project:redis"), 1);
    }

    #[test]
    fn guard_drop_disarms() {
        let _l = crate::test_lock();
        {
            let _guard = FaultPlan::new()
                .arm("t.drop", Fault::ExhaustBudget, FaultArming::Always)
                .install();
            fault_point("t.drop");
            assert!(take_pending_exhaustion());
        }
        fault_point("t.drop");
        assert!(!take_pending_exhaustion());
    }
}
