//! Structured pipeline errors and degradation records.

use std::fmt;

use crate::budget::BudgetKind;

/// Names the pipeline stage an error or degradation is attributed to.
///
/// Stored as a plain string so downstream crates can mint stage names
/// without this crate depending on them ("analysis.pointsto",
/// "infer.cs", "eval.project:redis", ...).
pub type StageName = &'static str;

/// A structured error from any pipeline stage: the crash-free
/// replacement for `unwrap`/`expect`/propagated panics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MantaError {
    /// IR text failed to parse.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// 1-based column, or 0 when unknown.
        col: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// A module failed structural verification.
    Verify {
        /// Verifier diagnostic.
        message: String,
    },
    /// A stage panicked and the panic was caught at an isolation
    /// boundary.
    Panic {
        /// The isolation boundary that caught the panic.
        stage: String,
        /// Payload of the panic, when it was a string.
        message: String,
    },
    /// A stage ran out of budget and the caller asked for strict
    /// (non-degrading) behavior.
    Budget {
        /// The stage that exhausted its budget.
        stage: String,
        /// Which limit tripped.
        kind: BudgetKind,
    },
}

impl fmt::Display for MantaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MantaError::Parse { line, col, message } => {
                if *col > 0 {
                    write!(f, "parse error at line {line}, col {col}: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            MantaError::Verify { message } => write!(f, "verify error: {message}"),
            MantaError::Panic { stage, message } => {
                write!(f, "panic in {stage}: {message}")
            }
            MantaError::Budget { stage, kind } => {
                write!(f, "budget exceeded in {stage} ({kind})")
            }
        }
    }
}

impl std::error::Error for MantaError {}

/// Why a run degraded instead of completing at full sensitivity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradationKind {
    /// Fuel ran out.
    BudgetFuel,
    /// Wall-clock deadline passed.
    BudgetDeadline,
    /// A panic was caught and the affected unit skipped.
    Panic,
    /// A fault-injection site fired.
    InjectedFault,
    /// A persistent-store file was corrupt or version-mismatched; the
    /// entry was discarded and the result recomputed from scratch.
    StoreCorruption,
}

impl DegradationKind {
    /// Maps a tripped budget limit to the matching degradation kind.
    #[must_use]
    pub fn from_budget(kind: BudgetKind) -> Self {
        match kind {
            BudgetKind::Fuel => DegradationKind::BudgetFuel,
            BudgetKind::Deadline => DegradationKind::BudgetDeadline,
            BudgetKind::Injected => DegradationKind::InjectedFault,
        }
    }

    /// Classifies a stage failure: budget errors map through
    /// [`DegradationKind::from_budget`], caught panics carrying the
    /// fault-injection marker are attributed to the injection, and
    /// everything else counts as a plain panic.
    #[must_use]
    pub fn from_error(e: &MantaError) -> Self {
        match e {
            MantaError::Budget { kind, .. } => DegradationKind::from_budget(*kind),
            MantaError::Panic { message, .. } if message.contains(crate::fault::INJECTED_PANIC) => {
                DegradationKind::InjectedFault
            }
            _ => DegradationKind::Panic,
        }
    }
}

impl fmt::Display for DegradationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationKind::BudgetFuel => write!(f, "budget-fuel"),
            DegradationKind::BudgetDeadline => write!(f, "budget-deadline"),
            DegradationKind::Panic => write!(f, "panic"),
            DegradationKind::InjectedFault => write!(f, "injected-fault"),
            DegradationKind::StoreCorruption => write!(f, "store-corruption"),
        }
    }
}

/// Record of one graceful-degradation event: a stage that could not run
/// to completion, and what the pipeline fell back to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Degradation {
    /// The stage that was cut short (e.g. "infer.cs").
    pub stage: String,
    /// What the results actually reflect after the fallback (e.g.
    /// "flow-insensitive" when the context-sensitive pass degraded).
    pub completed: String,
    /// Why the stage degraded.
    pub kind: DegradationKind,
    /// Free-form detail (panic payload, affected function, ...).
    pub detail: String,
}

impl Degradation {
    /// Builds a record and bumps the global `resilience.degradations`
    /// counter plus the per-stage `resilience.degradations.<stage>` one.
    #[must_use]
    pub fn record(
        stage: impl Into<String>,
        completed: impl Into<String>,
        kind: DegradationKind,
        detail: impl Into<String>,
    ) -> Self {
        let stage = stage.into();
        crate::counters::DEGRADATIONS.add(1);
        manta_telemetry::counter(&format!("resilience.degradations.{stage}"), 1);
        Degradation {
            stage,
            completed: completed.into(),
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded at {} ({}): kept {}",
            self.stage, self.kind, self.completed
        )?;
        if !self.detail.is_empty() {
            write!(f, " [{}]", self.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_formats() {
        let e = MantaError::Parse {
            line: 3,
            col: 7,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3, col 7: bad token");
        let e = MantaError::Parse {
            line: 3,
            col: 0,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e = MantaError::Budget {
            stage: "infer.fs".into(),
            kind: BudgetKind::Deadline,
        };
        assert_eq!(e.to_string(), "budget exceeded in infer.fs (deadline)");
    }

    #[test]
    fn degradation_counts_and_formats() {
        let _l = crate::test_lock();
        manta_telemetry::set_enabled(true);
        manta_telemetry::reset();
        let d = Degradation::record(
            "infer.cs",
            "flow-insensitive",
            DegradationKind::BudgetFuel,
            "fuel=0",
        );
        assert_eq!(
            d.to_string(),
            "degraded at infer.cs (budget-fuel): kept flow-insensitive [fuel=0]"
        );
        let report = manta_telemetry::report();
        manta_telemetry::set_enabled(false);
        assert!(
            report.counters.get("resilience.degradations").copied() == Some(1),
            "degradations counter must be bumped: {:?}",
            report.counters
        );
    }

    #[test]
    fn budget_kind_mapping() {
        assert_eq!(
            DegradationKind::from_budget(BudgetKind::Fuel),
            DegradationKind::BudgetFuel
        );
        assert_eq!(
            DegradationKind::from_budget(BudgetKind::Deadline),
            DegradationKind::BudgetDeadline
        );
        assert_eq!(
            DegradationKind::from_budget(BudgetKind::Injected),
            DegradationKind::InjectedFault
        );
    }
}
