//! Phenomenon rates controlling workload generation.

/// Per-parameter archetype weights plus function-level phenomenon rates.
///
/// The archetype weights need not sum to one; they are normalized at
/// sampling time. Each archetype corresponds to a distinct inference
/// outcome profile (see `DESIGN.md` §4 and the crate docs):
///
/// | archetype | FI | FS | FI+FS | FI+CS+FS |
/// |---|---|---|---|---|
/// | `local_reveal` | precise | precise | precise | precise |
/// | `interproc_reveal` | precise | unknown | precise | precise |
/// | `poly_shared` | over | unknown | *lost* | precise |
/// | `branch_cast` | over | over | precise | precise |
/// | `unmodeled` | unknown | unknown | unknown | unknown |
/// | `wrong_int` | wrong | unknown | wrong | wrong |
/// | `callsite_cast` | over | unknown | wrong | wrong |
/// | `numeric_abstract` | abstract | abstract | abstract | abstract |
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PhenomenonMix {
    /// Parameter revealed by a modeled external call in its own function.
    pub local_reveal: f64,
    /// Parameter revealed only through interprocedural unification
    /// (passed to a callee that reveals it), with consistent contexts.
    pub interproc_reveal: f64,
    /// Parameter revealed in a callee *and* polluted through a shared
    /// polymorphic helper called from a conflicting context.
    pub poly_shared: f64,
    /// Parameter used under conflicting types on opposite branches; its
    /// def-site (caller-side) type is unambiguous.
    pub branch_cast: f64,
    /// Parameter only ever passed to unmodeled vendor externals.
    pub unmodeled: f64,
    /// Pointer parameter whose only hint is a comparison against `-1`
    /// (inferred *incorrectly* as an integer — the §6.4 recall loss).
    pub wrong_int: f64,
    /// Pointer parameter whose caller-side argument is built from an
    /// integer cast right at the call site (flow-sensitive refinement
    /// picks the wrong hint).
    pub callsite_cast: f64,
    /// Integer parameter whose only hints are abstract arithmetic
    /// (`num<w>`), never a concrete reveal.
    pub numeric_abstract: f64,
    /// Fraction of functions containing a Figure-3-style union slot.
    pub union_rate: f64,
    /// Fraction of functions containing a recycled stack slot.
    pub stack_recycle_rate: f64,
    /// Fraction of functions containing an indirect call.
    pub icall_rate: f64,
    /// Fraction of functions containing a bounded loop.
    pub loop_rate: f64,
    /// Fraction of pointer parameters that are structure pointers
    /// (`ptr(obj)`) rather than string pointers.
    pub struct_ptr_rate: f64,
}

impl PhenomenonMix {
    /// The default mix, calibrated so the aggregate Table 3 row shapes
    /// match the paper (see `EXPERIMENTS.md`).
    pub fn balanced() -> PhenomenonMix {
        PhenomenonMix {
            local_reveal: 0.12,
            interproc_reveal: 0.14,
            poly_shared: 0.26,
            branch_cast: 0.17,
            unmodeled: 0.15,
            wrong_int: 0.012,
            callsite_cast: 0.015,
            numeric_abstract: 0.022,
            union_rate: 0.25,
            stack_recycle_rate: 0.15,
            icall_rate: 0.20,
            loop_rate: 0.15,
            struct_ptr_rate: 0.35,
        }
    }

    /// Archetype weights in a fixed order for sampling.
    pub(crate) fn archetype_weights(&self) -> [(Archetype, f64); 8] {
        [
            (Archetype::LocalReveal, self.local_reveal),
            (Archetype::InterprocReveal, self.interproc_reveal),
            (Archetype::PolyShared, self.poly_shared),
            (Archetype::BranchCast, self.branch_cast),
            (Archetype::Unmodeled, self.unmodeled),
            (Archetype::WrongInt, self.wrong_int),
            (Archetype::CallsiteCast, self.callsite_cast),
            (Archetype::NumericAbstract, self.numeric_abstract),
        ]
    }
}

impl Default for PhenomenonMix {
    fn default() -> Self {
        Self::balanced()
    }
}

/// Parameter archetypes (crate-internal).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Archetype {
    LocalReveal,
    InterprocReveal,
    PolyShared,
    BranchCast,
    Unmodeled,
    WrongInt,
    CallsiteCast,
    NumericAbstract,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_weights_are_positive_and_normalizable() {
        let m = PhenomenonMix::balanced();
        let total: f64 = m.archetype_weights().iter().map(|(_, w)| w).sum();
        assert!(
            total > 0.8 && total < 1.2,
            "weights should roughly sum to 1, got {total}"
        );
        for (a, w) in m.archetype_weights() {
            assert!(w >= 0.0, "{a:?} weight negative");
        }
    }
}
