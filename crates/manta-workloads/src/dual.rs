//! Dual-encoding emission: one typed spec, two machine encodings.
//!
//! The generator produces stripped [`manta_ir::Module`]s directly. This
//! module *lowers* such a module to machine code for **both** frontends —
//! SB-ISA (`manta-isa`) and the x86-64 subset (`manta-x86`) — from a single
//! shared register-allocation and layout decision sequence, so that lifting
//! either image reconstructs the *same* IR, instruction for instruction and
//! value for value. That is the property the differential frontend tests
//! pin: identical lifted IR makes the (deterministic) inference engine
//! produce bit-identical types from either encoding.
//!
//! The lowering is a classic linear-scan pipeline shared between backends:
//!
//! 1. **Fusion analysis.** `gep`s whose every use is a memory-access
//!    address fold into load/store displacements; the `cmp` feeding each
//!    `condbr` fuses into the branch (SB `cmp.Q` + `brz`, x86 `cmp` +
//!    `jcc`). Standalone compares are outside both subsets and rejected.
//! 2. **Liveness + linear scan.** Values are assigned *abstract* locations:
//!    one of five callee-saved homes, or a spill slot. The abstract
//!    assignment is target-independent; each backend maps homes to its own
//!    registers (SB `r8..r12`, x86 `rbx/r12..r15`) and spill slots to its
//!    own frame (SB a `salloc`'d area addressed off `r7`, x86 direct
//!    `[rbp-off]` accesses below the `lea`-rooted slots — exactly the
//!    layout the x86 lifter re-derives as its *residual* alloca).
//! 3. **Emission.** Block layout, copy placement, staging through the two
//!    scratch registers and immediate materialization are decided once by
//!    the driver; the [`Backend`] trait renders each decision as SB-ISA or
//!    x86 instructions with identical lifted-IR shape.
//!
//! Frame-layout parity is the delicate part: IR allocas become SB `salloc`s
//! in program order and x86 `lea`-rooted slots laid out so the j-th alloca
//! sits at `-(size_j + size_{j+1} + …)` — the x86 lifter's gap-sizing then
//! recovers each slot with its exact source size. Spill slot `i` lives at
//! SB `[r7 + 8i]` and x86 `[rbp - (S + 8(n-i))]`, which both lift to
//! `gep(residual, 8i)`.

use std::collections::{HashMap, HashSet};
use std::fmt;

use manta_ir::{
    BinOp, BlockId, Callee, CmpPred, ConstKind, Function, InstId, InstKind, Module, Terminator,
    ValueId, ValueKind, Width,
};
use manta_isa::image as sb_image;
use manta_isa::inst::{MachInst, Reg};
use manta_x86::{Alu, Cc, Gpr, ImageBuilder, Inst as XInst, Mem, OpWidth, Rm, Shift, SymInst};

/// Lowering failure: the module uses a construct outside the common
/// machine subset (e.g. `div`, a standalone `cmp`, a float constant).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmitError {
    /// Description.
    pub message: String,
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "emit error: {}", self.message)
    }
}

impl std::error::Error for EmitError {}

fn err<T>(message: impl Into<String>) -> Result<T, EmitError> {
    Err(EmitError {
        message: message.into(),
    })
}

/// Both machine encodings of one module.
#[derive(Debug)]
pub struct DualEncoding {
    /// The SB-ISA image.
    pub sb: sb_image::Image,
    /// The x86-64-subset (XLF) image.
    pub x86: manta_x86::Image,
}

impl DualEncoding {
    /// Serialized SBF container bytes.
    pub fn sb_bytes(&self) -> Vec<u8> {
        sb_image::encode(&self.sb)
    }

    /// Serialized XLF container bytes.
    pub fn x86_bytes(&self) -> Vec<u8> {
        manta_x86::encode_image(&self.x86)
    }
}

// ---------------------------------------------------------------------------
// Abstract machine model shared by both backends.
// ---------------------------------------------------------------------------

/// Number of allocatable home registers (the backends' common minimum).
const N_HOMES: u8 = 5;

/// An abstract register, mapped per-backend to a physical one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AReg {
    /// Callee-saved home `0..N_HOMES`.
    Home(u8),
    /// Primary scratch (address staging, sunk results).
    S0,
    /// Secondary scratch (operand staging, copy-cycle buffer).
    S1,
    /// Argument register `0..6` in ABI order.
    Arg(u8),
    /// Return-value register.
    Ret,
}

/// Where a value lives between its definition and last use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    Home(u8),
    Spill(u32),
}

/// The right operand of a fused compare.
#[derive(Clone, Copy)]
enum CondRhs {
    Reg(AReg),
    Imm(i64),
}

/// Per-function frame layout, decided by the driver.
#[derive(Clone, Debug, Default)]
struct FrameInfo {
    /// IR alloca sizes in program order.
    alloca_sizes: Vec<u64>,
    /// Spill-slot count.
    n_spills: u32,
}

impl FrameInfo {
    fn total(&self) -> u64 {
        self.alloca_sizes.iter().sum::<u64>() + 8 * u64::from(self.n_spills)
    }
}

/// One backend's instruction selection. Every method renders exactly the
/// IR shape documented on it, so the two implementations stay lift-parallel.
trait Backend {
    fn begin_function(&mut self, frame: &FrameInfo);
    /// Binds `b`'s label to the next instruction.
    fn label(&mut self, b: BlockId);
    /// Register move; lifts to `copy`.
    fn copy(&mut self, dst: AReg, src: AReg);
    /// Immediate materialization; lifts to a bound constant (no inst).
    fn imm(&mut self, dst: AReg, v: i64);
    /// Memory read; lifts to `[gep +] load.<w>`.
    fn load(&mut self, w: Width, dst: AReg, base: AReg, off: u32);
    /// 64-bit memory write; lifts to `[gep +] store`.
    fn store(&mut self, base: AReg, off: u32, src: AReg);
    /// Read of spill slot `slot`; lifts to `[gep +] load.w64` off the
    /// residual alloca.
    fn spill_load(&mut self, dst: AReg, slot: u32);
    /// Write of spill slot `slot`; lifts to `[gep +] store`.
    fn spill_store(&mut self, slot: u32, src: AReg);
    /// Materializes IR alloca `index`; lifts to `alloca`.
    fn alloca(&mut self, dst: AReg, index: usize);
    /// Two-address `dst = dst op src`; lifts to `binop`.
    fn binop(&mut self, op: BinOp, dst: AReg, src: AReg);
    /// `dst = dst op imm`; lifts to a bound constant + `binop`.
    fn binop_imm(&mut self, op: BinOp, dst: AReg, imm: i64);
    /// In-place sign extension of the low `bits` of `dst`; lifts to the
    /// shift-up/shift-down pair (two bound constants + two `binop`s).
    /// x86 renders this as a single `movsx`; SB as two shift ops.
    fn sext(&mut self, dst: AReg, bits: u8);
    /// Global address; lifts to a bound `global` value (no inst).
    fn lea_global(&mut self, dst: AReg, index: u32, name: &str);
    /// Function address; lifts to a bound `func` value (no inst).
    fn lea_func(&mut self, dst: AReg, index: u32, name: &str);
    fn call_direct(&mut self, index: u32, name: &str, nargs: u8);
    fn call_extern(&mut self, index: u32, name: &str, nargs: u8);
    fn call_indirect(&mut self, fp: AReg, nargs: u8);
    /// Fused compare-and-branch; lifts to `cmp.<pred>` + `condbr` whose
    /// then-edge is the following `jmp then_bb` trampoline.
    fn cond_branch(
        &mut self,
        pred: CmpPred,
        lhs: AReg,
        rhs: CondRhs,
        else_bb: BlockId,
        then_bb: BlockId,
    );
    fn jmp(&mut self, target: BlockId);
    fn ret(&mut self);
    fn end_function(&mut self, name: &str, nparams: u8, has_ret: bool);
}

// ---------------------------------------------------------------------------
// SB-ISA backend.
// ---------------------------------------------------------------------------

/// Register plan: `r0` return, `r1..r6` args, `r7` spill base, `r8..r12`
/// homes, `r13`/`r14` scratch, `r15` immediate staging.
fn sb_reg(a: AReg) -> Reg {
    match a {
        AReg::Ret => Reg::RET,
        AReg::Arg(i) => Reg::arg(i as usize),
        AReg::Home(h) => Reg(8 + h),
        AReg::S0 => Reg(13),
        AReg::S1 => Reg(14),
    }
}

const SB_IMM: Reg = Reg(15);
const SB_SPILL_BASE: Reg = Reg(7);

struct SbBackend {
    image: sb_image::Image,
    code: Vec<MachInst>,
    labels: HashMap<BlockId, u32>,
    fixups: Vec<(usize, BlockId)>,
    frame: FrameInfo,
}

impl SbBackend {
    fn new(name: &str) -> SbBackend {
        SbBackend {
            image: sb_image::Image {
                name: name.to_string(),
                ..Default::default()
            },
            code: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            frame: FrameInfo::default(),
        }
    }
}

impl Backend for SbBackend {
    fn begin_function(&mut self, frame: &FrameInfo) {
        self.code.clear();
        self.labels.clear();
        self.fixups.clear();
        self.frame = frame.clone();
        if frame.n_spills > 0 {
            // The spill area is the first instruction, where the x86
            // lifter emits its residual alloca.
            self.code.push(MachInst::Salloc {
                rd: SB_SPILL_BASE,
                size: 8 * frame.n_spills,
            });
        }
    }

    fn label(&mut self, b: BlockId) {
        self.labels.insert(b, self.code.len() as u32);
    }

    fn copy(&mut self, dst: AReg, src: AReg) {
        self.code.push(MachInst::Mov {
            rd: sb_reg(dst),
            rs: sb_reg(src),
        });
    }

    fn imm(&mut self, dst: AReg, v: i64) {
        self.code.push(MachInst::MovImm {
            rd: sb_reg(dst),
            imm: v,
        });
    }

    fn load(&mut self, w: Width, dst: AReg, base: AReg, off: u32) {
        self.code.push(MachInst::Load {
            width: w,
            rd: sb_reg(dst),
            rs: sb_reg(base),
            off,
        });
    }

    fn store(&mut self, base: AReg, off: u32, src: AReg) {
        self.code.push(MachInst::Store {
            width: Width::W64,
            rd: sb_reg(base),
            off,
            rs: sb_reg(src),
        });
    }

    fn spill_load(&mut self, dst: AReg, slot: u32) {
        self.code.push(MachInst::Load {
            width: Width::W64,
            rd: sb_reg(dst),
            rs: SB_SPILL_BASE,
            off: 8 * slot,
        });
    }

    fn spill_store(&mut self, slot: u32, src: AReg) {
        self.code.push(MachInst::Store {
            width: Width::W64,
            rd: SB_SPILL_BASE,
            off: 8 * slot,
            rs: sb_reg(src),
        });
    }

    fn alloca(&mut self, dst: AReg, index: usize) {
        self.code.push(MachInst::Salloc {
            rd: sb_reg(dst),
            size: self.frame.alloca_sizes[index] as u32,
        });
    }

    fn binop(&mut self, op: BinOp, dst: AReg, src: AReg) {
        self.code.push(MachInst::Bin {
            op,
            rd: sb_reg(dst),
            rs: sb_reg(dst),
            rt: sb_reg(src),
        });
    }

    fn binop_imm(&mut self, op: BinOp, dst: AReg, imm: i64) {
        self.code.push(MachInst::MovImm { rd: SB_IMM, imm });
        self.code.push(MachInst::Bin {
            op,
            rd: sb_reg(dst),
            rs: sb_reg(dst),
            rt: SB_IMM,
        });
    }

    fn sext(&mut self, dst: AReg, bits: u8) {
        // No sign-extending move in SB-ISA: stage the canonical
        // shift-up/shift-down pair, which lifts exactly like the x86
        // side's `movsx`.
        self.binop_imm(BinOp::Shl, dst, i64::from(64 - bits));
        self.binop_imm(BinOp::Shr, dst, i64::from(64 - bits));
    }

    fn lea_global(&mut self, dst: AReg, index: u32, _name: &str) {
        self.code.push(MachInst::LeaGlobal {
            rd: sb_reg(dst),
            index,
        });
    }

    fn lea_func(&mut self, dst: AReg, index: u32, _name: &str) {
        self.code.push(MachInst::LeaFunc {
            rd: sb_reg(dst),
            index,
        });
    }

    fn call_direct(&mut self, index: u32, _name: &str, nargs: u8) {
        self.code.push(MachInst::Call { index, nargs });
    }

    fn call_extern(&mut self, index: u32, _name: &str, nargs: u8) {
        self.code.push(MachInst::ECall { index, nargs });
    }

    fn call_indirect(&mut self, fp: AReg, nargs: u8) {
        // `ret: true` always: the x86 side cannot express "no return" (its
        // lifter conservatively assumes indirect callees return), so both
        // encodings must agree.
        self.code.push(MachInst::ICall {
            rs: sb_reg(fp),
            nargs,
            ret: true,
        });
    }

    fn cond_branch(
        &mut self,
        pred: CmpPred,
        lhs: AReg,
        rhs: CondRhs,
        else_bb: BlockId,
        then_bb: BlockId,
    ) {
        let rt = match rhs {
            CondRhs::Imm(c) => {
                self.code.push(MachInst::MovImm { rd: SB_IMM, imm: c });
                SB_IMM
            }
            CondRhs::Reg(r) => sb_reg(r),
        };
        self.code.push(MachInst::Cmp {
            pred,
            rd: sb_reg(AReg::S0),
            rs: sb_reg(lhs),
            rt,
        });
        self.fixups.push((self.code.len(), else_bb));
        self.code.push(MachInst::Brz {
            rs: sb_reg(AReg::S0),
            target: 0,
        });
        self.fixups.push((self.code.len(), then_bb));
        self.code.push(MachInst::Jmp { target: 0 });
    }

    fn jmp(&mut self, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.code.push(MachInst::Jmp { target: 0 });
    }

    fn ret(&mut self) {
        self.code.push(MachInst::Ret);
    }

    fn end_function(&mut self, name: &str, nparams: u8, has_ret: bool) {
        for &(pos, b) in &self.fixups {
            let t = self.labels[&b];
            match &mut self.code[pos] {
                MachInst::Jmp { target } | MachInst::Brz { target, .. } => *target = t,
                _ => unreachable!("fixup points at a branch"),
            }
        }
        self.image.functions.push(sb_image::ImageFunction {
            name: name.to_string(),
            nparams,
            has_ret,
            code: std::mem::take(&mut self.code),
        });
    }
}

// ---------------------------------------------------------------------------
// x86-64 backend.
// ---------------------------------------------------------------------------

/// Register plan: `rax` return, SysV args, `rbx/r12..r15` homes,
/// `r10`/`r11` scratch (`r11` doubles as immediate staging), `rbp`/`rsp`
/// reserved for the frame.
fn x_reg(a: AReg) -> Gpr {
    match a {
        AReg::Ret => Gpr::RAX,
        AReg::Arg(i) => Gpr::arg(i as usize),
        AReg::Home(h) => [Gpr::RBX, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15][h as usize],
        AReg::S0 => Gpr::R10,
        AReg::S1 => Gpr::R11,
    }
}

fn cc_for(pred: CmpPred) -> Cc {
    match pred {
        CmpPred::Eq => Cc::E,
        CmpPred::Ne => Cc::Ne,
        CmpPred::Lt => Cc::L,
        CmpPred::Le => Cc::Le,
        CmpPred::Gt => Cc::G,
        CmpPred::Ge => Cc::Ge,
    }
}

struct X86Backend {
    builder: ImageBuilder,
    body: Vec<SymInst>,
    /// Per-alloca `rbp` displacements (negative), program order.
    alloca_disp: Vec<i32>,
    /// `rbp` displacement of spill slot 0 (slot `i` is `8i` above it).
    spill_disp: i32,
    has_frame: bool,
}

impl X86Backend {
    fn new(name: &str) -> X86Backend {
        X86Backend {
            builder: ImageBuilder::new(name),
            body: Vec::new(),
            alloca_disp: Vec::new(),
            spill_disp: 0,
            has_frame: false,
        }
    }

    fn push(&mut self, inst: XInst) {
        self.body.push(SymInst::Real(inst));
    }

    fn spill_mem(&mut self, slot: u32) -> Mem {
        Mem::Base {
            base: Gpr::RBP,
            disp: self.spill_disp + 8 * slot as i32,
        }
    }
}

impl Backend for X86Backend {
    fn begin_function(&mut self, frame: &FrameInfo) {
        self.body.clear();
        let s: u64 = frame.alloca_sizes.iter().sum();
        let total = frame.total();
        // Alloca j sits at -(size_j + ... + size_last): the first alloca is
        // the deepest, so sorted lea offsets recover program order and the
        // gap to the next slot (or 0) is exactly the alloca's size.
        self.alloca_disp.clear();
        let mut below: u64 = s;
        for &sz in &frame.alloca_sizes {
            self.alloca_disp.push(-(below as i32));
            below -= sz;
        }
        // Spill slot i at -(S + 8(n-i)): slot 0 is the frame's lowest
        // address, so the lifter's residual area starts there and
        // `gep(residual, 8i)` matches SB's `[r7 + 8i]`.
        self.spill_disp = -((s + 8 * u64::from(frame.n_spills)) as i32);
        self.has_frame = total > 0;
        if self.has_frame {
            self.push(XInst::Push { reg: Gpr::RBP });
            self.push(XInst::MovRR {
                w: OpWidth::B64,
                dst: Gpr::RBP,
                src: Gpr::RSP,
            });
            self.push(XInst::AluRI {
                op: Alu::Sub,
                dst: Gpr::RSP,
                imm: total as i32,
            });
        }
    }

    fn label(&mut self, b: BlockId) {
        self.body.push(SymInst::Label(format!("b{}", b.0)));
    }

    fn copy(&mut self, dst: AReg, src: AReg) {
        self.push(XInst::MovRR {
            w: OpWidth::B64,
            dst: x_reg(dst),
            src: x_reg(src),
        });
    }

    fn imm(&mut self, dst: AReg, v: i64) {
        self.push(XInst::MovRI {
            dst: x_reg(dst),
            imm: v,
        });
    }

    fn load(&mut self, w: Width, dst: AReg, base: AReg, off: u32) {
        let mem = Mem::Base {
            base: x_reg(base),
            disp: off as i32,
        };
        match w {
            Width::W64 | Width::W32 => self.push(XInst::MovLoad {
                w: if w == Width::W64 {
                    OpWidth::B64
                } else {
                    OpWidth::B32
                },
                dst: x_reg(dst),
                mem,
            }),
            Width::W16 | Width::W8 => self.push(XInst::MovZx {
                from: if w == Width::W16 {
                    OpWidth::B16
                } else {
                    OpWidth::B8
                },
                dst: x_reg(dst),
                src: Rm::Mem(mem),
            }),
            Width::W1 => unreachable!("driver rejects W1 loads"),
        }
    }

    fn store(&mut self, base: AReg, off: u32, src: AReg) {
        self.push(XInst::MovStore {
            w: OpWidth::B64,
            mem: Mem::Base {
                base: x_reg(base),
                disp: off as i32,
            },
            src: x_reg(src),
        });
    }

    fn spill_load(&mut self, dst: AReg, slot: u32) {
        let mem = self.spill_mem(slot);
        self.push(XInst::MovLoad {
            w: OpWidth::B64,
            dst: x_reg(dst),
            mem,
        });
    }

    fn spill_store(&mut self, slot: u32, src: AReg) {
        let mem = self.spill_mem(slot);
        self.push(XInst::MovStore {
            w: OpWidth::B64,
            mem,
            src: x_reg(src),
        });
    }

    fn alloca(&mut self, dst: AReg, index: usize) {
        let disp = self.alloca_disp[index];
        self.push(XInst::Lea {
            dst: x_reg(dst),
            mem: Mem::Base {
                base: Gpr::RBP,
                disp,
            },
        });
    }

    fn binop(&mut self, op: BinOp, dst: AReg, src: AReg) {
        let alu = match op {
            BinOp::Add => Alu::Add,
            BinOp::Sub => Alu::Sub,
            BinOp::Mul => Alu::Mul,
            BinOp::And => Alu::And,
            BinOp::Or => Alu::Or,
            BinOp::Xor => Alu::Xor,
            BinOp::Div | BinOp::Rem | BinOp::Shl | BinOp::Shr => {
                unreachable!("driver stages these away from the register form")
            }
        };
        self.push(XInst::AluRR {
            op: alu,
            dst: x_reg(dst),
            src: x_reg(src),
        });
    }

    fn binop_imm(&mut self, op: BinOp, dst: AReg, imm: i64) {
        match op {
            BinOp::Shl | BinOp::Shr => self.push(XInst::ShiftRI {
                sh: if op == BinOp::Shl {
                    Shift::Shl
                } else {
                    Shift::Shr
                },
                dst: x_reg(dst),
                amt: imm as u8,
            }),
            _ => {
                if i32::try_from(imm).is_ok() {
                    let alu = match op {
                        BinOp::Add => Alu::Add,
                        BinOp::Sub => Alu::Sub,
                        BinOp::Mul => Alu::Mul,
                        BinOp::And => Alu::And,
                        BinOp::Or => Alu::Or,
                        BinOp::Xor => Alu::Xor,
                        _ => unreachable!(),
                    };
                    self.push(XInst::AluRI {
                        op: alu,
                        dst: x_reg(dst),
                        imm: imm as i32,
                    });
                } else {
                    // Same lifted IR (bound constant + binop), staged
                    // through `r11` because the immediate form is 32-bit.
                    self.imm(AReg::S1, imm);
                    self.binop(op, dst, AReg::S1);
                }
            }
        }
    }

    fn sext(&mut self, dst: AReg, bits: u8) {
        let from = match bits {
            8 => OpWidth::B8,
            16 => OpWidth::B16,
            32 => OpWidth::B32,
            _ => unreachable!("driver only fuses 8/16/32-bit sign extensions"),
        };
        self.push(XInst::MovSx {
            from,
            dst: x_reg(dst),
            src: Rm::Reg(x_reg(dst)),
        });
    }

    fn lea_global(&mut self, dst: AReg, _index: u32, name: &str) {
        self.body
            .push(SymInst::LeaGlobal(x_reg(dst), name.to_string()));
    }

    fn lea_func(&mut self, dst: AReg, _index: u32, name: &str) {
        self.body
            .push(SymInst::LeaFunc(x_reg(dst), name.to_string()));
    }

    fn call_direct(&mut self, _index: u32, name: &str, _nargs: u8) {
        self.body.push(SymInst::CallFunc(name.to_string()));
    }

    fn call_extern(&mut self, _index: u32, name: &str, _nargs: u8) {
        self.body.push(SymInst::CallExtern(name.to_string()));
    }

    fn call_indirect(&mut self, fp: AReg, _nargs: u8) {
        self.push(XInst::CallInd { reg: x_reg(fp) });
    }

    fn cond_branch(
        &mut self,
        pred: CmpPred,
        lhs: AReg,
        rhs: CondRhs,
        else_bb: BlockId,
        then_bb: BlockId,
    ) {
        match rhs {
            CondRhs::Imm(c) => {
                if let Ok(imm) = i32::try_from(c) {
                    self.push(XInst::AluRI {
                        op: Alu::Cmp,
                        dst: x_reg(lhs),
                        imm,
                    });
                } else {
                    self.imm(AReg::S1, c);
                    self.push(XInst::AluRR {
                        op: Alu::Cmp,
                        dst: x_reg(lhs),
                        src: x_reg(AReg::S1),
                    });
                }
            }
            CondRhs::Reg(r) => self.push(XInst::AluRR {
                op: Alu::Cmp,
                dst: x_reg(lhs),
                src: x_reg(r),
            }),
        }
        // `j<!pred> else`: the fallthrough (then-edge) is taken exactly
        // when `pred` holds, and the lifter materializes
        // `cmp.<!cc.pred()> = cmp.<pred>` — matching SB's `cmp.Q` + `brz`.
        self.body.push(SymInst::JccLabel(
            cc_for(pred).negate(),
            format!("b{}", else_bb.0),
        ));
        self.body.push(SymInst::JmpLabel(format!("b{}", then_bb.0)));
    }

    fn jmp(&mut self, target: BlockId) {
        self.body.push(SymInst::JmpLabel(format!("b{}", target.0)));
    }

    fn ret(&mut self) {
        if self.has_frame {
            self.push(XInst::MovRR {
                w: OpWidth::B64,
                dst: Gpr::RSP,
                src: Gpr::RBP,
            });
            self.push(XInst::Pop { reg: Gpr::RBP });
        }
        self.push(XInst::Ret);
    }

    fn end_function(&mut self, name: &str, nparams: u8, has_ret: bool) {
        self.builder
            .function(name, nparams, has_ret, std::mem::take(&mut self.body));
    }
}

// ---------------------------------------------------------------------------
// The shared lowering driver.
// ---------------------------------------------------------------------------

/// Where a value's bits come from at a use site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VSrc {
    Loc(Loc),
    Const(i64),
    Global(u32),
    Func(u32),
}

/// One pending phi move at a predecessor's end.
struct PhiCopy {
    dst: Loc,
    src: CopySrc,
}

#[derive(Clone, Copy)]
enum CopySrc {
    Val(ValueId),
    /// Rewritten to the cycle buffer.
    Reg(AReg),
}

struct Lowering<'a> {
    module: &'a Module,
    func: &'a Function,
    fnames: &'a [String],
    gnames: &'a [String],
    enames: &'a [String],
    /// Fused `gep` value → (base, offset).
    fused_gep: HashMap<ValueId, (ValueId, u64)>,
    /// Instructions that emit no code of their own (phis, fused geps and
    /// compares, dead geps).
    skip: HashSet<InstId>,
    /// Fused compare per conditional block.
    fused_cmp: HashMap<BlockId, (CmpPred, ValueId, ValueId)>,
    /// Fused sign-extension idiom, keyed by the `shr` instruction:
    /// (value being extended, source bit width).
    fused_sext: HashMap<InstId, (ValueId, u8)>,
    loc: HashMap<ValueId, Loc>,
    alloca_of: HashMap<InstId, usize>,
    frame: FrameInfo,
}

impl<'a> Lowering<'a> {
    fn build(
        module: &'a Module,
        func: &'a Function,
        fnames: &'a [String],
        gnames: &'a [String],
        enames: &'a [String],
    ) -> Result<Lowering<'a>, EmitError> {
        let mut low = Lowering {
            module,
            func,
            fnames,
            gnames,
            enames,
            fused_gep: HashMap::new(),
            skip: HashSet::new(),
            fused_cmp: HashMap::new(),
            fused_sext: HashMap::new(),
            loc: HashMap::new(),
            alloca_of: HashMap::new(),
            frame: FrameInfo::default(),
        };
        if func.params().len() > 6 {
            return err(format!(
                "{}: more than 6 parameters is outside both ABIs",
                func.name()
            ));
        }
        low.analyze_fusion()?;
        low.allocate()?;
        low.plan_frame()?;
        Ok(low)
    }

    // -- Phase 1: use counting and fusion. ---------------------------------

    fn analyze_fusion(&mut self) -> Result<(), EmitError> {
        let func = self.func;
        // Count uses, distinguishing memory-address positions.
        let mut addr_uses: HashMap<ValueId, u32> = HashMap::new();
        let mut other_uses: HashMap<ValueId, u32> = HashMap::new();
        let bump = |m: &mut HashMap<ValueId, u32>, v: ValueId| *m.entry(v).or_insert(0) += 1;
        for inst in func.insts() {
            match &inst.kind {
                InstKind::Copy { src, .. } => bump(&mut other_uses, *src),
                InstKind::Phi { incomings, .. } => {
                    for &(_, v) in incomings {
                        bump(&mut other_uses, v);
                    }
                }
                InstKind::Load { addr, .. } => bump(&mut addr_uses, *addr),
                InstKind::Store { addr, val } => {
                    bump(&mut addr_uses, *addr);
                    bump(&mut other_uses, *val);
                }
                InstKind::Alloca { .. } => {}
                InstKind::Gep { base, .. } => bump(&mut other_uses, *base),
                InstKind::BinOp { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                    bump(&mut other_uses, *lhs);
                    bump(&mut other_uses, *rhs);
                }
                InstKind::Call { callee, args, .. } => {
                    if let Callee::Indirect(fp) = callee {
                        bump(&mut other_uses, *fp);
                    }
                    for &a in args {
                        bump(&mut other_uses, a);
                    }
                }
            }
        }
        for block in func.blocks() {
            match &block.term {
                Terminator::CondBr { cond, .. } => bump(&mut other_uses, *cond),
                Terminator::Ret(Some(v)) => bump(&mut other_uses, *v),
                _ => {}
            }
        }
        // Geps whose every use is an address fold into the access; geps
        // with no uses at all vanish.
        for inst in func.insts() {
            if let InstKind::Gep { dst, base, offset } = inst.kind {
                let others = other_uses.get(&dst).copied().unwrap_or(0);
                if others == 0 && offset <= u64::from(u32::MAX) && offset <= i32::MAX as u64 {
                    self.skip.insert(inst.id);
                    if addr_uses.get(&dst).copied().unwrap_or(0) > 0 {
                        self.fused_gep.insert(dst, (base, offset));
                    }
                }
            }
        }
        // The sign-extension idiom `t = v << (64-n); d = t >> (64-n)` with
        // n ∈ {8, 16, 32} and `t` used only by the `shr` fuses into one
        // backend sign-extension step: x86 renders a single `movsx`, SB
        // keeps the two shifts — both lift back to this exact pair.
        let const_of = |v: ValueId| match func.value(v).kind {
            ValueKind::Const(ConstKind::Int(c)) => Some(c),
            _ => None,
        };
        for inst in func.insts() {
            let (shr_lhs, shr_rhs) = match inst.kind {
                InstKind::BinOp {
                    op: BinOp::Shr,
                    lhs,
                    rhs,
                    ..
                } => (lhs, rhs),
                _ => continue,
            };
            let amt = match const_of(shr_rhs) {
                Some(a @ (32 | 48 | 56)) => a,
                _ => continue,
            };
            let shl_def = match func.value(shr_lhs).kind {
                ValueKind::Inst { def } => def,
                _ => continue,
            };
            let (src, shl_rhs) = match func.inst(shl_def).kind {
                InstKind::BinOp {
                    op: BinOp::Shl,
                    lhs,
                    rhs,
                    ..
                } => (lhs, rhs),
                _ => continue,
            };
            if const_of(shl_rhs) != Some(amt) || self.skip.contains(&shl_def) {
                continue;
            }
            let t_uses = other_uses.get(&shr_lhs).copied().unwrap_or(0)
                + addr_uses.get(&shr_lhs).copied().unwrap_or(0);
            if t_uses != 1 {
                continue;
            }
            self.skip.insert(shl_def);
            self.fused_sext.insert(inst.id, (src, (64 - amt) as u8));
        }
        // Compares must feed their block's condbr directly (both ISAs fuse
        // compare-and-branch); phis lower to predecessor copies.
        for block in func.blocks() {
            if let Terminator::CondBr { cond, .. } = block.term {
                let def = match func.value(cond).kind {
                    ValueKind::Inst { def } => def,
                    _ => {
                        return err(format!(
                            "{}: condbr condition is not a compare result",
                            func.name()
                        ))
                    }
                };
                let data = func.inst(def);
                let last = block.insts.last().copied();
                let uses = other_uses.get(&cond).copied().unwrap_or(0)
                    + addr_uses.get(&cond).copied().unwrap_or(0);
                match data.kind {
                    InstKind::Cmp { pred, lhs, rhs, .. }
                        if data.block == block.id && last == Some(def) && uses == 1 =>
                    {
                        self.skip.insert(def);
                        self.fused_cmp.insert(block.id, (pred, lhs, rhs));
                    }
                    _ => {
                        return err(format!(
                            "{}: condbr condition must be the block's final cmp \
                             with no other use",
                            func.name()
                        ))
                    }
                }
            }
        }
        for inst in func.insts() {
            match inst.kind {
                InstKind::Cmp { .. } if !self.skip.contains(&inst.id) => {
                    return err(format!(
                        "{}: standalone cmp (not feeding a condbr) is outside \
                         both machine subsets",
                        func.name()
                    ));
                }
                InstKind::Phi { .. } => {
                    self.skip.insert(inst.id);
                }
                _ => {}
            }
        }
        // Values needing a location: every param or (non-fused) def with at
        // least one use.
        for &p in func.params() {
            let n =
                addr_uses.get(&p).copied().unwrap_or(0) + other_uses.get(&p).copied().unwrap_or(0);
            if n > 0 {
                self.loc.insert(p, Loc::Home(0)); // placeholder; fixed in allocate()
            }
        }
        for inst in func.insts() {
            let phi = matches!(inst.kind, InstKind::Phi { .. });
            if self.skip.contains(&inst.id) && !phi {
                continue;
            }
            if let Some(d) = inst.kind.def() {
                let n = addr_uses.get(&d).copied().unwrap_or(0)
                    + other_uses.get(&d).copied().unwrap_or(0);
                if n > 0 {
                    self.loc.insert(d, Loc::Home(0));
                }
            }
        }
        Ok(())
    }

    // -- Phase 2: liveness and linear-scan location assignment. ------------

    fn allocate(&mut self) -> Result<(), EmitError> {
        let func = self.func;
        // Deterministic vreg numbering: params, then defs in program order.
        let mut vids: Vec<ValueId> = Vec::new();
        let mut vidx: HashMap<ValueId, usize> = HashMap::new();
        let note = |v: ValueId, vids: &mut Vec<ValueId>, vidx: &mut HashMap<ValueId, usize>| {
            if let std::collections::hash_map::Entry::Vacant(e) = vidx.entry(v) {
                e.insert(vids.len());
                vids.push(v);
            }
        };
        for &p in func.params() {
            if self.loc.contains_key(&p) {
                note(p, &mut vids, &mut vidx);
            }
        }
        for block in func.blocks() {
            for &iid in &block.insts {
                if let Some(d) = func.inst(iid).kind.def() {
                    if self.loc.contains_key(&d) {
                        note(d, &mut vids, &mut vidx);
                    }
                }
            }
        }
        let nv = vids.len();
        // Linear positions: params first, then instructions and block
        // terminators in layout order.
        let mut pos = func.params().len();
        let mut inst_pos: HashMap<InstId, usize> = HashMap::new();
        let mut term_pos: HashMap<BlockId, usize> = HashMap::new();
        for block in func.blocks() {
            for &iid in &block.insts {
                if self.skip.contains(&iid) {
                    continue;
                }
                inst_pos.insert(iid, pos);
                pos += 1;
            }
            term_pos.insert(block.id, pos);
            pos += 1;
        }
        // Per-step use/def events, per block, in forward order.
        struct Step {
            pos: usize,
            uses: Vec<usize>,
            defs: Vec<usize>,
        }
        let vreg = |this: &Lowering, v: ValueId| -> Option<usize> {
            if this.loc.contains_key(&v) {
                vidx.get(&v).copied()
            } else {
                None
            }
        };
        // An address operand uses the fused gep's base instead.
        let addr_base = |this: &Lowering, v: ValueId| -> ValueId {
            this.fused_gep.get(&v).map_or(v, |&(b, _)| b)
        };
        let mut steps: HashMap<BlockId, Vec<Step>> = HashMap::new();
        let uses_of = |this: &Lowering, kind: &InstKind| -> Vec<ValueId> {
            match kind {
                InstKind::Copy { src, .. } => vec![*src],
                InstKind::Load { addr, .. } => vec![addr_base(this, *addr)],
                InstKind::Store { addr, val } => vec![addr_base(this, *addr), *val],
                InstKind::Alloca { .. } => vec![],
                InstKind::Gep { base, .. } => vec![*base],
                InstKind::BinOp { lhs, rhs, .. } => vec![*lhs, *rhs],
                InstKind::Call { callee, args, .. } => {
                    let mut u = args.clone();
                    if let Callee::Indirect(fp) = callee {
                        u.push(*fp);
                    }
                    u
                }
                InstKind::Phi { .. } | InstKind::Cmp { .. } => vec![],
            }
        };
        for block in func.blocks() {
            let mut list: Vec<Step> = Vec::new();
            if block.id == func.entry() {
                for (i, &p) in func.params().iter().enumerate() {
                    list.push(Step {
                        pos: i,
                        uses: vec![],
                        defs: vreg(self, p).into_iter().collect(),
                    });
                }
            }
            for &iid in &block.insts {
                if self.skip.contains(&iid) {
                    continue;
                }
                let data = func.inst(iid);
                let uses = uses_of(self, &data.kind)
                    .into_iter()
                    .filter_map(|v| vreg(self, v))
                    .collect();
                let defs = data
                    .kind
                    .def()
                    .and_then(|d| vreg(self, d))
                    .into_iter()
                    .collect();
                list.push(Step {
                    pos: inst_pos[&iid],
                    uses,
                    defs,
                });
            }
            // Terminator step: fused-cmp / ret uses plus phi-copy moves.
            let tpos = term_pos[&block.id];
            let mut uses: Vec<usize> = Vec::new();
            let mut defs: Vec<usize> = Vec::new();
            match &block.term {
                Terminator::CondBr { .. } => {
                    let (_, lhs, rhs) = self.fused_cmp[&block.id];
                    uses.extend(vreg(self, lhs));
                    uses.extend(vreg(self, rhs));
                }
                Terminator::Ret(Some(v)) => uses.extend(vreg(self, *v)),
                _ => {}
            }
            for (dst, src) in self.phi_moves(block.id) {
                if let CopySrc::Val(v) = src {
                    uses.extend(vreg(self, v));
                }
                defs.extend(vidx.get(&dst).copied());
            }
            list.push(Step {
                pos: tpos,
                uses,
                defs,
            });
            steps.insert(block.id, list);
        }
        // Backward liveness fixpoint over bitsets.
        let words = nv.div_ceil(64);
        let mut live_in: HashMap<BlockId, Vec<u64>> = HashMap::new();
        let mut live_out: HashMap<BlockId, Vec<u64>> = HashMap::new();
        for block in func.blocks() {
            live_in.insert(block.id, vec![0; words]);
            live_out.insert(block.id, vec![0; words]);
        }
        let order: Vec<BlockId> = func.blocks().map(|b| b.id).collect();
        loop {
            let mut changed = false;
            for &b in order.iter().rev() {
                let mut out = vec![0u64; words];
                for s in self.func.block(b).term.successors() {
                    for (w, v) in out.iter_mut().zip(&live_in[&s]) {
                        *w |= v;
                    }
                }
                let mut live = out.clone();
                for step in steps[&b].iter().rev() {
                    for &d in &step.defs {
                        live[d / 64] &= !(1u64 << (d % 64));
                    }
                    for &u in &step.uses {
                        live[u / 64] |= 1u64 << (u % 64);
                    }
                }
                if live_out[&b] != out {
                    live_out.insert(b, out);
                    changed = true;
                }
                if live_in[&b] != live {
                    live_in.insert(b, live);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Intervals: [first def, last point live].
        let mut start = vec![usize::MAX; nv];
        let mut end = vec![0usize; nv];
        for block in func.blocks() {
            for step in &steps[&block.id] {
                for &d in &step.defs {
                    start[d] = start[d].min(step.pos);
                    end[d] = end[d].max(step.pos);
                }
                for &u in &step.uses {
                    end[u] = end[u].max(step.pos);
                }
            }
            let tpos = term_pos[&block.id];
            let out = &live_out[&block.id];
            for (v, s) in start.iter_mut().enumerate().take(nv) {
                if out[v / 64] & (1u64 << (v % 64)) != 0 {
                    end[v] = end[v].max(tpos);
                    // A value live-out of a block it wasn't defined in is a
                    // phi defined by this block's copies; keep start sane.
                    let _ = s;
                }
            }
        }
        // Greedy linear scan over (start, vreg) order; no eviction — over
        // pressure goes to a fresh spill slot.
        let mut by_start: Vec<usize> = (0..nv).collect();
        by_start.sort_by_key(|&v| (start[v], v));
        let mut active: Vec<(usize, u8, usize)> = Vec::new(); // (end, home, vreg)
        let mut n_spills = 0u32;
        for &v in &by_start {
            debug_assert!(start[v] != usize::MAX, "vreg without a definition");
            active.retain(|&(e, _, _)| e >= start[v]);
            let used: HashSet<u8> = active.iter().map(|&(_, h, _)| h).collect();
            let free = (0..N_HOMES).find(|h| !used.contains(h));
            let l = match free {
                Some(h) => {
                    active.push((end[v], h, v));
                    Loc::Home(h)
                }
                None => {
                    let s = n_spills;
                    n_spills += 1;
                    Loc::Spill(s)
                }
            };
            self.loc.insert(vids[v], l);
        }
        self.frame.n_spills = n_spills;
        Ok(())
    }

    // -- Phase 3: frame layout. --------------------------------------------

    fn plan_frame(&mut self) -> Result<(), EmitError> {
        for block in self.func.blocks() {
            for &iid in &block.insts {
                if let InstKind::Alloca { size, .. } = self.func.inst(iid).kind {
                    if size == 0 || size > u64::from(u32::MAX) {
                        return err(format!(
                            "{}: alloca of {size} bytes is outside both subsets",
                            self.func.name()
                        ));
                    }
                    self.alloca_of.insert(iid, self.frame.alloca_sizes.len());
                    self.frame.alloca_sizes.push(size);
                }
            }
        }
        if self.frame.total() > i32::MAX as u64 {
            return err(format!("{}: frame too large", self.func.name()));
        }
        Ok(())
    }

    // -- Shared emission helpers. ------------------------------------------

    fn classify(&self, v: ValueId) -> Result<VSrc, EmitError> {
        match self.func.value(v).kind {
            ValueKind::Const(ConstKind::Int(c)) => Ok(VSrc::Const(c)),
            ValueKind::Const(_) => err(format!(
                "{}: float/null/undef constants are outside the dual subset",
                self.func.name()
            )),
            ValueKind::GlobalAddr(g) => Ok(VSrc::Global(g.0)),
            ValueKind::FuncAddr(f) => Ok(VSrc::Func(f.0)),
            _ => match self.loc.get(&v) {
                Some(&l) => Ok(VSrc::Loc(l)),
                None => err(format!(
                    "{}: internal: used value has no location",
                    self.func.name()
                )),
            },
        }
    }

    /// Puts `v` into the exact register `dst`.
    fn put<B: Backend>(&self, be: &mut B, dst: AReg, v: ValueId) -> Result<(), EmitError> {
        match self.classify(v)? {
            VSrc::Loc(Loc::Home(h)) => {
                if AReg::Home(h) != dst {
                    be.copy(dst, AReg::Home(h));
                }
            }
            VSrc::Loc(Loc::Spill(s)) => be.spill_load(dst, s),
            VSrc::Const(c) => be.imm(dst, c),
            VSrc::Global(g) => be.lea_global(dst, g, &self.gnames[g as usize]),
            VSrc::Func(f) => be.lea_func(dst, f, &self.fnames[f as usize]),
        }
        Ok(())
    }

    /// Stages `v` into a register, preferring its home and falling back to
    /// `scratch`.
    fn stage<B: Backend>(&self, be: &mut B, scratch: AReg, v: ValueId) -> Result<AReg, EmitError> {
        match self.classify(v)? {
            VSrc::Loc(Loc::Home(h)) => Ok(AReg::Home(h)),
            _ => {
                self.put(be, scratch, v)?;
                Ok(scratch)
            }
        }
    }

    /// Resolves an address operand: fused geps become a displacement.
    fn addr_of(&self, addr: ValueId) -> (ValueId, u32) {
        match self.fused_gep.get(&addr) {
            Some(&(base, off)) => (base, off as u32),
            None => (addr, 0),
        }
    }

    /// Phi moves this block owes its successors' phis.
    fn phi_moves(&self, b: BlockId) -> Vec<(ValueId, CopySrc)> {
        let mut succs: Vec<BlockId> = Vec::new();
        for s in self.func.block(b).term.successors() {
            if !succs.contains(&s) {
                succs.push(s);
            }
        }
        let mut moves = Vec::new();
        for s in succs {
            for &iid in &self.func.block(s).insts {
                if let InstKind::Phi { dst, incomings } = &self.func.inst(iid).kind {
                    if !self.loc.contains_key(dst) {
                        continue; // dead phi: no copies anywhere
                    }
                    if let Some(&(_, v)) = incomings.iter().find(|&&(pb, _)| pb == b) {
                        moves.push((*dst, CopySrc::Val(v)));
                    }
                }
            }
        }
        moves
    }

    // -- Phase 4: emission. ------------------------------------------------

    fn emit<B: Backend>(&self, be: &mut B) -> Result<(), EmitError> {
        let func = self.func;
        be.begin_function(&self.frame);
        for (i, &p) in func.params().iter().enumerate() {
            match self.loc.get(&p) {
                Some(&Loc::Home(h)) => be.copy(AReg::Home(h), AReg::Arg(i as u8)),
                Some(&Loc::Spill(s)) => be.spill_store(s, AReg::Arg(i as u8)),
                None => {}
            }
        }
        for block in func.blocks() {
            be.label(block.id);
            for &iid in &block.insts {
                if self.skip.contains(&iid) {
                    continue;
                }
                self.emit_inst(be, iid)?;
            }
            self.emit_term(be, block.id)?;
        }
        be.end_function(
            func.name(),
            func.params().len() as u8,
            func.ret_width().is_some(),
        );
        Ok(())
    }

    /// The register an instruction result is computed in: its home, or the
    /// scratch sink for spilled/unused results.
    fn result_target(&self, d: ValueId) -> (AReg, Option<u32>) {
        match self.loc.get(&d) {
            Some(&Loc::Home(h)) => (AReg::Home(h), None),
            Some(&Loc::Spill(s)) => (AReg::S0, Some(s)),
            None => (AReg::S0, None),
        }
    }

    fn emit_inst<B: Backend>(&self, be: &mut B, iid: InstId) -> Result<(), EmitError> {
        let func = self.func;
        match &func.inst(iid).kind {
            InstKind::Copy { dst, src } => {
                let (t, spill) = self.result_target(*dst);
                self.put(be, t, *src)?;
                if let Some(s) = spill {
                    be.spill_store(s, t);
                }
            }
            InstKind::Load { dst, addr, width } => {
                if *width == Width::W1 {
                    return err(format!("{}: 1-bit load is not encodable", func.name()));
                }
                let (base_v, off) = self.addr_of(*addr);
                let base = self.stage_addr(be, base_v)?;
                let (t, spill) = self.result_target(*dst);
                be.load(*width, t, base, off);
                if let Some(s) = spill {
                    be.spill_store(s, t);
                }
            }
            InstKind::Store { addr, val } => {
                let (base_v, off) = self.addr_of(*addr);
                let base = self.stage_addr(be, base_v)?;
                let v = self.stage(be, AReg::S1, *val)?;
                be.store(base, off, v);
            }
            InstKind::Alloca { dst, .. } => {
                let (t, spill) = self.result_target(*dst);
                be.alloca(t, self.alloca_of[&iid]);
                if let Some(s) = spill {
                    be.spill_store(s, t);
                }
            }
            InstKind::Gep { dst, base, offset } => {
                // Unfused gep: materialize as base + offset arithmetic.
                if *offset > i64::MAX as u64 {
                    return err(format!("{}: gep offset too large", func.name()));
                }
                let (t, spill) = self.result_target(*dst);
                self.put(be, t, *base)?;
                be.binop_imm(BinOp::Add, t, *offset as i64);
                if let Some(s) = spill {
                    be.spill_store(s, t);
                }
            }
            InstKind::BinOp { op, dst, lhs, rhs } => {
                if let Some(&(src, bits)) = self.fused_sext.get(&iid) {
                    let (t, spill) = self.result_target(*dst);
                    self.put(be, t, src)?;
                    be.sext(t, bits);
                    if let Some(s) = spill {
                        be.spill_store(s, t);
                    }
                } else {
                    self.emit_binop(be, *op, *dst, *lhs, *rhs)?;
                }
            }
            InstKind::Call { dst, callee, args } => {
                self.emit_call(be, *dst, *callee, args)?;
            }
            InstKind::Phi { .. } | InstKind::Cmp { .. } => {
                unreachable!("phis and fused cmps are in the skip set")
            }
        }
        Ok(())
    }

    /// Stages an address base (fused-gep bases included) into a register.
    fn stage_addr<B: Backend>(&self, be: &mut B, base: ValueId) -> Result<AReg, EmitError> {
        match self.classify(base)? {
            VSrc::Func(_) => err(format!(
                "{}: memory access through a function address",
                self.func.name()
            )),
            VSrc::Loc(Loc::Home(h)) => Ok(AReg::Home(h)),
            _ => {
                self.put(be, AReg::S0, base)?;
                Ok(AReg::S0)
            }
        }
    }

    fn emit_binop<B: Backend>(
        &self,
        be: &mut B,
        op: BinOp,
        dst: ValueId,
        lhs: ValueId,
        rhs: ValueId,
    ) -> Result<(), EmitError> {
        if matches!(op, BinOp::Div | BinOp::Rem) {
            return err(format!(
                "{}: div/rem are outside the x86 subset",
                self.func.name()
            ));
        }
        let (t, spill) = self.result_target(dst);
        let rhs_src = self.classify(rhs)?;
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            let amt = match rhs_src {
                VSrc::Const(c) if (0..=63).contains(&c) => c,
                _ => {
                    return err(format!(
                        "{}: shifts must be by a constant 0..=63",
                        self.func.name()
                    ))
                }
            };
            self.put(be, t, lhs)?;
            be.binop_imm(op, t, amt);
        } else {
            match rhs_src {
                VSrc::Const(c) => {
                    self.put(be, t, lhs)?;
                    be.binop_imm(op, t, c);
                }
                VSrc::Loc(Loc::Home(h)) if AReg::Home(h) == t => {
                    // Staging lhs into t would clobber rhs: park rhs first.
                    be.copy(AReg::S1, AReg::Home(h));
                    self.put(be, t, lhs)?;
                    be.binop(op, t, AReg::S1);
                }
                VSrc::Loc(Loc::Home(h)) => {
                    self.put(be, t, lhs)?;
                    be.binop(op, t, AReg::Home(h));
                }
                _ => {
                    self.put(be, AReg::S1, rhs)?;
                    self.put(be, t, lhs)?;
                    be.binop(op, t, AReg::S1);
                }
            }
        }
        if let Some(s) = spill {
            be.spill_store(s, t);
        }
        Ok(())
    }

    fn emit_call<B: Backend>(
        &self,
        be: &mut B,
        dst: Option<ValueId>,
        callee: Callee,
        args: &[ValueId],
    ) -> Result<(), EmitError> {
        if args.len() > 6 {
            return err(format!(
                "{}: call with more than 6 arguments",
                self.func.name()
            ));
        }
        for (j, &a) in args.iter().enumerate() {
            self.put(be, AReg::Arg(j as u8), a)?;
        }
        let n = args.len() as u8;
        match callee {
            Callee::Direct(f) => {
                let target = self
                    .module
                    .functions()
                    .nth(f.0 as usize)
                    .expect("verified module");
                if target.params().len() != args.len() {
                    return err(format!(
                        "{}: call to {} passes {} args, expects {}",
                        self.func.name(),
                        target.name(),
                        args.len(),
                        target.params().len()
                    ));
                }
                be.call_direct(f.0, &self.fnames[f.0 as usize], n);
            }
            Callee::Extern(e) => {
                let decl = self.module.extern_decl(e);
                if decl.param_widths.len() != args.len() {
                    // The x86 side recovers extern arity from the PLT
                    // declaration, so per-site arity must match it.
                    return err(format!(
                        "{}: call to extern {} passes {} args, declared {}",
                        self.func.name(),
                        decl.name,
                        args.len(),
                        decl.param_widths.len()
                    ));
                }
                be.call_extern(e.0, &self.enames[e.0 as usize], n);
            }
            Callee::Indirect(fp) => {
                let r = self.stage(be, AReg::S0, fp)?;
                be.call_indirect(r, n);
            }
        }
        if let Some(d) = dst {
            match self.loc.get(&d) {
                Some(&Loc::Home(h)) => be.copy(AReg::Home(h), AReg::Ret),
                Some(&Loc::Spill(s)) => be.spill_store(s, AReg::Ret),
                None => {}
            }
        }
        Ok(())
    }

    fn emit_term<B: Backend>(&self, be: &mut B, b: BlockId) -> Result<(), EmitError> {
        // Phi moves first (they lift before the fused compare on both
        // sides: SB's `cmp` writes a register after them, x86's `mov`s
        // preserve the not-yet-set flags).
        let moves: Vec<(ValueId, CopySrc)> = self.phi_moves(b);
        let mut pending: Vec<PhiCopy> = Vec::new();
        for (dst, src) in moves {
            pending.push(PhiCopy {
                dst: self.loc[&dst],
                src,
            });
        }
        self.emit_parallel_copies(be, pending)?;
        match &self.func.block(b).term {
            Terminator::Br(t) => be.jmp(*t),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                let (pred, lhs, rhs) = self.fused_cmp[&b];
                let lhs_r = self.stage(be, AReg::S0, lhs)?;
                let rhs_op = match self.classify(rhs)? {
                    VSrc::Const(c) => CondRhs::Imm(c),
                    VSrc::Loc(Loc::Home(h)) => CondRhs::Reg(AReg::Home(h)),
                    _ => {
                        self.put(be, AReg::S1, rhs)?;
                        CondRhs::Reg(AReg::S1)
                    }
                };
                be.cond_branch(pred, lhs_r, rhs_op, *else_bb, *then_bb);
            }
            Terminator::Ret(Some(v)) => {
                self.put(be, AReg::Ret, *v)?;
                be.ret();
            }
            Terminator::Ret(None) => be.ret(),
            Terminator::Unreachable => {
                return err(format!(
                    "{}: unreachable terminator cannot be encoded",
                    self.func.name()
                ))
            }
        }
        Ok(())
    }

    /// Emits the phi moves of one edge bundle in a clobber-safe order,
    /// breaking cycles through the `S1` buffer.
    fn emit_parallel_copies<B: Backend>(
        &self,
        be: &mut B,
        mut pending: Vec<PhiCopy>,
    ) -> Result<(), EmitError> {
        let src_loc = |this: &Lowering, c: &PhiCopy| -> Option<Loc> {
            match c.src {
                CopySrc::Val(v) => match this.classify(v) {
                    Ok(VSrc::Loc(l)) => Some(l),
                    _ => None,
                },
                CopySrc::Reg(_) => None,
            }
        };
        while !pending.is_empty() {
            let safe = pending.iter().position(|c| {
                !pending
                    .iter()
                    .any(|other| src_loc(self, other) == Some(c.dst))
            });
            match safe {
                Some(i) => {
                    let c = pending.remove(i);
                    self.emit_one_copy(be, &c)?;
                }
                None => {
                    // Cycle: park the first destination's current value in
                    // S1 and retarget its readers.
                    let blocked = pending[0].dst;
                    match blocked {
                        Loc::Home(h) => be.copy(AReg::S1, AReg::Home(h)),
                        Loc::Spill(s) => be.spill_load(AReg::S1, s),
                    }
                    for c in &mut pending {
                        if src_loc(self, c) == Some(blocked) {
                            c.src = CopySrc::Reg(AReg::S1);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn emit_one_copy<B: Backend>(&self, be: &mut B, c: &PhiCopy) -> Result<(), EmitError> {
        match (c.dst, c.src) {
            (dst, CopySrc::Val(v)) => {
                if self.classify(v)? == VSrc::Loc(dst) {
                    return Ok(()); // self-move (e.g. loop phi of itself)
                }
                match dst {
                    Loc::Home(h) => self.put(be, AReg::Home(h), v)?,
                    Loc::Spill(s) => match self.classify(v)? {
                        VSrc::Loc(Loc::Home(h)) => be.spill_store(s, AReg::Home(h)),
                        _ => {
                            self.put(be, AReg::S0, v)?;
                            be.spill_store(s, AReg::S0);
                        }
                    },
                }
            }
            (Loc::Home(h), CopySrc::Reg(r)) => be.copy(AReg::Home(h), r),
            (Loc::Spill(s), CopySrc::Reg(r)) => be.spill_store(s, r),
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Lowers `module` to both machine encodings.
///
/// The two images are built from one shared decision sequence: lifting
/// either reconstructs the *same* IR, so every downstream analysis result
/// is bit-identical between them.
///
/// # Errors
///
/// Returns [`EmitError`] if the module uses constructs outside the common
/// machine subset (floating constants, `div`/`rem`, standalone compares,
/// more than six arguments, oversized frames).
pub fn emit_dual(module: &Module) -> Result<DualEncoding, EmitError> {
    let fnames: Vec<String> = module.functions().map(|f| f.name().to_string()).collect();
    let gnames: Vec<String> = module.globals().map(|g| g.name.clone()).collect();
    let enames: Vec<String> = module.externs().map(|e| e.name.clone()).collect();
    let mut sbb = SbBackend::new(module.name());
    let mut xb = X86Backend::new(module.name());
    for e in module.externs() {
        let nparams = e.param_widths.len() as u8;
        let has_ret = e.ret_width.is_some();
        sbb.image.externs.push(sb_image::ImageExtern {
            name: e.name.clone(),
            nparams,
            has_ret,
        });
        xb.builder.declare_extern(&e.name, nparams, has_ret);
    }
    for g in module.globals() {
        sbb.image.globals.push(sb_image::ImageGlobal {
            name: g.name.clone(),
            size: g.size,
        });
        xb.builder.declare_global(&g.name, g.size);
    }
    for f in module.functions() {
        let low = Lowering::build(module, f, &fnames, &gnames, &enames)?;
        low.emit(&mut sbb)?;
        low.emit(&mut xb)?;
    }
    let x86 = xb.builder.build().map_err(|e| EmitError {
        message: format!("x86 layout: {}", e.message),
    })?;
    Ok(DualEncoding { sb: sbb.image, x86 })
}

/// Lowers `module` and serializes both containers (SBF, XLF).
///
/// # Errors
///
/// Propagates [`emit_dual`]'s errors.
pub fn emit_dual_bytes(module: &Module) -> Result<(Vec<u8>, Vec<u8>), EmitError> {
    let dual = emit_dual(module)?;
    Ok((dual.sb_bytes(), dual.x86_bytes()))
}

impl crate::GeneratedProgram {
    /// Encodes this generated program in both machine encodings.
    ///
    /// # Errors
    ///
    /// Propagates [`emit_dual`]'s errors; generated modules always stay
    /// within the dual subset.
    pub fn encode_dual(&self) -> Result<DualEncoding, EmitError> {
        emit_dual(&self.module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenSpec};
    use crate::mix::PhenomenonMix;
    use manta_ir::printer::print_module;

    fn spec(functions: usize, seed: u64) -> GenSpec {
        GenSpec {
            name: format!("dual_{seed}"),
            functions,
            mix: PhenomenonMix::balanced(),
            seed,
        }
    }

    fn assert_parity(module: &Module) {
        let dual = emit_dual(module).expect("lowering stays in the subset");
        let sb_lifted = manta_isa::lift::lift(&dual.sb).expect("sb lift");
        let x86_lifted = manta_x86::lift(&dual.x86).expect("x86 lift");
        let a = print_module(&sb_lifted);
        let b = print_module(&x86_lifted);
        assert_eq!(a, b, "lifted IR must match between encodings");
    }

    #[test]
    fn generated_programs_lift_identically_from_both_encodings() {
        for seed in [1, 2, 3, 7, 11, 42] {
            let prog = generate(&spec(10, seed));
            assert_parity(&prog.module);
        }
    }

    #[test]
    fn encoded_containers_round_trip_through_the_frontends() {
        use manta_ir::Frontend;
        let prog = generate(&spec(6, 5));
        let (sb_bytes, x86_bytes) = emit_dual_bytes(&prog.module).unwrap();
        let sb_fe = manta_isa::lift::SbFrontend;
        let x86_fe = manta_x86::lift::X86Frontend;
        assert!(sb_fe.detects(&sb_bytes) && !sb_fe.detects(&x86_bytes));
        assert!(x86_fe.detects(&x86_bytes) && !x86_fe.detects(&sb_bytes));
        let m1 = sb_fe.lift_bytes(&sb_bytes).unwrap();
        let m2 = x86_fe.lift_bytes(&x86_bytes).unwrap();
        assert_eq!(print_module(&m1), print_module(&m2));
    }

    #[test]
    fn register_pressure_spills_stay_in_parity() {
        // Hand-build a function with more than N_HOMES simultaneously-live
        // values to force spill slots on both sides.
        let mut mb = manta_ir::ModuleBuilder::new("pressure");
        let (_, mut fb) = mb.function("crowd", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let mut vals = Vec::new();
        for i in 0..9i64 {
            let c = fb.const_int(i + 3, Width::W64);
            vals.push(fb.binop(BinOp::Mul, p, c, Width::W64));
        }
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = fb.binop(BinOp::Add, acc, v, Width::W64);
        }
        fb.ret(Some(acc));
        mb.finish_function(fb);
        let module = mb.finish();
        let dual = emit_dual(&module).expect("pressure module lowers");
        assert!(
            dual.sb.functions[0]
                .code
                .iter()
                .any(|i| matches!(i, MachInst::Salloc { rd, .. } if *rd == SB_SPILL_BASE)),
            "expected a spill area under pressure"
        );
        assert_parity(&module);
    }

    #[test]
    fn sign_extension_idiom_fuses_to_movsx_and_stays_in_parity() {
        // `(p << 56) >> 56` feeding arithmetic: the driver fuses the pair
        // into Backend::sext, so x86 carries a genuine `movsx` while SB
        // keeps the two shifts — and both must lift to the identical
        // shift-pair IR.
        let mut mb = manta_ir::ModuleBuilder::new("sext");
        let (_, mut fb) = mb.function("widen", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let c = fb.const_int(56, Width::W64);
        let hi = fb.binop(BinOp::Shl, p, c, Width::W64);
        let lo = fb.binop(BinOp::Shr, hi, c, Width::W64);
        // The extended value feeds arithmetic, not just a load.
        let sum = fb.binop(BinOp::Add, lo, p, Width::W64);
        fb.ret(Some(sum));
        mb.finish_function(fb);
        let module = mb.finish();
        let dual = emit_dual(&module).expect("sext module lowers");
        let f = &dual.x86.functions[0];
        let body = &dual.x86.text[f.offset as usize..(f.offset + f.len) as usize];
        let decoded = manta_x86::decode_all(body).expect("decodes");
        assert!(
            decoded
                .iter()
                .any(|(i, _, _)| matches!(i, XInst::MovSx { .. })),
            "x86 encoding should carry a movsx for the fused idiom"
        );
        let sb_code = &dual.sb.functions[0].code;
        assert!(
            sb_code
                .iter()
                .any(|i| matches!(i, MachInst::Bin { op: BinOp::Shl, .. }))
                && sb_code
                    .iter()
                    .any(|i| matches!(i, MachInst::Bin { op: BinOp::Shr, .. })),
            "SB encoding stages the extension as a shift pair"
        );
        assert_parity(&module);
    }

    #[test]
    fn unfused_shifts_still_lower_and_match() {
        // A shr whose shl operand has a second consumer must NOT fuse —
        // both encodings keep the raw shift pair and still agree.
        let mut mb = manta_ir::ModuleBuilder::new("noextfuse");
        let (_, mut fb) = mb.function("keep", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let c = fb.const_int(48, Width::W64);
        let hi = fb.binop(BinOp::Shl, p, c, Width::W64);
        let lo = fb.binop(BinOp::Shr, hi, c, Width::W64);
        // Second use of the shl result blocks fusion.
        let keep = fb.binop(BinOp::Xor, hi, lo, Width::W64);
        fb.ret(Some(keep));
        mb.finish_function(fb);
        let module = mb.finish();
        let dual = emit_dual(&module).expect("module lowers");
        let f = &dual.x86.functions[0];
        let body = &dual.x86.text[f.offset as usize..(f.offset + f.len) as usize];
        let decoded = manta_x86::decode_all(body).expect("decodes");
        assert!(
            !decoded
                .iter()
                .any(|(i, _, _)| matches!(i, XInst::MovSx { .. })),
            "multi-use shl must not fuse into movsx"
        );
        assert_parity(&module);
    }

    #[test]
    fn rejects_constructs_outside_the_common_subset() {
        let mut mb = manta_ir::ModuleBuilder::new("bad");
        let (_, mut fb) = mb.function("divides", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let c = fb.const_int(3, Width::W64);
        let d = fb.binop(BinOp::Div, p, c, Width::W64);
        fb.ret(Some(d));
        mb.finish_function(fb);
        let module = mb.finish();
        let e = emit_dual(&module).unwrap_err();
        assert!(e.message.contains("div"), "{e}");
    }
}
