//! Ground truth emitted alongside generated programs.
//!
//! Keys are *function names* (stable across preprocessing — loop unrolling
//! rewrites instruction ids but never function names), mirroring how the
//! paper matches binary-level results back to source via `.debug_line`.

use std::collections::{BTreeMap, BTreeSet};

use manta_ir::Type;

/// Identifies a function parameter by function name and position.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ParamKey {
    /// Function name.
    pub func: String,
    /// Zero-based parameter index.
    pub index: usize,
}

impl ParamKey {
    /// Shorthand constructor.
    pub fn new(func: impl Into<String>, index: usize) -> ParamKey {
        ParamKey {
            func: func.into(),
            index,
        }
    }
}

/// The vulnerability classes of injected bugs (mirrors
/// `manta_clients::BugKind`, duplicated here so workloads do not depend on
/// the clients crate).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BugClass {
    /// Null pointer dereference.
    Npd,
    /// Return stack address.
    Rsa,
    /// Use after free.
    Uaf,
    /// Command injection.
    Cmi,
    /// Buffer overflow.
    Bof,
}

/// One injected bug site (or decoy).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InjectedBug {
    /// The vulnerability class.
    pub class: BugClass,
    /// The function containing the sink.
    pub func: String,
    /// `true` for a real, feasible bug; `false` for a decoy whose path is
    /// infeasible (type-pruning should eliminate it).
    pub real: bool,
}

/// Everything the evaluation oracle knows about a generated program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct GroundTruth {
    /// Source (first-layer-relevant) type of each function parameter.
    pub param_types: BTreeMap<ParamKey, Type>,
    /// Generator archetype per parameter (diagnostics/calibration only).
    pub param_archetypes: BTreeMap<ParamKey, String>,
    /// Source-level feasible target sets per indirect call: function name →
    /// ordinal of the icall within it → feasible target function names.
    pub icall_targets: BTreeMap<(String, usize), BTreeSet<String>>,
    /// Names of address-taken functions.
    pub address_taken: BTreeSet<String>,
    /// Injected bugs and decoys (firmware workloads only).
    pub bugs: Vec<InjectedBug>,
    /// Ground-truth source–sink pairs per bug class for the slicing
    /// similarity experiment: (class, sink function name, real flag).
    pub source_sink_pairs: Vec<InjectedBug>,
}

impl GroundTruth {
    /// Number of scored parameters.
    pub fn param_count(&self) -> usize {
        self.param_types.len()
    }

    /// The real injected bugs of a class.
    pub fn real_bugs(&self, class: BugClass) -> impl Iterator<Item = &InjectedBug> {
        self.bugs.iter().filter(move |b| b.class == class && b.real)
    }

    /// The decoy injected bugs of a class.
    pub fn decoys(&self, class: BugClass) -> impl Iterator<Item = &InjectedBug> {
        self.bugs
            .iter()
            .filter(move |b| b.class == class && !b.real)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::Width;

    #[test]
    fn truth_accessors() {
        let mut t = GroundTruth::default();
        t.param_types
            .insert(ParamKey::new("f", 0), Type::Int(Width::W64));
        t.bugs.push(InjectedBug {
            class: BugClass::Cmi,
            func: "f".into(),
            real: true,
        });
        t.bugs.push(InjectedBug {
            class: BugClass::Cmi,
            func: "g".into(),
            real: false,
        });
        t.bugs.push(InjectedBug {
            class: BugClass::Npd,
            func: "h".into(),
            real: true,
        });
        assert_eq!(t.param_count(), 1);
        assert_eq!(t.real_bugs(BugClass::Cmi).count(), 1);
        assert_eq!(t.decoys(BugClass::Cmi).count(), 1);
        assert_eq!(t.real_bugs(BugClass::Npd).count(), 1);
    }
}
