//! The evaluation suites: the 14 "open-source projects" (named and
//! size-scaled after the paper's Table 3 targets), the 104-binary
//! coreutils-like micro suite, and the nine firmware images of Table 5.
//!
//! Paper KLoC is scaled to laptop-friendly function counts while keeping
//! the relative project ordering, so the scalability figure (Figure 10)
//! still sweeps over an order of magnitude of program size.

use crate::firmware::FirmwareSpec;
use crate::generator::{generate, GenSpec, GeneratedProgram};
use crate::mix::PhenomenonMix;

use crate::rng::ChaCha8Rng;

/// A named project workload.
#[derive(Clone, Debug)]
pub struct ProjectSpec {
    /// Project name (matches the paper's tables).
    pub name: String,
    /// Nominal KLoC label from the paper.
    pub kloc: f64,
    /// Regular function count after scaling.
    pub functions: usize,
    /// Phenomenon mix (jittered per project).
    pub mix: PhenomenonMix,
    /// Seed.
    pub seed: u64,
}

impl ProjectSpec {
    /// Generates the project's program.
    pub fn generate(&self) -> GeneratedProgram {
        generate(&GenSpec {
            name: self.name.clone(),
            functions: self.functions,
            mix: self.mix,
            seed: self.seed,
        })
    }
}

/// Per-project jitter so projects are not statistical clones: each weight
/// is scaled by a seeded factor in `[1-amount, 1+amount]`.
fn jitter(mix: PhenomenonMix, seed: u64, amount: f64) -> PhenomenonMix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6a77);
    let mut j = |w: f64| w * (1.0 + rng.gen_range(-amount..amount));
    PhenomenonMix {
        local_reveal: j(mix.local_reveal),
        interproc_reveal: j(mix.interproc_reveal),
        poly_shared: j(mix.poly_shared),
        branch_cast: j(mix.branch_cast),
        unmodeled: j(mix.unmodeled),
        wrong_int: j(mix.wrong_int),
        callsite_cast: j(mix.callsite_cast),
        numeric_abstract: j(mix.numeric_abstract),
        union_rate: j(mix.union_rate).min(1.0),
        stack_recycle_rate: j(mix.stack_recycle_rate).min(1.0),
        icall_rate: j(mix.icall_rate).min(1.0),
        loop_rate: j(mix.loop_rate).min(1.0),
        struct_ptr_rate: mix.struct_ptr_rate,
    }
}

/// The 14 projects of Table 3/4 with their paper KLoC labels.
pub fn project_suite() -> Vec<ProjectSpec> {
    let paper: [(&str, f64); 14] = [
        ("vsftpd", 16.0),
        ("libuv", 36.0),
        ("memcached", 48.0),
        ("lighttpd", 89.0),
        ("tmux", 110.0),
        ("openssh", 119.0),
        ("wolfssl", 122.0),
        ("redis", 179.0),
        ("libicu", 317.0),
        ("vim", 416.0),
        ("python", 560.0),
        ("wrk", 594.0),
        ("ffmpeg", 1213.0),
        ("php", 1358.0),
    ];
    paper
        .iter()
        .enumerate()
        .map(|(i, &(name, kloc))| {
            let functions = ((kloc / 4.0) as usize).clamp(8, 300);
            ProjectSpec {
                name: name.to_string(),
                kloc,
                functions,
                mix: jitter(PhenomenonMix::balanced(), 1000 + i as u64, 0.25),
                seed: 5000 + i as u64,
            }
        })
        .collect()
}

/// The coreutils-like suite: 104 small separate binaries.
pub fn coreutils_suite() -> Vec<ProjectSpec> {
    (0..104)
        .map(|i| ProjectSpec {
            name: format!("coreutil_{i:03}"),
            kloc: 1.1,
            functions: 2 + (i % 3),
            mix: jitter(PhenomenonMix::balanced(), 9000 + i as u64, 0.35),
            seed: 7000 + i as u64,
        })
        .collect()
}

/// The nine firmware images of Table 5.
pub fn firmware_suite() -> Vec<FirmwareSpec> {
    let models: [(&str, usize); 9] = [
        ("Netgear_SXR80", 46),
        ("Zyxel_NR7101", 20),
        ("Tenda_A15", 24),
        ("TRENDNet_TEW755AP", 60),
        ("ASUS_RT_AX56U", 22),
        ("TOTOLink_LR350", 16),
        ("TOTOLink_NR1800X", 28),
        ("TPLink_WR940N", 72),
        ("H3C_MagicR200", 18),
    ];
    models
        .iter()
        .enumerate()
        .map(|(i, &(name, scale))| FirmwareSpec {
            name: name.to_string(),
            // Bug volume tracks the paper's report counts loosely.
            real_bugs_per_class: 1 + scale / 20,
            decoys_per_class: 1 + scale / 14,
            noise_functions: scale,
            seed: 3000 + i as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shapes() {
        let p = project_suite();
        assert_eq!(p.len(), 14);
        assert_eq!(p[0].name, "vsftpd");
        assert_eq!(p[13].name, "php");
        assert!(
            p[13].functions > p[0].functions,
            "php must be larger than vsftpd"
        );
        assert_eq!(coreutils_suite().len(), 104);
        assert_eq!(firmware_suite().len(), 9);
    }

    #[test]
    fn small_project_generates() {
        let spec = &project_suite()[0];
        let g = spec.generate();
        manta_ir::verify::verify_module(&g.module).unwrap();
        assert!(g.truth.param_count() > 0);
    }

    #[test]
    fn jitter_is_deterministic_but_varies() {
        let base = PhenomenonMix::balanced();
        let a = jitter(base, 1, 0.25);
        let b = jitter(base, 1, 0.25);
        let c = jitter(base, 2, 0.25);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
