//! The synthetic program generator.
//!
//! Programs are emitted directly as stripped [`manta_ir::Module`]s (the
//! SB-ISA path is exercised separately by the examples and integration
//! tests; analytically the two are equivalent because the lifter's output
//! is exactly this IR). Every function parameter is assigned an
//! *archetype* (see [`crate::mix::PhenomenonMix`]) that determines which
//! usage gadget is emitted for it, and therefore how each inference
//! sensitivity will fare on it. The intended source type of every
//! parameter is recorded in the [`GroundTruth`].

use crate::rng::ChaCha8Rng;

use manta_ir::{
    BinOp, CmpPred, ExternId, FuncId, FunctionBuilder, Module, ModuleBuilder, Type, ValueId, Width,
};

use crate::mix::{Archetype, PhenomenonMix};
use crate::truth::{GroundTruth, ParamKey};

/// A generation request.
#[derive(Clone, Debug)]
pub struct GenSpec {
    /// Module name.
    pub name: String,
    /// Number of regular (scored) functions.
    pub functions: usize,
    /// Phenomenon rates.
    pub mix: PhenomenonMix,
    /// RNG seed.
    pub seed: u64,
}

/// A generated program: the stripped module plus its scoring oracle.
#[derive(Debug)]
pub struct GeneratedProgram {
    /// The stripped module (no type information anywhere).
    pub module: Module,
    /// The evaluation oracle.
    pub truth: GroundTruth,
}

/// Ground-truth parameter types used by the generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum GtTy {
    Int64,
    StrPtr,
    ObjPtr,
    Double,
}

impl GtTy {
    fn to_type(self) -> Type {
        match self {
            GtTy::Int64 => Type::Int(Width::W64),
            GtTy::StrPtr => Type::byte_ptr(),
            GtTy::ObjPtr => Type::ptr(Type::object(vec![
                (0, Type::Int(Width::W64)),
                (8, Type::byte_ptr()),
            ])),
            GtTy::Double => Type::Double,
        }
    }

    fn is_ptr(self) -> bool {
        matches!(self, GtTy::StrPtr | GtTy::ObjPtr)
    }
}

struct Ctx {
    mb: ModuleBuilder,
    truth: GroundTruth,
    rng: ChaCha8Rng,
    mix: PhenomenonMix,
    // Modeled externs.
    malloc: ExternId,
    printf_d: ExternId,
    printf_s: ExternId,
    strlen: ExternId,
    fabs: ExternId,
    vendors: Vec<ExternId>,
    // Shared typed reveal helpers (archetype B): name, id.
    bderef_str: FuncId,
    bint: FuncId,
    // Indirect-call candidate pool: (id, name, source param kinds).
    cb_pool: Vec<(FuncId, String, Vec<CbParam>)>,
    // Shared infrastructure for globally-routed polymorphic icall args:
    // (config global, forwarding helper).
    icall_poly: Option<(manta_ir::GlobalId, FuncId)>,
    // Counter for unique helper names.
    fresh: usize,
}

impl Ctx {
    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}_{}", self.fresh)
    }
}

/// Generates a program from `spec`.
pub fn generate(spec: &GenSpec) -> GeneratedProgram {
    let mut mb = ModuleBuilder::new(spec.name.clone());
    let malloc = mb.extern_fn("malloc", &[], None);
    let printf_d = mb.extern_fn("printf_d", &[], None);
    let printf_s = mb.extern_fn("printf_s", &[], None);
    let strlen = mb.extern_fn("strlen", &[], None);
    let fabs = mb.extern_fn("fabs", &[], None);
    let vendors: Vec<ExternId> = (0..4)
        .map(|i| mb.extern_fn(&format!("vendor_op{i}"), &[Width::W64], Some(Width::W64)))
        .collect();

    // Shared archetype-B helpers: consistent contexts, reveal inside the
    // callee. One per ground-truth type so unification classes never mix.
    let bderef_str = {
        let (id, mut fb) = mb.function("lib_strsink", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let n = fb.call_extern(strlen, &[p], Some(Width::W64)).unwrap();
        fb.ret(Some(n));
        mb.finish_function(fb);
        id
    };
    let bint = {
        let (id, mut fb) = mb.function("lib_intsink", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let fmt = fb.alloca(8);
        fb.call_extern(printf_d, &[fmt, p], Some(Width::W32));
        fb.ret(Some(p));
        mb.finish_function(fb);
        id
    };
    // The B helpers' own parameters are scored too; record their truth.
    let mut truth = GroundTruth::default();
    truth
        .param_types
        .insert(ParamKey::new("lib_strsink", 0), GtTy::StrPtr.to_type());
    truth
        .param_types
        .insert(ParamKey::new("lib_intsink", 0), GtTy::Int64.to_type());

    let mut ctx = Ctx {
        mb,
        truth,
        rng: ChaCha8Rng::seed_from_u64(spec.seed),
        mix: spec.mix,
        malloc,
        printf_d,
        printf_s,
        strlen,
        fabs,
        vendors,
        bderef_str,
        bint,
        cb_pool: Vec::new(),
        icall_poly: None,
        fresh: 0,
    };

    build_icall_pools(&mut ctx, spec);
    build_icall_poly_route(&mut ctx, spec);
    for i in 0..spec.functions {
        build_regular_function(&mut ctx, i);
    }

    let module = ctx.mb.finish();
    manta_ir::verify::assert_valid(&module);
    GeneratedProgram {
        module,
        truth: ctx.truth,
    }
}

/// Source-level parameter kinds of indirect-call candidates (the oracle
/// matches on these, per the paper's source-level ground-truth analysis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CbParam {
    /// 64-bit integer.
    Int64,
    /// 32-bit integer — arity-compatible everywhere, width-incompatible
    /// with 64-bit arguments (the evidence τ-CFI exploits over TypeArmor).
    Int32,
    /// String pointer.
    Ptr,
}

impl CbParam {
    fn compatible(self, arg: ArgKind) -> bool {
        match (self, arg) {
            (CbParam::Int64, ArgKind::Int) => true,
            (CbParam::Ptr, ArgKind::Ptr) => true,
            // A union-typed or unknown argument is *source-typed* by the
            // intent recorded at the site; type checks use that intent.
            _ => false,
        }
    }

    fn width(self) -> Width {
        match self {
            CbParam::Int32 => Width::W32,
            _ => Width::W64,
        }
    }
}

/// Shared route for icall arguments whose pointer provenance is a global
/// initialized elsewhere and forwarded through a polymorphic helper: the
/// flow-insensitive stage over-approximates (the helper is also called with
/// an integer), the flow-sensitive stage finds no CFG-reachable hint (the
/// initialization is in another root), and only the context-sensitive DDG
/// traversal types it — the Table 4 separation between FI+FS and FI+CS+FS.
fn build_icall_poly_route(ctx: &mut Ctx, spec: &GenSpec) {
    if spec.functions < 6 {
        return;
    }
    let g = ctx.mb.global("g_dispatch_cfg", 8);
    // Initialization root: stores a heap buffer into the global.
    let (_, mut ib) = ctx.mb.function("init_dispatch", &[], Some(Width::W64));
    let sz = ib.const_int(64, Width::W64);
    let buf = ib.call_extern(ctx.malloc, &[sz], Some(Width::W64)).unwrap();
    let ga = ib.global_addr(g);
    ib.store(ga, buf);
    let k = ib.const_int(1, Width::W64);
    ib.ret(Some(k));
    ctx.mb.finish_function(ib);
    // Polymorphic forwarder.
    let (fwd, mut sb) = ctx
        .mb
        .function("ipoly_fwd", &[Width::W64], Some(Width::W64));
    let x = sb.param(0);
    let slot = sb.alloca(8);
    sb.store(slot, x);
    let v = sb.load(slot, Width::W64);
    sb.ret(Some(v));
    ctx.mb.finish_function(sb);
    // Integer pollution context.
    let (_, mut pb) = ctx.mb.function("ipoly_pollute", &[], Some(Width::W64));
    let k = pb.const_int(77, Width::W64);
    let fmt = pb.alloca(8);
    pb.call_extern(ctx.printf_d, &[fmt, k], Some(Width::W32));
    let r = pb.call(fwd, &[k], Some(Width::W64)).unwrap();
    pb.ret(Some(r));
    ctx.mb.finish_function(pb);
    ctx.icall_poly = Some((g, fwd));
}

/// The source-intended kind of an indirect-call argument.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ArgKind {
    Int,
    Ptr,
}

/// Address-taken callback pools for indirect-call sites. Signatures vary
/// in arity (0–2) and width so the count-based (TypeArmor), width-based
/// (τ-CFI) and type-based (Manta) clients separate.
fn build_icall_pools(ctx: &mut Ctx, spec: &GenSpec) {
    if spec.functions < 6 {
        return; // tiny binaries (coreutils-style) have no function-pointer tables
    }
    let n = (spec.functions / 10).clamp(2, 10);
    let shapes: [(&str, &[CbParam]); 5] = [
        ("cb_int", &[CbParam::Int64]),
        ("cb_str", &[CbParam::Ptr]),
        ("cb_nar", &[CbParam::Int32]),
        ("cb_two", &[CbParam::Ptr, CbParam::Int64]),
        ("cb_nil", &[]),
    ];
    for i in 0..n {
        for (prefix, params) in shapes {
            if prefix == "cb_nar" && i != 0 {
                continue; // narrow-width shapes are the rarer minority
            }
            let name = format!("{prefix}{i}");
            let widths: Vec<Width> = params.iter().map(|p| p.width()).collect();
            let (id, mut fb) = ctx.mb.function(&name, &widths, Some(Width::W64));
            // Reveal each parameter per its source type.
            for (pi, kind) in params.iter().enumerate() {
                let p = fb.param(pi);
                match kind {
                    CbParam::Ptr => {
                        fb.call_extern(ctx.strlen, &[p], Some(Width::W64));
                    }
                    CbParam::Int64 | CbParam::Int32 => {
                        let fmt = fb.alloca(8);
                        fb.call_extern(ctx.printf_d, &[fmt, p], Some(Width::W32));
                    }
                }
            }
            let k = fb.const_int(3 + i as i64, Width::W64);
            fb.ret(Some(k));
            ctx.mb.finish_function(fb);
            ctx.mb.mark_address_taken(id);
            for (pi, kind) in params.iter().enumerate() {
                let gt = match kind {
                    CbParam::Ptr => GtTy::StrPtr.to_type(),
                    CbParam::Int64 => Type::Int(Width::W64),
                    CbParam::Int32 => Type::Int(Width::W32),
                };
                ctx.truth.param_types.insert(ParamKey::new(&name, pi), gt);
                ctx.truth
                    .param_archetypes
                    .insert(ParamKey::new(&name, pi), "Callback".into());
            }
            ctx.truth.address_taken.insert(name.clone());
            ctx.cb_pool.push((id, name, params.to_vec()));
        }
    }
}

fn pick_archetypes(ctx: &mut Ctx, count: usize) -> Vec<Archetype> {
    // Partition: a function is either "driven" (has a caller building its
    // arguments: BranchCast / CallsiteCast archetypes) or a "root" (no
    // callers: everything else). Mixing both in one function would let the
    // driver's hints leak into archetypes that must stay caller-less.
    let weights = ctx.mix.archetype_weights();
    let driven_w: f64 = weights
        .iter()
        .filter(|(a, _)| matches!(a, Archetype::BranchCast | Archetype::CallsiteCast))
        .map(|(_, w)| w)
        .sum();
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let driven = ctx.rng.gen_bool((driven_w / total).clamp(0.0, 1.0));
    let allowed: Vec<(Archetype, f64)> = weights
        .iter()
        .copied()
        .filter(|(a, _)| {
            let is_driven_arch = matches!(a, Archetype::BranchCast | Archetype::CallsiteCast);
            is_driven_arch == driven
        })
        .collect();
    let sum: f64 = allowed.iter().map(|(_, w)| w).sum();
    (0..count)
        .map(|_| {
            let mut x = ctx.rng.gen_range(0.0..sum.max(f64::MIN_POSITIVE));
            for &(a, w) in &allowed {
                if x < w {
                    return a;
                }
                x -= w;
            }
            allowed.last().expect("non-empty archetype set").0
        })
        .collect()
}

fn build_regular_function(ctx: &mut Ctx, index: usize) {
    let nparams = ctx.rng.gen_range(1..=3);
    let archetypes = pick_archetypes(ctx, nparams);
    let name = format!("fn_{index}");
    let widths = vec![Width::W64; nparams];
    let (fid, mut fb) = ctx.mb.function(&name, &widths, Some(Width::W64));

    // Choose ground-truth types per archetype.
    let gts: Vec<GtTy> = archetypes
        .iter()
        .map(|a| match a {
            Archetype::LocalReveal => match ctx.rng.gen_range(0..10) {
                0..=4 => GtTy::Int64,
                5..=7 => GtTy::StrPtr,
                8 => GtTy::ObjPtr,
                _ => GtTy::Double,
            },
            Archetype::InterprocReveal => {
                if ctx.rng.gen_bool(0.5) {
                    GtTy::StrPtr
                } else {
                    GtTy::Int64
                }
            }
            Archetype::PolyShared => GtTy::StrPtr,
            Archetype::BranchCast => GtTy::StrPtr,
            Archetype::Unmodeled => {
                if ctx.rng.gen_bool(0.5) {
                    GtTy::Int64
                } else {
                    GtTy::StrPtr
                }
            }
            Archetype::WrongInt => GtTy::StrPtr,
            Archetype::CallsiteCast => GtTy::StrPtr,
            Archetype::NumericAbstract => GtTy::Int64,
        })
        .collect();
    for (i, (gt, arch)) in gts.iter().zip(&archetypes).enumerate() {
        ctx.truth
            .param_types
            .insert(ParamKey::new(&name, i), gt.to_type());
        ctx.truth
            .param_archetypes
            .insert(ParamKey::new(&name, i), format!("{arch:?}"));
    }

    // Emit per-parameter gadgets.
    let mut needs_driver: Vec<(usize, Archetype, GtTy)> = Vec::new();
    for (i, (&arch, &gt)) in archetypes.iter().zip(&gts).enumerate() {
        let p = fb.param(i);
        match arch {
            Archetype::LocalReveal => emit_local_reveal(ctx, &mut fb, p, gt),
            Archetype::InterprocReveal => {
                let helper = if gt.is_ptr() {
                    ctx.bderef_str
                } else {
                    ctx.bint
                };
                fb.call(helper, &[p], Some(Width::W64));
            }
            Archetype::PolyShared => {
                let (sink, deref) = emit_poly_shared(ctx, i);
                fb.call(sink, &[p], Some(Width::W64));
                fb.call(deref, &[p], Some(Width::W64));
            }
            Archetype::BranchCast => {
                emit_branch_cast(ctx, &mut fb, p);
                needs_driver.push((i, arch, gt));
            }
            Archetype::Unmodeled => {
                let v = ctx.vendors[ctx.rng.gen_range(0..ctx.vendors.len())];
                fb.call_extern(v, &[p], Some(Width::W64));
            }
            Archetype::WrongInt => emit_wrong_int(ctx, &mut fb, p),
            Archetype::CallsiteCast => {
                // Local pointer reveal; the conflicting hint comes from the
                // driver's cast at the call site.
                fb.load(p, Width::W64);
                needs_driver.push((i, arch, gt));
            }
            Archetype::NumericAbstract => {
                let two = fb.const_int(2, Width::W64);
                let sq = fb.binop(BinOp::Mul, p, two, Width::W64);
                let _ = fb.binop(BinOp::Xor, sq, p, Width::W64);
            }
        }
    }

    // Function-level phenomena.
    if ctx.rng.gen_bool(ctx.mix.union_rate) {
        emit_union_gadget(ctx, &mut fb);
    }
    if ctx.rng.gen_bool(ctx.mix.stack_recycle_rate) {
        emit_stack_recycle(ctx, &mut fb);
    }
    if ctx.rng.gen_bool(ctx.mix.loop_rate) {
        emit_loop(ctx, &mut fb);
    }
    if ctx.rng.gen_bool(ctx.mix.icall_rate) {
        emit_icall(ctx, &mut fb, &name);
    }
    // Deterministically (no RNG draw, so seeded streams are unchanged)
    // give every third function a genuine multi-object flow. Without it
    // every slot in the module holds at most one abstract object — the
    // union/recycle gadgets pair a pointer with a *constant int*, which
    // contributes nothing to points-to — and `pointsto.peak_pts` flatlines
    // at 1 on realistic projects.
    if index.is_multiple_of(3) {
        emit_multi_alias(ctx, &mut fb);
    }

    let ret = fb.const_int(1 + index as i64, Width::W64);
    fb.ret(Some(ret));
    ctx.mb.finish_function(fb);

    // Driver for branch-cast / callsite-cast parameters.
    if !needs_driver.is_empty() {
        emit_driver(ctx, fid, nparams, &needs_driver);
    }
}

/// Archetype A: a consistent modeled-extern reveal in the function itself.
fn emit_local_reveal(ctx: &mut Ctx, fb: &mut FunctionBuilder, p: ValueId, gt: GtTy) {
    match gt {
        GtTy::Int64 => {
            let fmt = fb.alloca(8);
            fb.call_extern(ctx.printf_d, &[fmt, p], Some(Width::W32));
        }
        GtTy::StrPtr => {
            if ctx.rng.gen_bool(0.5) {
                fb.call_extern(ctx.strlen, &[p], Some(Width::W64));
            } else {
                let fmt = fb.alloca(8);
                fb.call_extern(ctx.printf_s, &[fmt, p], Some(Width::W32));
            }
        }
        GtTy::ObjPtr => {
            // Field accesses reveal pointer-ness (field-sensitive).
            let f0 = fb.gep(p, 0);
            fb.load(f0, Width::W64);
            let f8 = fb.gep(p, 8);
            fb.load(f8, Width::W64);
        }
        GtTy::Double => {
            fb.call_extern(ctx.fabs, &[p], Some(Width::W64));
        }
    }
}

/// Archetype C: builds the private helper trio for a poly-shared
/// parameter and returns `(sink, deref)` for the host to call. The sink is
/// *also* called with an integer from an unrelated pollution root, so
/// flow-insensitive unification merges the two contexts; CFL-valid
/// traversal (Algorithm 1) separates them.
fn emit_poly_shared(ctx: &mut Ctx, param_index: usize) -> (FuncId, FuncId) {
    // Private polymorphic sink: stores and reloads its argument, no hints.
    let sink_name = ctx.fresh_name("psink");
    let (sink, mut sb) = ctx.mb.function(&sink_name, &[Width::W64], Some(Width::W64));
    let x = sb.param(0);
    let slot = sb.alloca(8);
    sb.store(slot, x);
    let v = sb.load(slot, Width::W64);
    sb.ret(Some(v));
    ctx.mb.finish_function(sb);
    // The private helpers are per-parameter scaffolding; they are not
    // scored (the C2 parameter they serve is), keeping the scored
    // population composition equal to the archetype mix.

    // Private revealing callee: dereferences its parameter.
    let deref_name = ctx.fresh_name("pderef");
    let (deref, mut db) = ctx
        .mb
        .function(&deref_name, &[Width::W64], Some(Width::W64));
    let q = db.param(0);
    let w = db.load(q, Width::W64);
    db.ret(Some(w));
    ctx.mb.finish_function(db);

    // Pollution root: calls the sink with a printf-revealed integer.
    let pol_name = ctx.fresh_name("pollute");
    let (_pol, mut pb) = ctx.mb.function(&pol_name, &[], Some(Width::W64));
    let k = pb.const_int(40 + param_index as i64, Width::W64);
    let fmt = pb.alloca(8);
    pb.call_extern(ctx.printf_d, &[fmt, k], Some(Width::W32));
    let r = pb.call(sink, &[k], Some(Width::W64)).unwrap();
    pb.ret(Some(r));
    ctx.mb.finish_function(pb);

    (sink, deref)
}

/// Archetype D: conflicting uses on opposite branches.
fn emit_branch_cast(ctx: &mut Ctx, fb: &mut FunctionBuilder, p: ValueId) {
    let probe = fb
        .call_extern(ctx.vendors[0], &[p], Some(Width::W64))
        .unwrap();
    let zero = fb.const_int(0, Width::W64);
    let c = fb.cmp(CmpPred::Ne, probe, zero);
    let bb_ptr = fb.new_block();
    let bb_int = fb.new_block();
    let bb_join = fb.new_block();
    fb.cond_br(c, bb_ptr, bb_int);
    fb.switch_to(bb_ptr);
    fb.load(p, Width::W64); // pointer use
    fb.br(bb_join);
    fb.switch_to(bb_int);
    let three = fb.const_int(3, Width::W64);
    fb.binop(BinOp::Mul, p, three, Width::W64); // numeric (cast) use
    fb.br(bb_join);
    fb.switch_to(bb_join);
}

/// Archetype W: the only hint is a comparison with `-1` (§6.4).
fn emit_wrong_int(ctx: &mut Ctx, fb: &mut FunctionBuilder, p: ValueId) {
    let neg = fb.const_int(-1, Width::W64);
    let c = fb.cmp(CmpPred::Eq, p, neg);
    let bb_err = fb.new_block();
    let bb_ok = fb.new_block();
    fb.cond_br(c, bb_err, bb_ok);
    fb.switch_to(bb_err);
    let v = ctx.vendors[1];
    fb.call_extern(v, &[p], Some(Width::W64));
    fb.br(bb_ok);
    fb.switch_to(bb_ok);
}

/// The Figure-3 union gadget: one slot, two branch-local types.
fn emit_union_gadget(ctx: &mut Ctx, fb: &mut FunctionBuilder) {
    let slot = fb.alloca(8);
    let sel = fb
        .call_extern(ctx.vendors[2], &[slot], Some(Width::W64))
        .unwrap();
    let zero = fb.const_int(0, Width::W64);
    let c = fb.cmp(CmpPred::Eq, sel, zero);
    let bb_i = fb.new_block();
    let bb_p = fb.new_block();
    let bb_j = fb.new_block();
    fb.cond_br(c, bb_i, bb_p);
    fb.switch_to(bb_i);
    let k = fb.const_int(11, Width::W64);
    fb.store(slot, k);
    let vi = fb.load(slot, Width::W64);
    let fmt = fb.alloca(8);
    fb.call_extern(ctx.printf_d, &[fmt, vi], Some(Width::W32));
    fb.br(bb_j);
    fb.switch_to(bb_p);
    let sz = fb.const_int(24, Width::W64);
    let buf = fb.call_extern(ctx.malloc, &[sz], Some(Width::W64)).unwrap();
    fb.store(slot, buf);
    let vp = fb.load(slot, Width::W64);
    let fmt = fb.alloca(8);
    fb.call_extern(ctx.printf_s, &[fmt, vp], Some(Width::W32));
    fb.br(bb_j);
    fb.switch_to(bb_j);
}

/// Two *distinct* heap objects funneled through one slot on two branches:
/// the load after the join may-points-to both allocation sites. This is the
/// module's only guaranteed source of |pts| > 1, so the `pointsto.peak_pts`
/// telemetry (and the bench suite asserting on it) exercises real
/// multi-object sets. Deterministic — consumes no RNG draws.
fn emit_multi_alias(ctx: &mut Ctx, fb: &mut FunctionBuilder) {
    let slot = fb.alloca(8);
    let sel = fb
        .call_extern(ctx.vendors[0], &[slot], Some(Width::W64))
        .unwrap();
    let zero = fb.const_int(0, Width::W64);
    let c = fb.cmp(CmpPred::Eq, sel, zero);
    let bb_a = fb.new_block();
    let bb_b = fb.new_block();
    let bb_j = fb.new_block();
    fb.cond_br(c, bb_a, bb_b);
    fb.switch_to(bb_a);
    let sz_a = fb.const_int(32, Width::W64);
    let buf_a = fb
        .call_extern(ctx.malloc, &[sz_a], Some(Width::W64))
        .unwrap();
    fb.store(slot, buf_a);
    fb.br(bb_j);
    fb.switch_to(bb_b);
    let sz_b = fb.const_int(48, Width::W64);
    let buf_b = fb
        .call_extern(ctx.malloc, &[sz_b], Some(Width::W64))
        .unwrap();
    fb.store(slot, buf_b);
    fb.br(bb_j);
    fb.switch_to(bb_j);
    let either = fb.load(slot, Width::W64);
    fb.load(either, Width::W64);
}

/// Stack recycling: the same slot holds an int early and a pointer later.
fn emit_stack_recycle(ctx: &mut Ctx, fb: &mut FunctionBuilder) {
    let slot = fb.alloca(8);
    let k = fb.const_int(5, Width::W64);
    fb.store(slot, k);
    let early = fb.load(slot, Width::W64);
    let fmt = fb.alloca(8);
    fb.call_extern(ctx.printf_d, &[fmt, early], Some(Width::W32));
    // Later region (same block suffices; the discriminator is flow order).
    let sz = fb.const_int(16, Width::W64);
    let buf = fb.call_extern(ctx.malloc, &[sz], Some(Width::W64)).unwrap();
    fb.store(slot, buf);
    let late = fb.load(slot, Width::W64);
    fb.load(late, Width::W64);
}

/// A bounded counting loop (preprocessing unrolls it).
fn emit_loop(ctx: &mut Ctx, fb: &mut FunctionBuilder) {
    let n = fb.const_int(4 + ctx.rng.gen_range(0..4i64), Width::W64);
    let entry = fb.current_block();
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.br(head);
    fb.switch_to(head);
    let one = fb.const_int(1, Width::W64);
    // The loop-carried value: a phi over the init and a body-defined
    // placeholder (the analyses only need the cyclic CFG shape).
    let carried = fb.const_int(1, Width::W64);
    let i = fb.phi(&[(entry, n), (body, carried)], Width::W64);
    let zero = fb.const_int(0, Width::W64);
    let c = fb.cmp(CmpPred::Gt, i, zero);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    fb.binop(BinOp::Sub, i, one, Width::W64);
    fb.br(head);
    fb.switch_to(exit);
}

/// An indirect call with a source-level oracle target set. Argument
/// *provenance* varies: cleanly revealed values, union-loaded values the
/// binary analysis over-approximates, and vendor-returned unknowns — so the
/// binary-level client cannot always match the source oracle.
fn emit_icall(ctx: &mut Ctx, fb: &mut FunctionBuilder, host: &str) {
    if ctx.cb_pool.is_empty() {
        return;
    }
    // Site shape: one or two arguments.
    let two_args = ctx.rng.gen_bool(0.35);
    let mut arg_kinds: Vec<ArgKind> = Vec::new();
    let mut args: Vec<ValueId> = Vec::new();
    let n_args = if two_args { 2 } else { 1 };
    for ai in 0..n_args {
        let mut intended = if ai == 0 && two_args {
            ArgKind::Ptr
        } else if ctx.rng.gen_bool(0.5) {
            ArgKind::Int
        } else {
            ArgKind::Ptr
        };
        // Provenance: 35% revealed, 30% branch-union (stays
        // over-approximated for every stage), 15% global-poly route (only
        // the context-sensitive stage resolves it), 20% unknown.
        let roll: f64 = ctx.rng.gen();
        let v = if roll < 0.35 {
            match intended {
                ArgKind::Int => {
                    // Revealed only interprocedurally (inside the shared
                    // library sink): the flow-insensitive stage types it,
                    // intraprocedural flow-sensitive analysis cannot.
                    let probe = fb.alloca(8);
                    let raw = fb
                        .call_extern(ctx.vendors[1], &[probe], Some(Width::W64))
                        .unwrap();
                    fb.call(ctx.bint, &[raw], Some(Width::W64)).unwrap()
                }
                ArgKind::Ptr => {
                    let sz = fb.const_int(32, Width::W64);
                    fb.call_extern(ctx.malloc, &[sz], Some(Width::W64)).unwrap()
                }
            }
        } else if roll < 0.47 {
            // Recycled slot: an int then (per intent, possibly) a pointer
            // stored sequentially — the flow-sensitive per-site refinement
            // picks the last store; flow-insensitive merges both.
            let slot = fb.alloca(8);
            let sz = fb.const_int(16, Width::W64);
            let buf = fb.call_extern(ctx.malloc, &[sz], Some(Width::W64)).unwrap();
            let n = fb
                .call_extern(ctx.strlen, &[buf], Some(Width::W64))
                .unwrap();
            match intended {
                ArgKind::Int => {
                    fb.store(slot, buf);
                    fb.store(slot, n);
                }
                ArgKind::Ptr => {
                    fb.store(slot, n);
                    fb.store(slot, buf);
                }
            }
            fb.load(slot, Width::W64)
        } else if roll < 0.65 {
            // Branch union: an int and a pointer stored on opposite
            // branches, merged at the join — every stage keeps both
            // families feasible.
            let slot = fb.alloca(8);
            let sz = fb.const_int(16, Width::W64);
            let buf = fb.call_extern(ctx.malloc, &[sz], Some(Width::W64)).unwrap();
            let n = fb
                .call_extern(ctx.strlen, &[buf], Some(Width::W64))
                .unwrap();
            let zero = fb.const_int(0, Width::W64);
            let c = fb.cmp(CmpPred::Gt, n, zero);
            let bi = fb.new_block();
            let bp = fb.new_block();
            let bj = fb.new_block();
            fb.cond_br(c, bi, bp);
            fb.switch_to(bi);
            fb.store(slot, n);
            fb.br(bj);
            fb.switch_to(bp);
            fb.store(slot, buf);
            fb.br(bj);
            fb.switch_to(bj);
            fb.load(slot, Width::W64)
        } else if roll < 0.80 {
            intended = ArgKind::Ptr; // the global route carries a pointer
            if let Some((g, fwd)) = ctx.icall_poly {
                let ga = fb.global_addr(g);
                let x = fb.load(ga, Width::W64);
                fb.call(fwd, &[x], Some(Width::W64)).unwrap()
            } else {
                let probe = fb.alloca(8);
                fb.call_extern(ctx.vendors[0], &[probe], Some(Width::W64))
                    .unwrap()
            }
        } else {
            let probe = fb.alloca(8);
            let v = ctx.vendors[ctx.rng.gen_range(0..ctx.vendors.len())];
            fb.call_extern(v, &[probe], Some(Width::W64)).unwrap()
        };
        arg_kinds.push(intended);
        args.push(v);
    }
    // Pick a source-compatible target for the constant pointer (arbitrary;
    // the site is indirect so the analysis cannot use it).
    let feasible: Vec<&(FuncId, String, Vec<CbParam>)> = ctx
        .cb_pool
        .iter()
        .filter(|(_, _, params)| {
            params.len() <= arg_kinds.len()
                && params.iter().zip(&arg_kinds).all(|(p, &a)| p.compatible(a))
        })
        .collect();
    if feasible.is_empty() {
        return;
    }
    let (target, _, _) = feasible[ctx.rng.gen_range(0..feasible.len())];
    let fp = fb.func_addr(*target);
    fb.call_indirect(fp, &args, Some(Width::W64));

    // Source-level oracle: every address-taken function whose source
    // signature is compatible with the *intended* argument types.
    let ordinal = ctx
        .truth
        .icall_targets
        .keys()
        .filter(|(f, _)| f == host)
        .count();
    let targets: std::collections::BTreeSet<String> = ctx
        .cb_pool
        .iter()
        .filter(|(_, _, params)| {
            params.len() <= arg_kinds.len()
                && params.iter().zip(&arg_kinds).all(|(p, &a)| p.compatible(a))
        })
        .map(|(_, n, _)| n.clone())
        .collect();
    ctx.truth
        .icall_targets
        .insert((host.to_string(), ordinal), targets);
}

/// Archetype X / driver for archetype D: a root function that builds the
/// host's arguments.
fn emit_driver(ctx: &mut Ctx, host: FuncId, nparams: usize, specials: &[(usize, Archetype, GtTy)]) {
    let drv_name = ctx.fresh_name("driver");
    let (_id, mut fb) = ctx.mb.function(&drv_name, &[], Some(Width::W64));
    let mut args: Vec<ValueId> = Vec::with_capacity(nparams);
    for i in 0..nparams {
        let special = specials.iter().find(|(idx, _, _)| *idx == i);
        let arg = match special {
            Some((_, Archetype::BranchCast, _)) => {
                // A cleanly pointer-typed argument: malloc'd buffer.
                let sz = fb.const_int(64, Width::W64);
                fb.call_extern(ctx.malloc, &[sz], Some(Width::W64)).unwrap()
            }
            Some((_, Archetype::CallsiteCast, _)) => {
                // Type-unsafe: an integer-revealed value passed where a
                // pointer is declared (the flow-sensitive trap).
                let sz = fb.const_int(8, Width::W64);
                let tmp = fb.call_extern(ctx.malloc, &[sz], Some(Width::W64)).unwrap();
                fb.call_extern(ctx.strlen, &[tmp], Some(Width::W64))
                    .unwrap()
            }
            _ => fb.const_int(100 + i as i64, Width::W64),
        };
        args.push(arg);
    }
    fb.call(host, &args, Some(Width::W64));
    let r = fb.const_int(0x5a, Width::W64);
    fb.ret(Some(r));
    ctx.mb.finish_function(fb);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(functions: usize, seed: u64) -> GenSpec {
        GenSpec {
            name: "testgen".into(),
            functions,
            mix: PhenomenonMix::balanced(),
            seed,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec(20, 7));
        let b = generate(&spec(20, 7));
        assert_eq!(
            manta_ir::printer::print_module(&a.module),
            manta_ir::printer::print_module(&b.module)
        );
        assert_eq!(a.truth.param_types, b.truth.param_types);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&spec(20, 1));
        let b = generate(&spec(20, 2));
        assert_ne!(
            manta_ir::printer::print_module(&a.module),
            manta_ir::printer::print_module(&b.module)
        );
    }

    #[test]
    fn generated_module_verifies_and_scores_params() {
        let g = generate(&spec(30, 42));
        manta_ir::verify::verify_module(&g.module).unwrap();
        assert!(g.truth.param_count() > 30, "params should be scored");
        // Every truth key refers to an actual function/param.
        for key in g.truth.param_types.keys() {
            let f = g
                .module
                .function_by_name(&key.func)
                .unwrap_or_else(|| panic!("missing {}", key.func));
            assert!(key.index < f.params().len(), "{key:?} out of range");
        }
    }

    #[test]
    fn icall_truth_targets_exist() {
        let g = generate(&spec(40, 9));
        assert!(
            !g.truth.icall_targets.is_empty(),
            "icall sites should be generated"
        );
        for ((host, _), targets) in &g.truth.icall_targets {
            assert!(g.module.function_by_name(host).is_some());
            for t in targets {
                let f = g.module.function_by_name(t).expect("target exists");
                assert!(f.is_address_taken());
            }
        }
    }

    #[test]
    fn address_taken_truth_matches_module() {
        let g = generate(&spec(25, 3));
        let module_taken: std::collections::BTreeSet<String> = g
            .module
            .address_taken_functions()
            .into_iter()
            .map(|f| g.module.function(f).name().to_string())
            .collect();
        assert_eq!(module_taken, g.truth.address_taken);
    }
}
