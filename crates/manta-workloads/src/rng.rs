//! A self-contained seeded random number generator.
//!
//! The build environment cannot fetch crates, so instead of depending on
//! `rand`/`rand_chacha` this module hand-rolls a ChaCha8 keystream and
//! exposes the small slice of the `rand` API surface the generators use
//! (`seed_from_u64`, `gen_bool`, `gen_range`, `gen`). Determinism is the
//! only contract: the same seed always produces the same stream, so the
//! same workload spec always produces byte-identical programs.

/// A deterministic RNG driven by the ChaCha stream cipher with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    cursor: usize,
}

impl ChaCha8Rng {
    /// Builds the generator from a 64-bit seed (the key is expanded with
    /// SplitMix64, as `rand`'s `SeedableRng::seed_from_u64` does).
    pub fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut sm = manta_store::hash::SplitMix64(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = sm.next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // words 12..14: block counter; 14..16: nonce (zero).
        ChaCha8Rng {
            state,
            buf: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // Two ChaCha rounds (column + diagonal) per iteration.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, (a, b)) in self.buf.iter_mut().zip(x.iter().zip(self.state.iter())) {
            *o = a.wrapping_add(*b);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }

    /// The next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let w = self.buf[self.cursor];
        self.cursor += 1;
        w
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.gen()) < p
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen(&mut self) -> f64 {
        // 53 random bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range` (half-open or inclusive integer ranges,
    /// half-open float ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire-style
    /// rejection on the widening multiply).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// Ranges [`ChaCha8Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample(self, rng: &mut ChaCha8Rng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut ChaCha8Rng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut ChaCha8Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded_u64(span + 1) as i128) as $t
            }
        }
    )*};
}
int_range!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut ChaCha8Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + rng.gen() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
            let neg = rng.gen_range(-10..-2i32);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn chacha8_known_answer() {
        // ChaCha8 keystream, all-zero key and nonce: first block must match
        // the published reference stream (cross-checked with rand_chacha).
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        let mut rng = ChaCha8Rng {
            state,
            buf: [0; 16],
            cursor: 16,
        };
        let first = rng.next_u32().to_le_bytes();
        assert_eq!(first, [0x3e, 0x00, 0xef, 0x2f]);
    }
}
