//! # manta-workloads
//!
//! Deterministic synthetic workloads with ground truth for the Manta
//! evaluation.
//!
//! The paper evaluates on 14 open-source projects, the coreutils binaries
//! and nine IoT firmware images — none of which (as compiled binaries with
//! the authors' toolchain) are available to this reproduction. Following
//! the substitution rule documented in `DESIGN.md`, this crate generates
//! *stripped* [`manta_ir::Module`]s that exhibit, at controllable rates,
//! exactly the phenomena the paper's analysis confronts:
//!
//! * type-revealing uses at different distances (local, interprocedural,
//!   inside callees);
//! * polymorphic shared helpers that pollute flow-insensitive unification
//!   across calling contexts (§2.1 "Polymorphic Function");
//! * union-style branch-dependent typing and type-unsafe casts (§2.1
//!   "Union Type", "Type-Unsafe Idioms");
//! * stack-slot recycling;
//! * the pointer-compared-with-`-1` error-code idiom (§6.4);
//! * indirect calls through function-pointer tables with a source-level
//!   target oracle;
//! * unmodeled vendor externals that leave variables unknown.
//!
//! Alongside each module the generator emits a [`GroundTruth`]: the
//! DWARF-equivalent source types of every function parameter, the
//! source-level indirect-call target sets, and (for firmware images) the
//! injected true bugs and infeasible decoys. The analyses never see any of
//! this — it exists purely for scoring, like the `.debug_line` sections the
//! paper keeps for evaluation.
//!
//! All generation is seeded (a vendored ChaCha8 stream, [`rng`]); the
//! same spec always
//! produces byte-identical programs.

#![warn(missing_docs)]

pub mod dual;
pub mod firmware;
pub mod generator;
pub mod mix;
pub mod projects;
pub mod rng;
pub mod truth;

pub use dual::{emit_dual, emit_dual_bytes, DualEncoding, EmitError};
pub use firmware::{generate_firmware, FirmwareSpec};
pub use generator::{generate, GeneratedProgram};
pub use mix::PhenomenonMix;
pub use projects::{coreutils_suite, firmware_suite, project_suite, ProjectSpec};
pub use truth::{GroundTruth, InjectedBug, ParamKey};
