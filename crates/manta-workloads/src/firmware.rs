//! Synthetic IoT firmware images with injected bugs and decoys (Table 5's
//! workload).
//!
//! Each image contains, per vulnerability class, a number of *real* bugs
//! (feasible source→sink flows) and *decoys* — flows that exist in an
//! untyped DDG but are infeasible once types are known (a tainted string
//! converted to an integer before `system`, a numeric offset mistaken for
//! a null pointer, a pointer difference mistaken for an escaping stack
//! address). The decoys are exactly the false-positive populations the
//! paper attributes to SaTC, cwe_checker and Manta-NoType (§6.3).

use crate::rng::ChaCha8Rng;

use manta_ir::{BinOp, CmpPred, ModuleBuilder, Width};

use crate::generator::GeneratedProgram;
use crate::truth::{BugClass, GroundTruth, InjectedBug};

/// A firmware image request.
#[derive(Clone, Debug)]
pub struct FirmwareSpec {
    /// Vendor/model name (Table 5 rows).
    pub name: String,
    /// Real injected bugs per class.
    pub real_bugs_per_class: usize,
    /// Infeasible decoys per class.
    pub decoys_per_class: usize,
    /// Benign noise functions.
    pub noise_functions: usize,
    /// Seed.
    pub seed: u64,
}

/// Generates a firmware image.
pub fn generate_firmware(spec: &FirmwareSpec) -> GeneratedProgram {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut mb = ModuleBuilder::new(spec.name.clone());
    let malloc = mb.extern_fn("malloc", &[], None);
    let free = mb.extern_fn("free", &[], None);
    let nvram = mb.extern_fn("nvram_get", &[], None);
    let system = mb.extern_fn("system", &[], None);
    let strcpy = mb.extern_fn("strcpy", &[], None);
    let atoi = mb.extern_fn("atol", &[], None);
    let printf_d = mb.extern_fn("printf_d", &[], None);
    let strlen = mb.extern_fn("strlen", &[], None);
    let vendor = mb.extern_fn("vendor_ioctl", &[Width::W64], Some(Width::W64));
    let mut truth = GroundTruth::default();
    let record = |truth: &mut GroundTruth, class: BugClass, func: &str, real: bool| {
        let bug = InjectedBug {
            class,
            func: func.to_string(),
            real,
        };
        truth.bugs.push(bug.clone());
        truth.source_sink_pairs.push(bug);
    };

    let classes = [
        BugClass::Cmi,
        BugClass::Bof,
        BugClass::Npd,
        BugClass::Rsa,
        BugClass::Uaf,
    ];
    for class in classes {
        for k in 0..spec.real_bugs_per_class {
            let name = format!("{}_real{}", label(class), k);
            // Half of the taint-class reals route the sink value through
            // pointer-arithmetic "length math" — type-unsafe but feasible.
            // Heuristic inference (arithmetic evidence) mistypes the value
            // as an integer and *misses* the real bug; Manta's per-site
            // refinement recovers the pointer type from the def site.
            let arith_obscured = k % 2 == 1;
            match class {
                BugClass::Cmi => {
                    let (_, mut fb) = mb.function(&name, &[], Some(Width::W32));
                    let key = fb.alloca(8);
                    let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
                    let cmd = if arith_obscured {
                        let t2 = fb.copy(taint);
                        let one = fb.const_int(1, Width::W64);
                        fb.binop(BinOp::Mul, t2, one, Width::W64);
                        t2
                    } else {
                        taint
                    };
                    let r = fb.call_extern(system, &[cmd], Some(Width::W32)).unwrap();
                    fb.ret(Some(r));
                    mb.finish_function(fb);
                }
                BugClass::Bof => {
                    let (_, mut fb) = mb.function(&name, &[], None);
                    let key = fb.alloca(8);
                    let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
                    let src = if arith_obscured {
                        let t2 = fb.copy(taint);
                        let one = fb.const_int(1, Width::W64);
                        fb.binop(BinOp::Mul, t2, one, Width::W64);
                        t2
                    } else {
                        taint
                    };
                    let buf = fb.alloca(16);
                    fb.call_extern(strcpy, &[buf, src], Some(Width::W64));
                    fb.ret(None);
                    mb.finish_function(fb);
                }
                BugClass::Npd => {
                    let (_, mut fb) = mb.function(&name, &[Width::W1], Some(Width::W64));
                    let c = fb.param(0);
                    let slot = fb.alloca(8);
                    let null = fb.const_null();
                    let t = fb.new_block();
                    let e = fb.new_block();
                    let j = fb.new_block();
                    fb.cond_br(c, t, e);
                    fb.switch_to(t);
                    fb.store(slot, null);
                    fb.br(j);
                    fb.switch_to(e);
                    let sz = fb.const_int(32, Width::W64);
                    let buf = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
                    fb.store(slot, buf);
                    fb.br(j);
                    fb.switch_to(j);
                    let p = fb.load(slot, Width::W64);
                    let v = fb.load(p, Width::W64);
                    fb.ret(Some(v));
                    mb.finish_function(fb);
                }
                BugClass::Rsa => {
                    let (_, mut fb) = mb.function(&name, &[], Some(Width::W64));
                    let slot = fb.alloca(64);
                    let alias = fb.copy(slot);
                    fb.ret(Some(alias));
                    mb.finish_function(fb);
                }
                BugClass::Uaf => {
                    let (_, mut fb) = mb.function(&name, &[], Some(Width::W64));
                    let sz = fb.const_int(24, Width::W64);
                    let p = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
                    fb.call_extern(free, &[p], None);
                    let v = fb.load(p, Width::W64);
                    fb.ret(Some(v));
                    mb.finish_function(fb);
                }
            }
            record(&mut truth, class, &name, true);
        }
        // Hard decoys: the flow is type-consistent but guarded by a
        // condition that never holds — path-feasibility is beyond the
        // type-assisted analysis, so even Manta reports these (its
        // residual ~23% FPR in Table 5).
        if matches!(class, BugClass::Cmi | BugClass::Bof) {
            for k in 0..spec.decoys_per_class.div_ceil(2) {
                let name = format!("{}_hard{}", label(class), k);
                let (_, mut fb) = mb.function(&name, &[Width::W64], Some(Width::W32));
                let key = fb.alloca(8);
                let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
                let n = fb.call_extern(strlen, &[taint], Some(Width::W64)).unwrap();
                // `if (n < 0)` — never true for a length.
                let zero = fb.const_int(0, Width::W64);
                let c = fb.cmp(CmpPred::Lt, n, zero);
                let dead = fb.new_block();
                let live = fb.new_block();
                fb.cond_br(c, dead, live);
                fb.switch_to(dead);
                match class {
                    BugClass::Cmi => {
                        fb.call_extern(system, &[taint], Some(Width::W32));
                    }
                    _ => {
                        let buf = fb.alloca(16);
                        fb.call_extern(strcpy, &[buf, taint], Some(Width::W64));
                    }
                }
                fb.br(live);
                fb.switch_to(live);
                let r = fb.const_int(0, Width::W32);
                fb.ret(Some(r));
                mb.finish_function(fb);
                record(&mut truth, class, &name, false);
            }
        }
        for k in 0..spec.decoys_per_class {
            let name = format!("{}_decoy{}", label(class), k);
            match class {
                BugClass::Cmi => {
                    // Taint sanitized through integer conversion: the
                    // "command" reaching system is numeric.
                    let (_, mut fb) = mb.function(&name, &[], Some(Width::W32));
                    let key = fb.alloca(8);
                    let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
                    let n = fb.call_extern(atoi, &[taint], Some(Width::W64)).unwrap();
                    let n2 = fb.copy(n);
                    let fmt = fb.alloca(8);
                    fb.call_extern(printf_d, &[fmt, n2], Some(Width::W32));
                    let r = fb.call_extern(system, &[n2], Some(Width::W32)).unwrap();
                    fb.ret(Some(r));
                    mb.finish_function(fb);
                }
                BugClass::Bof => {
                    // Same sanitization, strcpy source is an integer.
                    let (_, mut fb) = mb.function(&name, &[], None);
                    let key = fb.alloca(8);
                    let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
                    let n = fb.call_extern(atoi, &[taint], Some(Width::W64)).unwrap();
                    let fmt = fb.alloca(8);
                    fb.call_extern(printf_d, &[fmt, n], Some(Width::W32));
                    let buf = fb.alloca(16);
                    fb.call_extern(strcpy, &[buf, n], Some(Width::W64));
                    fb.ret(None);
                    mb.finish_function(fb);
                }
                BugClass::Npd => {
                    // Figure 4's false NPD: a zero-initialized *offset*
                    // added to a real pointer before the dereference.
                    let (_, mut fb) = mb.function(&name, &[Width::W1], Some(Width::W64));
                    let c = fb.param(0);
                    let off_slot = fb.alloca(8);
                    let zero = fb.const_int(0, Width::W64);
                    fb.store(off_slot, zero);
                    let t = fb.new_block();
                    let j = fb.new_block();
                    fb.cond_br(c, t, j);
                    fb.switch_to(t);
                    let one = fb.const_int(1, Width::W64);
                    let adj = fb.binop(BinOp::Mul, one, one, Width::W64);
                    fb.store(off_slot, adj);
                    fb.br(j);
                    fb.switch_to(j);
                    let off = fb.load(off_slot, Width::W64);
                    let two = fb.const_int(2, Width::W64);
                    let off2 = fb.binop(BinOp::Mul, off, two, Width::W64);
                    let sz = fb.const_int(64, Width::W64);
                    let base = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
                    let pchr = fb.binop(BinOp::Add, base, off2, Width::W64);
                    let v = fb.load(pchr, Width::W64);
                    fb.ret(Some(v));
                    mb.finish_function(fb);
                }
                BugClass::Rsa => {
                    // A pointer *difference* (numeric) escaping: fine.
                    let (_, mut fb) = mb.function(&name, &[], Some(Width::W64));
                    let a = fb.alloca(32);
                    let b = fb.alloca(32);
                    let d = fb.binop(BinOp::Sub, a, b, Width::W64);
                    let two = fb.const_int(2, Width::W64);
                    let half = fb.binop(BinOp::Div, d, two, Width::W64);
                    fb.ret(Some(half));
                    mb.finish_function(fb);
                }
                BugClass::Uaf => {
                    // Use *before* free plus a disjoint object after: no
                    // ordering violation.
                    let (_, mut fb) = mb.function(&name, &[], Some(Width::W64));
                    let sz = fb.const_int(24, Width::W64);
                    let p = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
                    let v = fb.load(p, Width::W64);
                    fb.call_extern(free, &[p], None);
                    let q = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
                    let w = fb.load(q, Width::W64);
                    let s = fb.binop(BinOp::Add, v, w, Width::W64);
                    fb.ret(Some(s));
                    mb.finish_function(fb);
                }
            }
            record(&mut truth, class, &name, false);
        }
    }

    // Benign noise: taint handled safely, pointer workhorses.
    for i in 0..spec.noise_functions {
        let name = format!("svc_{i}");
        let (_, mut fb) = mb.function(&name, &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        match rng.gen_range(0..4) {
            0 => {
                // Length check then use.
                let n = fb.call_extern(strlen, &[p], Some(Width::W64)).unwrap();
                let k = fb.const_int(16, Width::W64);
                let c = fb.cmp(CmpPred::Lt, n, k);
                let ok = fb.new_block();
                let done = fb.new_block();
                fb.cond_br(c, ok, done);
                fb.switch_to(ok);
                let buf = fb.alloca(32);
                fb.call_extern(strcpy, &[buf, p], Some(Width::W64));
                fb.br(done);
                fb.switch_to(done);
                fb.ret(Some(n));
            }
            1 => {
                let r = fb.call_extern(vendor, &[p], Some(Width::W64)).unwrap();
                fb.ret(Some(r));
            }
            2 => {
                let sz = fb.const_int(48, Width::W64);
                let buf = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
                fb.store(buf, p);
                let v = fb.load(buf, Width::W64);
                fb.call_extern(free, &[buf], None);
                let _ = v;
                let k = fb.const_int(0x33, Width::W64);
                fb.ret(Some(k));
            }
            _ => {
                let fmt = fb.alloca(8);
                let n = fb.call_extern(strlen, &[p], Some(Width::W64)).unwrap();
                fb.call_extern(printf_d, &[fmt, n], Some(Width::W32));
                fb.ret(Some(n));
            }
        }
        mb.finish_function(fb);
    }

    let module = mb.finish();
    manta_ir::verify::assert_valid(&module);
    GeneratedProgram { module, truth }
}

fn label(class: BugClass) -> &'static str {
    match class {
        BugClass::Npd => "npd",
        BugClass::Rsa => "rsa",
        BugClass::Uaf => "uaf",
        BugClass::Cmi => "cmi",
        BugClass::Bof => "bof",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FirmwareSpec {
        FirmwareSpec {
            name: "TestFW".into(),
            real_bugs_per_class: 2,
            decoys_per_class: 2,
            noise_functions: 10,
            seed: 11,
        }
    }

    #[test]
    fn firmware_generates_and_verifies() {
        let g = generate_firmware(&spec());
        manta_ir::verify::verify_module(&g.module).unwrap();
        // 5 classes × (2 real + 2 decoys) plus one hard decoy for each of
        // the two taint classes.
        assert_eq!(g.truth.bugs.len(), 5 * 4 + 2);
        assert!(g.truth.bugs.iter().any(|b| b.func.starts_with("cmi_hard")));
        assert_eq!(g.truth.real_bugs(BugClass::Cmi).count(), 2);
        assert_eq!(g.truth.decoys(BugClass::Npd).count(), 2);
        // Every bug's function exists.
        for b in &g.truth.bugs {
            assert!(g.module.function_by_name(&b.func).is_some(), "{}", b.func);
        }
    }

    #[test]
    fn firmware_is_deterministic() {
        let a = generate_firmware(&spec());
        let b = generate_firmware(&spec());
        assert_eq!(
            manta_ir::printer::print_module(&a.module),
            manta_ir::printer::print_module(&b.module)
        );
    }
}
