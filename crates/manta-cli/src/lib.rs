//! # manta-cli
//!
//! The `manta` command-line tool: drive the whole pipeline on files.
//!
//! ```text
//! manta asm    prog.s -o prog.sbf     assemble SB-ISA text to an SBF image
//! manta disasm prog.sbf               disassemble an SBF image
//! manta lift   prog.sbf               lift to SSA IR and print it
//! manta infer  prog.sbf [-s SENS]     infer types (fi|fs|fifs|full|fifscs)
//! manta bugs   prog.sbf [--no-types]  run the NPD/RSA/UAF/CMI/BOF checkers
//! manta icall  prog.sbf               resolve indirect-call targets
//! manta stats  prog.sbf               full-pipeline stage cost breakdown
//! manta explain prog.sbf f v0         backward type-derivation tree of one value
//! manta profile prog.sbf              run everything traced, print a time summary
//! manta serve  ADDR [--cache-dir D]   run the analysis daemon (see manta-serve)
//! manta client ADDR CMD [...]         talk to a daemon: ping|analyze|stats|shutdown
//! ```
//!
//! `infer`, `bugs` and `icall` additionally take `--trace` (print the span
//! tree to stderr), `--stats <out.json>` (write the full telemetry
//! report as JSON) and `--trace-out <trace.json>` (write a Chrome
//! trace-event file with thread ids and monotonic timestamps, loadable
//! in Perfetto or `chrome://tracing`), plus the resilience flags `--fuel <N>`,
//! `--budget-ms <N>` (cooperative budgets; a blown budget degrades the
//! run to the last completed sensitivity tier) and `--strict` (propagate
//! budget/panic errors instead of degrading).
//!
//! Every command accepts `--threads <N>` to size the intra-module
//! work-stealing pool (default: `available_parallelism`; `1` forces a
//! fully serial run). Results are bit-identical at every thread count.
//!
//! `infer`, `bugs`, `icall` and `stats` accept `--cache-dir <dir>` to
//! persist analysis results across invocations (and `--no-cache` to
//! force a cold run): inference results are keyed by content and config
//! hashes, unchanged input files are served from a stat-fingerprinted
//! module cache, and a corrupt store is silently discarded and
//! recomputed. Warm output is bit-identical to cold output.
//!
//! Inputs may be binary images in any registered frontend's container —
//! SBF (`SBF1` magic, SB-ISA code) or XLF (`\x7fELF` magic, x86-64-subset
//! code) — SB-ISA assembly text, or textual IR (`module …` followed by
//! `func name(wN,…)` headers); the format is sniffed automatically.
//! `--frontend <name>` overrides the sniffing for binary inputs.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::sync::Arc;

use manta::{
    AnalysisCache, Engine, InferenceResult, MantaConfig, Sensitivity, TypeQuery, VarClass,
};
use manta_analysis::{ModuleAnalysis, VarRef};
use manta_clients::{
    detect_bugs, indirect_call_sites, resolve_targets_manta, BugKind, CheckerConfig,
};
use manta_ir::{Frontend, Module};
use manta_resilience::{Budget, BudgetSpec};
use manta_telemetry::{JsonSink, TelemetrySink, TextSink};

/// A CLI failure, printed to stderr with exit code 1.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Usage text.
pub const USAGE: &str = "\
manta — hybrid-sensitive type inference for stripped binaries

USAGE:
    manta asm    <prog.s> -o <prog.bin> [--frontend sb|x86]
    manta disasm <prog.sbf>
    manta lift   <input>
    manta infer  <input> [-s fi|fs|fifs|full|fifscs] [--trace] [--stats <out.json>]
    manta bugs   <input> [--no-types] [--trace] [--stats <out.json>]
    manta icall  <input> [--trace] [--stats <out.json>]
    manta stats  <input>
    manta explain <input> <function> <value>
    manta profile <input> [--trace-out <trace.json>]
    manta serve  <addr> [--workers <N>] [--queue <N>] [--gc-bytes <N>]
                 [--gc-every <N>] [--fuel-cap <N>] [--deadline-cap-ms <N>]
    manta client <addr> ping
    manta client <addr> stats
    manta client <addr> shutdown
    manta client <addr> analyze <input> [-s SENS] [--fuel <N>] [--budget-ms <N>]

<input> is a binary image (SBF or XLF, detected by magic), SB-ISA
assembly, or textual IR (auto-detected).

FRONTENDS (all commands taking <input>):
    --frontend <name> force a binary frontend instead of sniffing the
                      image magic: `sb` (SB-ISA, SBF container) or `x86`
                      (x86-64 subset, XLF ELF-subset container).
                      `manta asm --frontend x86` assembles the Intel-like
                      x86 syntax into an XLF image instead of SB-ISA

OBSERVABILITY:
    --trace           print the hierarchical span tree to stderr afterwards
    --stats <file>    write spans, counters and histograms as JSON
    --trace-out <file> write a Chrome trace-event JSON file (ph \"X\"
                      complete events with thread ids and microsecond
                      timestamps; open in Perfetto or chrome://tracing)
    manta stats       run the whole pipeline (substrate, full cascade,
                      checkers, icall) and print the cost breakdown
    manta explain     run inference with provenance recording on and
                      print the backward derivation tree of one value;
                      values use the printer's names (p0, p1, v0, v1, …)
    manta profile     run the whole pipeline with tracing on and print
                      a per-span cumulative time summary

RESILIENCE (infer, bugs, icall, stats):
    --fuel <N>        abstract work budget; the pipeline degrades to the
                      last completed sensitivity tier when it runs out
    --budget-ms <N>   wall-clock budget with the same degradation behavior
    --strict          propagate budget/panic errors instead of degrading

PARALLELISM (all commands):
    --threads <N>     worker threads for the intra-module work-stealing
                      pool (0 or omitted = available_parallelism, 1 =
                      serial); output is bit-identical at any thread count

CACHING (infer, bugs, icall, stats):
    --cache-dir <dir> persistent analysis cache: inference results are
                      keyed by (content hash, config hash) and served on
                      warm runs; unchanged input files are not re-lifted.
                      A corrupt or version-mismatched cache is discarded
                      and recomputed, never trusted. Warm output is
                      bit-identical to cold output at any thread count
    --no-cache        ignore --cache-dir (force a cold run)

SERVING:
    manta serve       run the analysis daemon on <addr> (e.g. 127.0.0.1:7777;
                      port 0 picks an ephemeral port, printed on startup).
                      --cache-dir gives every session one shared store;
                      --workers sizes the analysis pool, --queue bounds
                      admission (a full queue answers Overloaded),
                      --gc-bytes/--gc-every run size-capped LRU store GC,
                      --fuel-cap/--deadline-cap-ms clamp tenant budgets
    manta client      talk to a daemon: ping, stats, shutdown (graceful
                      drain), or analyze a local file remotely; --fuel and
                      --budget-ms ride along as the request's budget
";

/// The registered binary-image frontends, in sniffing order.
pub fn frontends() -> [&'static dyn Frontend; 2] {
    [&manta_isa::lift::SbFrontend, &manta_x86::X86Frontend]
}

/// Resolves a `--frontend <name>` value against the registry.
fn frontend_by_name(name: &str) -> Result<&'static dyn Frontend, CliError> {
    frontends()
        .into_iter()
        .find(|f| f.name() == name)
        .ok_or_else(|| CliError(format!("unknown frontend `{name}`\n{}", frontend_listing())))
}

/// One line per registered frontend, for error messages.
fn frontend_listing() -> String {
    let mut s = String::from("available frontends:\n");
    for f in frontends() {
        let _ = writeln!(s, "  {:<4} {}", f.name(), f.describe());
    }
    s
}

/// Loads any supported input file into an IR module.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable files or unrecognized formats.
pub fn load_module(path: &Path) -> Result<Module, CliError> {
    load_module_as(path, None)
}

/// Like [`load_module`], with an optional forced binary frontend
/// (`--frontend`). Without one, binary inputs are dispatched on their
/// image magic across every registered frontend.
pub fn load_module_as(
    path: &Path,
    forced: Option<&'static dyn Frontend>,
) -> Result<Module, CliError> {
    let bytes =
        fs::read(path).map_err(|e| CliError(format!("cannot read {}: {e}", path.display())))?;
    if let Some(fe) = forced {
        return fe.lift_bytes(&bytes).map_err(|e| CliError(e.to_string()));
    }
    for fe in frontends() {
        if fe.detects(&bytes) {
            return fe.lift_bytes(&bytes).map_err(|e| CliError(e.to_string()));
        }
    }
    let Ok(text) = String::from_utf8(bytes) else {
        return err(format!(
            "{}: unrecognized image magic\n{}",
            path.display(),
            frontend_listing()
        ));
    };
    // Textual IR uses `func name(w64, …)`; assembly uses `func name(2)`.
    if text.lines().any(|l| {
        let l = l.trim_start();
        l.starts_with("func ") && (l.contains("(w") || l.contains("()"))
    }) {
        return manta_ir::parser::parse_module(&text).map_err(|e| CliError(e.to_string()));
    }
    let image = manta_isa::assemble(&text).map_err(|e| CliError(e.to_string()))?;
    manta_isa::lift::lift(&image).map_err(|e| CliError(e.to_string()))
}

/// Like [`load_module`], but serves unchanged files from the cache:
/// the entry is keyed by a stat fingerprint (absolute path, mtime,
/// size) and holds the module's canonical IR text, so a warm run skips
/// SBF decoding, assembling, and lifting entirely. A stale or
/// undecodable entry is discarded and the file is re-read.
pub fn load_module_cached(
    path: &Path,
    cache: Option<&AnalysisCache>,
    forced: Option<&'static dyn Frontend>,
) -> Result<Module, CliError> {
    let Some(cache) = cache else {
        return load_module_as(path, forced);
    };
    let Some(key) = stat_key(path, forced) else {
        return load_module_as(path, forced);
    };
    if let Some(payload) = cache.store().get(&key) {
        if let Some(module) = std::str::from_utf8(&payload)
            .ok()
            .and_then(|text| manta_ir::parser::parse_module(text).ok())
        {
            return Ok(module);
        }
        cache.store().invalidate(&key);
    }
    let module = load_module_as(path, forced)?;
    let text = manta_ir::printer::print_module(&module);
    let _ = cache.store().put(&key, text.as_bytes());
    Ok(module)
}

/// Stat fingerprint of `path`: the cache key for its lifted module.
/// `None` (unreadable metadata) simply bypasses the file cache. A forced
/// frontend is part of the key — the same bytes lift differently under
/// different frontends, so overridden runs must not share entries.
fn stat_key(path: &Path, forced: Option<&'static dyn Frontend>) -> Option<manta_store::Key> {
    let meta = fs::metadata(path).ok()?;
    let nanos = meta
        .modified()
        .ok()?
        .duration_since(std::time::UNIX_EPOCH)
        .ok()?
        .as_nanos();
    let mut fp = manta_store::Fingerprint::new();
    fp.write_str("manta-cli.module");
    fp.write_str(forced.map_or("auto", |f| f.name()));
    fp.write_str(&path.to_string_lossy());
    fp.write_u64(nanos as u64);
    fp.write_u64((nanos >> 64) as u64);
    fp.write_u64(meta.len());
    Some(manta_store::Key::new("module", fp.finish(), 0))
}

fn parse_sensitivity(s: &str) -> Result<Sensitivity, CliError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "fi" => Sensitivity::Fi,
        "fs" => Sensitivity::Fs,
        "fifs" | "fi+fs" => Sensitivity::FiFs,
        "full" | "ficsfs" | "fi+cs+fs" => Sensitivity::FiCsFs,
        "fifscs" | "fi+fs+cs" => Sensitivity::FiFsCs,
        other => return err(format!("unknown sensitivity `{other}`")),
    })
}

/// Telemetry-related flags shared by `infer`, `bugs` and `icall`.
#[derive(Debug, Default)]
struct TelemetryOpts {
    trace: bool,
    stats: Option<String>,
    trace_out: Option<String>,
}

/// Strips `--trace` / `--stats <file>` / `--trace-out <file>` from
/// anywhere in the argument list.
fn extract_telemetry_flags(args: &[String]) -> Result<(Vec<String>, TelemetryOpts), CliError> {
    let mut opts = TelemetryOpts::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => opts.trace = true,
            "--stats" => match it.next() {
                Some(path) => opts.stats = Some(path.clone()),
                None => return err("--stats requires an output path"),
            },
            "--trace-out" => match it.next() {
                Some(path) => opts.trace_out = Some(path.clone()),
                None => return err("--trace-out requires an output path"),
            },
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, opts))
}

/// Resilience-related flags shared by `infer`, `bugs`, `icall` and
/// `stats`: budget limits plus the strict/degrade switch.
#[derive(Debug, Default, Clone, Copy)]
struct ResilienceOpts {
    fuel: Option<u64>,
    budget_ms: Option<u64>,
    strict: bool,
}

impl ResilienceOpts {
    fn spec(&self) -> BudgetSpec {
        BudgetSpec {
            fuel: self.fuel,
            deadline_ms: self.budget_ms,
        }
    }
}

/// Strips `--fuel <N>` / `--budget-ms <N>` / `--strict` from anywhere in
/// the argument list.
fn extract_resilience_flags(args: &[String]) -> Result<(Vec<String>, ResilienceOpts), CliError> {
    let mut opts = ResilienceOpts::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    fn number(flag: &str, v: Option<&String>) -> Result<u64, CliError> {
        match v {
            Some(n) => n
                .parse::<u64>()
                .map_err(|_| CliError(format!("{flag} requires a number, got `{n}`"))),
            None => Err(CliError(format!("{flag} requires a number"))),
        }
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => opts.strict = true,
            "--fuel" => opts.fuel = Some(number("--fuel", it.next())?),
            "--budget-ms" => opts.budget_ms = Some(number("--budget-ms", it.next())?),
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, opts))
}

/// Cache flags shared by `infer`, `bugs`, `icall` and `stats`.
#[derive(Debug, Default)]
struct CacheOpts {
    dir: Option<String>,
    disabled: bool,
}

impl CacheOpts {
    /// Opens the analysis cache when one is configured and not disabled.
    /// A corrupt store is wiped and reopened inside
    /// [`AnalysisCache::open`]; only hard filesystem errors surface.
    /// The cache is shared between the module loader and the engine,
    /// hence the [`Arc`].
    fn open(&self) -> Result<Option<Arc<AnalysisCache>>, CliError> {
        match &self.dir {
            Some(dir) if !self.disabled => AnalysisCache::open(dir)
                .map(|c| Some(Arc::new(c)))
                .map_err(|e| CliError(format!("cannot open cache {dir}: {e}"))),
            _ => Ok(None),
        }
    }
}

/// Strips `--cache-dir <dir>` / `--no-cache` from anywhere in the
/// argument list.
fn extract_cache_flags(args: &[String]) -> Result<(Vec<String>, CacheOpts), CliError> {
    let mut opts = CacheOpts::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-cache" => opts.disabled = true,
            "--cache-dir" => match it.next() {
                Some(dir) => opts.dir = Some(dir.clone()),
                None => return err("--cache-dir requires a directory path"),
            },
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, opts))
}

/// Strips `--threads <N>` from anywhere in the argument list and applies
/// it to the process-global pool configuration (0 = `available_parallelism`).
fn extract_thread_flag(args: &[String]) -> Result<Vec<String>, CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => match it.next() {
                Some(n) => {
                    let n = n
                        .parse::<usize>()
                        .map_err(|_| CliError(format!("--threads requires a number, got `{n}`")))?;
                    manta_parallel::set_threads(n);
                }
                None => return err("--threads requires a number"),
            },
            _ => rest.push(a.clone()),
        }
    }
    Ok(rest)
}

/// Strips `--frontend <name>` from anywhere in the argument list and
/// resolves it against the frontend registry.
fn extract_frontend_flag(
    args: &[String],
) -> Result<(Vec<String>, Option<&'static dyn Frontend>), CliError> {
    let mut forced = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--frontend" => match it.next() {
                Some(name) => forced = Some(frontend_by_name(name)?),
                None => {
                    return err(format!(
                        "--frontend requires a name\n{}",
                        frontend_listing()
                    ))
                }
            },
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, forced))
}

/// Parses `manta serve` flags into a [`manta_serve::ServeConfig`].
fn parse_serve_flags(addr: &str, flags: &[String]) -> Result<manta_serve::ServeConfig, CliError> {
    let mut config = manta_serve::ServeConfig {
        addr: addr.to_string(),
        ..manta_serve::ServeConfig::default()
    };
    let mut it = flags.iter();
    fn number(flag: &str, v: Option<&String>) -> Result<u64, CliError> {
        match v {
            Some(n) => n
                .parse::<u64>()
                .map_err(|_| CliError(format!("{flag} requires a number, got `{n}`"))),
            None => Err(CliError(format!("{flag} requires a number"))),
        }
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => config.workers = number("--workers", it.next())?.max(1) as usize,
            "--queue" => config.queue_cap = number("--queue", it.next())?.max(1) as usize,
            "--gc-bytes" => config.gc_max_bytes = Some(number("--gc-bytes", it.next())?),
            "--gc-every" => config.gc_every = number("--gc-every", it.next())?.max(1),
            "--fuel-cap" => config.fuel_cap = Some(number("--fuel-cap", it.next())?),
            "--deadline-cap-ms" => {
                config.deadline_cap_ms = Some(number("--deadline-cap-ms", it.next())?);
            }
            other => return err(format!("unknown serve flag `{other}`")),
        }
    }
    Ok(config)
}

/// Builds the `analyze` request for `manta client`: the module source
/// rides the wire as text, and `--fuel`/`--budget-ms` become the
/// request's (server-clamped) budget.
fn client_analyze_request(
    input: &str,
    sensitivity: Sensitivity,
    resilience: &ResilienceOpts,
    forced: Option<&'static dyn Frontend>,
) -> Result<manta_serve::proto::Request, CliError> {
    // Normalize any supported input format to canonical IR text so the
    // daemon does not need the original file.
    let module = load_module_as(Path::new(input), forced)?;
    Ok(manta_serve::proto::Request::Analyze {
        module_text: manta_ir::printer::print_module(&module),
        sensitivity,
        fuel: resilience.fuel,
        deadline_ms: resilience.budget_ms,
    })
}

/// Composes the command's engine from the parsed flags: config,
/// budget/strict policy, and the shared cache (when one is open). The
/// engine applies the cache policy itself — `--fuel` is part of the
/// result key, `--budget-ms` and `--strict` bypass the cache — so the
/// command arms stay policy-free.
fn make_engine(
    config: MantaConfig,
    opts: &ResilienceOpts,
    cache: Option<Arc<AnalysisCache>>,
) -> Engine {
    let mut builder = Engine::builder()
        .config(config)
        .budget(opts.spec())
        .strict(opts.strict);
    if let Some(c) = cache {
        builder = builder.cache(c);
    }
    builder
        .build()
        .expect("engine build cannot fail without a cache directory")
}

/// Builds the analysis substrate through the engine's substrate stage.
/// Returns `Ok(None)` when the substrate degraded in non-strict mode —
/// the message is appended to `out` and the command finishes with
/// whatever partial output it has.
fn build_analysis(
    engine: &Engine,
    module: Module,
    budget: &Budget,
    out: &mut String,
) -> Result<Option<ModuleAnalysis>, CliError> {
    match engine.build_substrate(module, budget) {
        Ok(a) => Ok(Some(a)),
        Err(e) if engine.strict() => Err(CliError(format!("analysis failed: {e}"))),
        Err(e) => {
            // The substrate has no weaker tier to fall back to; report
            // the degradation and end the command without results.
            let _ = writeln!(out, "degraded: {e}; no analysis results");
            Ok(None)
        }
    }
}

/// Runs the inference cascade through the engine, charging work to the
/// command-wide budget. Any degradation records are surfaced on `out`;
/// a strict engine propagates the failure as a [`CliError`] instead.
fn run_inference(
    engine: &Engine,
    analysis: &ModuleAnalysis,
    budget: &Budget,
    out: &mut String,
) -> Result<InferenceResult, CliError> {
    let result = engine
        .analyze_with_budget(analysis, budget)
        .map_err(|e| CliError(format!("inference failed: {e}")))?;
    for d in &result.degradations {
        let _ = writeln!(out, "degraded: {d}");
    }
    Ok(result)
}

/// Executes a command line (without the program name); returns the text to
/// print on success.
///
/// Commands run with telemetry collection on when `--trace`/`--stats` is
/// given or the command is `stats`; the report is rendered afterwards (the
/// span tree to stderr via [`TextSink`], the JSON file via [`JsonSink`]).
///
/// # Errors
///
/// Returns [`CliError`] on bad arguments or failing pipelines.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (args, telemetry) = extract_telemetry_flags(args)?;
    let (args, resilience) = extract_resilience_flags(&args)?;
    let (args, cache_opts) = extract_cache_flags(&args)?;
    let (args, forced_frontend) = extract_frontend_flag(&args)?;
    let args = extract_thread_flag(&args)?;
    let cmd = args.first().map(String::as_str);
    let tracing = telemetry.trace_out.is_some() || cmd == Some("profile");
    let collecting =
        telemetry.trace || telemetry.stats.is_some() || tracing || cmd == Some("stats");
    if collecting {
        manta_telemetry::set_enabled(true);
        if tracing {
            manta_telemetry::set_trace_enabled(true);
        }
        manta_telemetry::reset();
    }
    let result = run_command(&args, &resilience, &cache_opts, forced_frontend);
    if collecting {
        let report = manta_telemetry::report();
        manta_telemetry::set_enabled(false);
        manta_telemetry::set_trace_enabled(false);
        if result.is_ok() {
            if telemetry.trace {
                TextSink(std::io::stderr())
                    .emit(&report)
                    .map_err(|e| CliError(format!("cannot write trace: {e}")))?;
            }
            if let Some(path) = &telemetry.stats {
                let file = fs::File::create(path)
                    .map_err(|e| CliError(format!("cannot create {path}: {e}")))?;
                JsonSink(file)
                    .emit(&report)
                    .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            }
            if let Some(path) = &telemetry.trace_out {
                fs::write(path, manta_telemetry::render_chrome_trace())
                    .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            }
        }
    }
    result
}

fn run_command(
    args: &[String],
    resilience: &ResilienceOpts,
    cache_opts: &CacheOpts,
    forced_frontend: Option<&'static dyn Frontend>,
) -> Result<String, CliError> {
    let mut out = String::new();
    // One budget covers the whole command (substrate + inference); with
    // no limits set this is the zero-overhead unlimited budget.
    let budget = resilience.spec().start();
    let cache = cache_opts.open()?;
    match args.first().map(String::as_str) {
        Some("asm") => {
            let (input, output) = match args {
                [_, i, o_flag, o] if o_flag == "-o" => (i, o),
                _ => return err(USAGE),
            };
            let text = fs::read_to_string(input)
                .map_err(|e| CliError(format!("cannot read {input}: {e}")))?;
            // `--frontend x86` switches the assembler syntax and output
            // container; the default (and `--frontend sb`) is SB-ISA.
            let (bytes, n_funcs, n_insts) = if forced_frontend.map(Frontend::name) == Some("x86") {
                let image = manta_x86::assemble(&text).map_err(|e| CliError(e.to_string()))?;
                let insts: usize = image
                    .functions
                    .iter()
                    .map(|f| {
                        let code = &image.text[f.offset as usize..(f.offset + f.len) as usize];
                        manta_x86::decode_all(code).map_or(0, |v| v.len())
                    })
                    .sum();
                let n = image.functions.len();
                (manta_x86::encode_image(&image), n, insts)
            } else {
                let image = manta_isa::assemble(&text).map_err(|e| CliError(e.to_string()))?;
                let (n, insts) = (image.functions.len(), image.total_insts());
                (manta_isa::encode(&image), n, insts)
            };
            fs::write(output, &bytes)
                .map_err(|e| CliError(format!("cannot write {output}: {e}")))?;
            let _ = writeln!(
                out,
                "wrote {} ({} bytes, {} functions, {} instructions)",
                output,
                bytes.len(),
                n_funcs,
                n_insts
            );
        }
        Some("disasm") => {
            let [_, input] = args else { return err(USAGE) };
            let bytes =
                fs::read(input).map_err(|e| CliError(format!("cannot read {input}: {e}")))?;
            let image = manta_isa::decode(&bytes).map_err(|e| CliError(e.to_string()))?;
            out.push_str(&manta_isa::asm::disassemble(&image));
        }
        Some("lift") => {
            let [_, input] = args else { return err(USAGE) };
            let module = load_module_as(Path::new(input), forced_frontend)?;
            out.push_str(&manta_ir::printer::print_module(&module));
        }
        Some("infer") => {
            let (input, sens) = match args {
                [_, i] => (i, Sensitivity::FiCsFs),
                [_, i, flag, s] if flag == "-s" => (i, parse_sensitivity(s)?),
                _ => return err(USAGE),
            };
            let module = load_module_cached(Path::new(input), cache.as_deref(), forced_frontend)?;
            let engine = make_engine(
                MantaConfig::with_sensitivity(sens),
                resilience,
                cache.clone(),
            );
            let Some(analysis) = build_analysis(&engine, module, &budget, &mut out)? else {
                return Ok(out);
            };
            let result = run_inference(&engine, &analysis, &budget, &mut out)?;
            let _ = writeln!(out, "types ({}):", sens.label());
            for func in analysis.module().functions() {
                for (i, &p) in func.params().iter().enumerate() {
                    let v = VarRef::new(func.id(), p);
                    let shown = match (result.class_of(v), result.precise_type(v)) {
                        (_, Some(t)) => t.to_string(),
                        (VarClass::Over, None) => {
                            format!("[{} .. {}]", result.lower(v), result.upper(v))
                        }
                        _ => "unknown".into(),
                    };
                    let _ = writeln!(out, "  {}#arg{i}: {shown}", func.name());
                }
            }
            let c = result.final_counts();
            let _ = writeln!(
                out,
                "variables: {} precise / {} over-approximated / {} unknown",
                c.precise, c.over, c.unknown
            );
        }
        Some("bugs") => {
            let (input, typed) = match args {
                [_, i] => (i, true),
                [_, i, flag] if flag == "--no-types" => (i, false),
                _ => return err(USAGE),
            };
            let module = load_module_cached(Path::new(input), cache.as_deref(), forced_frontend)?;
            let engine = make_engine(MantaConfig::full(), resilience, cache.clone());
            let Some(analysis) = build_analysis(&engine, module, &budget, &mut out)? else {
                return Ok(out);
            };
            let inference = if typed {
                Some(run_inference(&engine, &analysis, &budget, &mut out)?)
            } else {
                None
            };
            let q: Option<&dyn TypeQuery> = inference.as_ref().map(|i| i as &dyn TypeQuery);
            let (reports, _) = detect_bugs(&analysis, q, &BugKind::ALL, CheckerConfig::default());
            let mut seen = std::collections::BTreeSet::new();
            for r in &reports {
                let func = analysis.module().function(r.func).name();
                if seen.insert((r.kind, func.to_string())) {
                    let _ = writeln!(out, "[{}] in {}", r.kind.label(), func);
                }
            }
            let _ = writeln!(
                out,
                "{} reports ({})",
                seen.len(),
                if typed { "type-assisted" } else { "untyped" }
            );
        }
        Some("icall") => {
            let [_, input] = args else { return err(USAGE) };
            let module = load_module_cached(Path::new(input), cache.as_deref(), forced_frontend)?;
            let engine = make_engine(MantaConfig::full(), resilience, cache.clone());
            let Some(analysis) = build_analysis(&engine, module, &budget, &mut out)? else {
                return Ok(out);
            };
            let inference = run_inference(&engine, &analysis, &budget, &mut out)?;
            let sites = indirect_call_sites(&analysis);
            if sites.is_empty() {
                out.push_str("no indirect calls\n");
            }
            for site in sites {
                let host = analysis.module().function(site.func).name();
                let targets: Vec<&str> =
                    resolve_targets_manta(&analysis, &inference as &dyn TypeQuery, &site)
                        .into_iter()
                        .map(|f| analysis.module().function(f).name())
                        .collect();
                let _ = writeln!(
                    out,
                    "icall in {host} ({} args) -> {} targets: {targets:?}",
                    site.args.len(),
                    targets.len()
                );
            }
        }
        Some("stats") => {
            let [_, input] = args else { return err(USAGE) };
            let module = load_module_cached(Path::new(input), cache.as_deref(), forced_frontend)?;
            // Drive the whole cascade: substrate build, full-sensitivity
            // inference, every checker, and indirect-call resolution, then
            // print the per-stage cost breakdown they recorded. With a cache
            // directory the engine runs in summary mode so the `summary.*`
            // counters below reflect real replay/recompute traffic.
            // The stats view runs the compositional points-to solver so the
            // `pointsto.*` partition/wavefront counters below reflect real
            // traffic; results are bit-identical to the monolithic solve.
            let mut builder = Engine::builder()
                .config(MantaConfig::full())
                .budget(resilience.spec())
                .strict(resilience.strict)
                .partitioned_pointsto(true)
                .summaries(cache.is_some());
            if let Some(c) = cache.clone() {
                builder = builder.cache(c);
            }
            let engine = builder
                .build()
                .expect("engine build cannot fail without a cache directory");
            let Some(analysis) = build_analysis(&engine, module, &budget, &mut out)? else {
                return Ok(out);
            };
            let inference = run_inference(&engine, &analysis, &budget, &mut out)?;
            let q: &dyn TypeQuery = &inference;
            let (reports, _) =
                detect_bugs(&analysis, Some(q), &BugKind::ALL, CheckerConfig::default());
            let sites = indirect_call_sites(&analysis);
            for site in &sites {
                let _ = resolve_targets_manta(&analysis, q, site);
            }
            let _ = writeln!(
                out,
                "pipeline: {} bug reports, {} indirect call sites",
                reports.len(),
                sites.len()
            );
            if let Some(c) = &cache {
                c.publish_telemetry();
            }
            let report = manta_telemetry::report();
            let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "resilience: {} degradations, {} panics caught, {} budget exhaustions",
                counter("resilience.degradations"),
                counter("resilience.panics_caught"),
                counter("resilience.budget_exhausted"),
            );
            // Per-stage breakdowns (only stages that actually tripped).
            for (name, &value) in &report.counters {
                if value == 0 {
                    continue;
                }
                if let Some(stage) = name.strip_prefix("resilience.degradations.") {
                    let _ = writeln!(out, "  degraded[{stage}]: {value}");
                } else if let Some(stage) = name.strip_prefix("resilience.budget_exhausted.") {
                    let _ = writeln!(out, "  budget-exhausted[{stage}]: {value}");
                }
            }
            let _ = writeln!(
                out,
                "cache: {} hits, {} misses, {} invalidations, {} corrupt entries, \
                 {} bytes read, {} bytes written",
                counter("store.hits"),
                counter("store.misses"),
                counter("store.invalidations"),
                counter("store.corrupt"),
                counter("store.bytes_read"),
                counter("store.bytes_written"),
            );
            if let Some(c) = &cache {
                // Per-entry-kind traffic straight off the store: `infer`
                // (inference results), `prov` (provenance graphs),
                // `module` (lifted-module file cache), `modidx`/`func`/
                // `row` (incremental per-function rows), `fsum`
                // (per-function summary state).
                for (kind, hits, misses) in c.store().kind_traffic() {
                    let _ = writeln!(out, "  cache[{kind}]: {hits} hits, {misses} misses");
                }
            }
            // Frontend decode/lift work (zero on a warm module cache: the
            // module was replayed from IR text, not re-lifted).
            let _ = writeln!(
                out,
                "frontend: {} insts decoded, {} flags materialized, {} frame slots",
                counter("lift.insts_decoded"),
                counter("lift.flags_materialized"),
                counter("lift.frame_slots"),
            );
            let _ = writeln!(
                out,
                "summaries: {} chunk replays, {} recomputes, {} wavefronts \
                 (max width {}), {} corrupt states",
                counter("summary.hits"),
                counter("summary.recomputes"),
                counter("summary.wavefronts"),
                counter("summary.wavefront_width_max"),
                counter("summary.state_corrupt"),
            );
            // Compositional points-to: partition count, scheduler levels,
            // and cross-partition boundary churn from the solve above.
            let _ = writeln!(
                out,
                "pointsto: {} partitions, {} wavefronts, {} boundary deltas, \
                 {} full re-solves, peak |pts| {}",
                counter("pointsto.partitions"),
                counter("pointsto.wavefronts"),
                counter("pointsto.boundary_delta"),
                counter("pointsto.full_resolves"),
                counter("pointsto.peak_pts"),
            );
            out.push_str(&report.render_text());
        }
        Some("explain") => {
            let [_, input, func, var] = args else {
                return err(USAGE);
            };
            let module = load_module_cached(Path::new(input), cache.as_deref(), forced_frontend)?;
            // Provenance must be on before the substrate builds so the
            // points-to solver records its derivations too; the builder
            // flips the process-global switch, restored below.
            let mut builder = Engine::builder()
                .config(MantaConfig::full())
                .budget(resilience.spec())
                .strict(resilience.strict)
                .provenance(true);
            if let Some(c) = cache.clone() {
                builder = builder.cache(c);
            }
            let engine = builder
                .build()
                .expect("engine build cannot fail without a cache directory");
            let explained = (|| {
                let Some(analysis) = build_analysis(&engine, module, &budget, &mut out)? else {
                    return Ok(None);
                };
                let (result, graph) = engine
                    .analyze_explained(&analysis)
                    .map_err(|e| CliError(format!("inference failed: {e}")))?;
                for d in &result.degradations {
                    let _ = writeln!(out, "degraded: {d}");
                }
                Ok(Some((analysis, graph)))
            })();
            manta_telemetry::set_provenance_enabled(false);
            let Some((analysis, graph)) = explained? else {
                return Ok(out);
            };
            let graph = graph
                .ok_or_else(|| CliError("provenance-enabled engine produced no graph".into()))?;
            let Some(v) = manta::provenance::resolve_var(analysis.module(), func, var) else {
                return err(format!(
                    "no value `{var}` in `{func}` \
                     (names follow `manta lift` output: p0, p1, v0, v1, …)"
                ));
            };
            match graph.render_explain(analysis.module(), v, None) {
                Some(tree) => out.push_str(&tree),
                None => {
                    let _ = writeln!(out, "no derivation recorded for {func}:{var}");
                }
            }
        }
        Some("profile") => {
            let [_, input] = args else { return err(USAGE) };
            let module = load_module_cached(Path::new(input), cache.as_deref(), forced_frontend)?;
            // Same full drive as `stats`, but summarized from the trace
            // buffer: per-span cumulative wall time across all threads.
            let engine = make_engine(MantaConfig::full(), resilience, cache.clone());
            let Some(analysis) = build_analysis(&engine, module, &budget, &mut out)? else {
                return Ok(out);
            };
            let inference = run_inference(&engine, &analysis, &budget, &mut out)?;
            let q: &dyn TypeQuery = &inference;
            let (reports, _) =
                detect_bugs(&analysis, Some(q), &BugKind::ALL, CheckerConfig::default());
            let sites = indirect_call_sites(&analysis);
            for site in &sites {
                let _ = resolve_targets_manta(&analysis, q, site);
            }
            let _ = writeln!(
                out,
                "pipeline: {} bug reports, {} indirect call sites",
                reports.len(),
                sites.len()
            );
            let events = manta_telemetry::trace_events();
            let threads: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
            let _ = writeln!(
                out,
                "trace: {} events across {} threads",
                events.len(),
                threads.len()
            );
            let mut totals: std::collections::BTreeMap<&str, (f64, usize)> =
                std::collections::BTreeMap::new();
            for e in &events {
                let slot = totals.entry(e.name).or_insert((0.0, 0));
                slot.0 += e.dur_us;
                slot.1 += 1;
            }
            let mut rows: Vec<(&str, f64, usize)> =
                totals.into_iter().map(|(n, (d, c))| (n, d, c)).collect();
            rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
            for (name, dur_us, count) in rows.iter().take(16) {
                let _ = writeln!(
                    out,
                    "  {name}: {:.3} ms over {count} events",
                    dur_us / 1000.0
                );
            }
        }
        Some("serve") => {
            let [_, addr, flags @ ..] = args else {
                return err(USAGE);
            };
            let config = parse_serve_flags(addr, flags)?;
            let engine = make_engine(MantaConfig::full(), resilience, cache.clone());
            let server = manta_serve::Server::spawn(engine, config)
                .map_err(|e| CliError(format!("cannot start daemon: {e}")))?;
            // Print the bound address eagerly: with port 0 the caller
            // cannot know it, and `out` is only shown after the drain.
            println!("manta-serve listening on {}", server.addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.join();
            let _ = writeln!(out, "drained and shut down");
        }
        Some("client") => {
            use manta_serve::proto::{Request, Response};
            let [_, addr, sub @ ..] = args else {
                return err(USAGE);
            };
            let request = match sub {
                [cmd] if cmd == "ping" => Request::Ping,
                [cmd] if cmd == "stats" => Request::Stats,
                [cmd] if cmd == "shutdown" => Request::Shutdown,
                [cmd, input] if cmd == "analyze" => {
                    client_analyze_request(input, Sensitivity::FiCsFs, resilience, forced_frontend)?
                }
                [cmd, input, flag, s] if cmd == "analyze" && flag == "-s" => {
                    client_analyze_request(
                        input,
                        parse_sensitivity(s)?,
                        resilience,
                        forced_frontend,
                    )?
                }
                _ => return err(USAGE),
            };
            let response = manta_serve::client::call_with_retry(
                addr.as_str(),
                &request,
                manta_resilience::BackoffPolicy::default(),
                0x6d_616e_7461, // "manta"
            )
            .map_err(|e| CliError(format!("daemon call failed: {e}")))?;
            match response {
                Response::Pong => {
                    let _ = writeln!(out, "pong");
                }
                Response::Stats { text } => out.push_str(&text),
                Response::ShuttingDown => {
                    let _ = writeln!(out, "daemon draining");
                }
                Response::Overloaded { retry_after_ms } => {
                    return err(format!("daemon overloaded; retry in {retry_after_ms} ms"));
                }
                Response::Error { error } => {
                    return err(format!("daemon error: {error}"));
                }
                Response::Analyzed {
                    result,
                    summary,
                    degraded,
                } => {
                    if degraded {
                        let _ = writeln!(out, "degraded result");
                    }
                    let _ = writeln!(out, "{summary}");
                    let _ = writeln!(out, "result: {} bytes (canonical encoding)", result.len());
                }
            }
        }
        _ => return err(USAGE),
    }
    if let Some(c) = &cache {
        // Surface cache degradations (recovered-on-open, corrupt entries
        // discarded) the same way inference degradations are reported,
        // and mirror the traffic counters into telemetry for
        // `--trace`/`--stats` consumers.
        for d in c.take_degradations() {
            let _ = writeln!(out, "degraded: {d}");
        }
        c.publish_telemetry();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASM: &str = "\
module clitest
extern malloc, 1, ret
extern free, 1
func take(1) -> ret {
    ld.w64 r0, [r1+0]
    ret
}
func main(0) -> ret {
    movi r1, 32
    ecall malloc, 1
    mov r7, r0
    mov r1, r7
    call take, 1
    mov r1, r7
    ecall free, 1
    ld.w64 r0, [r7+0]
    ret
}
";

    fn with_files<T>(f: impl FnOnce(&Path) -> T) -> T {
        let dir = std::env::temp_dir().join(format!("manta-cli-test-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let r = f(&dir);
        let _ = fs::remove_dir_all(&dir);
        r
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn asm_disasm_lift_roundtrip() {
        with_files(|dir| {
            let src = dir.join("p.s");
            let sbf = dir.join("p.sbf");
            fs::write(&src, ASM).unwrap();
            let out = run(&s(&[
                "asm",
                src.to_str().unwrap(),
                "-o",
                sbf.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("2 functions"), "{out}");
            let dis = run(&s(&["disasm", sbf.to_str().unwrap()])).unwrap();
            assert!(dis.contains("ecall malloc"), "{dis}");
            let ir = run(&s(&["lift", sbf.to_str().unwrap()])).unwrap();
            assert!(ir.contains("module clitest"), "{ir}");
            assert!(ir.contains("call.w64 !malloc"), "{ir}");
        });
    }

    #[test]
    fn asm_assembles_x86_behind_the_frontend_flag() {
        let asm = "\
module clix86
func double(1) -> ret {
    mov rax, rdi
    add rax, rdi
    ret
}
";
        with_files(|dir| {
            let src = dir.join("p86.s");
            let bin = dir.join("p86.bin");
            fs::write(&src, asm).unwrap();
            let out = run(&s(&[
                "asm",
                src.to_str().unwrap(),
                "-o",
                bin.to_str().unwrap(),
                "--frontend",
                "x86",
            ]))
            .unwrap();
            assert!(out.contains("1 functions"), "{out}");
            // The written container carries the XLF magic and sniffs
            // back through the x86 frontend without the flag.
            let bytes = fs::read(&bin).unwrap();
            assert!(bytes.starts_with(b"\x7fELF"), "XLF magic expected");
            let ir = run(&s(&["lift", bin.to_str().unwrap()])).unwrap();
            assert!(ir.contains("module clix86"), "{ir}");
            assert!(ir.contains("add"), "{ir}");
        });
    }

    #[test]
    fn infer_reports_pointer_parameter() {
        with_files(|dir| {
            let src = dir.join("p.s");
            fs::write(&src, ASM).unwrap();
            let out = run(&s(&["infer", src.to_str().unwrap()])).unwrap();
            assert!(out.contains("take#arg0: ptr"), "{out}");
            // The reversed-order ablation is reachable from the CLI too.
            let out = run(&s(&["infer", src.to_str().unwrap(), "-s", "fifscs"])).unwrap();
            assert!(out.contains("FI+FS+CS"), "{out}");
        });
    }

    #[test]
    fn bugs_finds_the_uaf() {
        with_files(|dir| {
            let src = dir.join("p.s");
            fs::write(&src, ASM).unwrap();
            let out = run(&s(&["bugs", src.to_str().unwrap()])).unwrap();
            assert!(out.contains("[UAF] in main"), "{out}");
        });
    }

    #[test]
    fn lift_accepts_textual_ir() {
        with_files(|dir| {
            let f = dir.join("m.mir");
            fs::write(&f, "module t\nfunc f(w64) -> w64 {\nbb0:\n  ret p0\n}\n").unwrap();
            let out = run(&s(&["lift", f.to_str().unwrap()])).unwrap();
            assert!(out.contains("func f(w64) -> w64"), "{out}");
        });
    }

    #[test]
    fn bad_usage_is_an_error() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["infer", "/nonexistent/file"])).is_err());
        assert!(
            run(&s(&["infer", "x.s", "--stats"])).is_err(),
            "--stats needs a path"
        );
        assert!(
            run(&s(&["infer", "x.s", "--fuel"])).is_err(),
            "--fuel needs a number"
        );
        assert!(
            run(&s(&["infer", "x.s", "--budget-ms", "soon"])).is_err(),
            "--budget-ms needs a number"
        );
    }

    #[test]
    fn zero_fuel_degrades_unless_strict() {
        with_files(|dir| {
            let src = dir.join("p.s");
            fs::write(&src, ASM).unwrap();
            // Non-strict: the command succeeds and reports the degradation.
            let out = run(&s(&["infer", src.to_str().unwrap(), "--fuel", "0"])).unwrap();
            assert!(out.contains("degraded"), "{out}");
            // Strict: the same budget is a hard error.
            let e = run(&s(&[
                "infer",
                src.to_str().unwrap(),
                "--fuel",
                "0",
                "--strict",
            ]))
            .unwrap_err();
            assert!(e.to_string().contains("budget"), "{e}");
        });
    }

    /// Restores the auto thread count even when an assertion panics, so
    /// a failure here cannot leak `--threads` into the other tests in
    /// this process (their outputs — and cache keys — must not depend
    /// on test ordering).
    struct ThreadGuard;

    impl Drop for ThreadGuard {
        fn drop(&mut self) {
            manta_parallel::set_threads(0);
        }
    }

    #[test]
    fn thread_count_does_not_change_infer_output() {
        with_files(|dir| {
            let _restore = ThreadGuard;
            let src = dir.join("p.s");
            fs::write(&src, ASM).unwrap();
            let serial = run(&s(&["infer", src.to_str().unwrap(), "--threads", "1"])).unwrap();
            let pooled = run(&s(&["infer", src.to_str().unwrap(), "--threads", "8"])).unwrap();
            assert_eq!(serial, pooled);
            assert!(
                run(&s(&["infer", src.to_str().unwrap(), "--threads", "many"])).is_err(),
                "--threads needs a number"
            );
        });
    }

    #[test]
    fn generous_fuel_matches_the_unbudgeted_run() {
        with_files(|dir| {
            let src = dir.join("p.s");
            fs::write(&src, ASM).unwrap();
            let plain = run(&s(&["infer", src.to_str().unwrap()])).unwrap();
            let budgeted = run(&s(&[
                "infer",
                src.to_str().unwrap(),
                "--fuel",
                "100000000",
                "--strict",
            ]))
            .unwrap();
            assert_eq!(plain, budgeted);
        });
    }

    #[test]
    fn cached_infer_is_bit_identical_and_survives_corruption() {
        with_files(|dir| {
            let src = dir.join("p.s");
            fs::write(&src, ASM).unwrap();
            let cache_dir = dir.join("cache");
            let cached = |extra: &[&str]| {
                let mut args = vec!["infer", src.to_str().unwrap()];
                args.extend(["--cache-dir", cache_dir.to_str().unwrap()]);
                args.extend(extra);
                run(&s(&args)).unwrap()
            };

            let cold = cached(&[]);
            assert!(
                fs::read_dir(&cache_dir).unwrap().count() > 0,
                "cold run must populate the cache"
            );
            let warm = cached(&[]);
            assert_eq!(warm, cold, "warm output must be bit-identical");
            // `--no-cache` forces the cold path and also matches.
            assert_eq!(cached(&["--no-cache"]), cold);

            // Corrupt every entry file; the run degrades gracefully and
            // still produces the same answer.
            for e in fs::read_dir(&cache_dir).unwrap() {
                let p = e.unwrap().path();
                if p.extension().is_some_and(|x| x == "entry") {
                    fs::write(&p, b"garbage").unwrap();
                }
            }
            assert_eq!(cached(&[]), cold, "corrupt cache must recompute");

            assert!(
                run(&s(&["infer", src.to_str().unwrap(), "--cache-dir"])).is_err(),
                "--cache-dir needs a path"
            );
        });
    }

    /// An input with an indirect call so `stats` exercises icall spans too.
    const ICALL_ASM: &str = "\
module clistats
extern malloc, 1, ret
extern free, 1
func take(1) -> ret {
    ld.w64 r0, [r1+0]
    ret
}
func main(0) -> ret {
    movi r1, 32
    ecall malloc, 1
    mov r7, r0
    mov r1, r7
    call take, 1
    lea.f r2, take
    icall r2, 1
    mov r1, r7
    ecall free, 1
    ld.w64 r0, [r7+0]
    ret
}
";

    // `stats`, `--trace` and `--stats` all flip the process-global
    // collector, so they share one serialized test.
    #[test]
    fn stats_views_cover_the_whole_pipeline() {
        with_files(|dir| {
            let src = dir.join("p.s");
            fs::write(&src, ICALL_ASM).unwrap();

            // The subcommand prints every pipeline stage with wall time.
            let out = run(&s(&["stats", src.to_str().unwrap()])).unwrap();
            for span in [
                "preprocess",
                "pointsto",
                "ddg",
                "fi",
                "cs",
                "fs",
                "checkers",
            ] {
                assert!(out.contains(span), "stage `{span}` missing from:\n{out}");
            }
            assert!(out.contains("ms"), "spans carry wall time: {out}");
            assert!(out.contains("counters:"), "{out}");
            assert!(out.contains("unify.ops"), "{out}");
            // A clean run reports zeroed resilience counters, and with
            // no --cache-dir the cache line reports zero traffic.
            assert!(out.contains("resilience: 0 degradations"), "{out}");
            assert!(out.contains("cache: 0 hits, 0 misses"), "{out}");
            // Summary mode needs --cache-dir, so the line renders zeros here.
            assert!(out.contains("summaries: 0 chunk replays"), "{out}");
            // Stats drives the compositional points-to solver, so the
            // partition counters carry live (nonzero) traffic.
            assert!(out.contains("boundary deltas"), "{out}");
            assert!(!out.contains("pointsto: 0 partitions"), "{out}");

            // `--stats` writes a JSON report the hand parser accepts.
            let json_path = dir.join("stats.json");
            run(&s(&[
                "infer",
                src.to_str().unwrap(),
                "--stats",
                json_path.to_str().unwrap(),
            ]))
            .unwrap();
            let text = fs::read_to_string(&json_path).unwrap();
            let v = manta_store::json::parse(&text).expect("valid JSON");
            assert!(!v.get("spans").unwrap().as_array().unwrap().is_empty());
            let counters = v.get("counters").unwrap();
            assert!(counters.get("unify.ops").unwrap().as_f64().unwrap() > 0.0);

            // `--trace` keeps stdout clean (the tree goes to stderr).
            let out = run(&s(&["bugs", src.to_str().unwrap(), "--trace"])).unwrap();
            assert!(out.contains("reports"), "{out}");
            assert!(
                !out.contains("spans:"),
                "trace must not pollute stdout: {out}"
            );

            // `profile` runs the same pipeline with tracing on and
            // summarizes the trace buffer.
            let out = run(&s(&["profile", src.to_str().unwrap()])).unwrap();
            assert!(out.contains("bug reports"), "{out}");
            assert!(out.contains("events across"), "{out}");
            assert!(out.contains("ms over"), "{out}");

            // `--trace-out` writes a Chrome trace-event document: ph "X"
            // complete events with pid/tid and microsecond timestamps.
            let trace_path = dir.join("trace.json");
            run(&s(&[
                "infer",
                src.to_str().unwrap(),
                "--trace-out",
                trace_path.to_str().unwrap(),
            ]))
            .unwrap();
            let doc = fs::read_to_string(&trace_path).unwrap();
            let v = manta_store::json::parse(&doc).expect("valid JSON");
            let events = v.get("traceEvents").unwrap().as_array().unwrap();
            assert!(!events.is_empty(), "trace must hold events");
            for e in events {
                assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
                assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
                assert!(e.get("dur").unwrap().as_f64().is_some());
                assert!(e.get("tid").unwrap().as_f64().unwrap() >= 1.0);
            }
            assert!(
                run(&s(&["infer", src.to_str().unwrap(), "--trace-out"])).is_err(),
                "--trace-out needs a path"
            );
        });
    }

    /// A minimal XLF image: `main` returns `f(7)` where `f` doubles its
    /// argument — enough to exercise decode, lift, and inference.
    fn x86_image_bytes() -> Vec<u8> {
        use manta_x86::{Gpr, ImageBuilder, Inst, OpWidth, SymInst};
        let mut b = ImageBuilder::new("clix86");
        b.function(
            "f",
            1,
            true,
            vec![
                SymInst::Real(Inst::MovRR {
                    w: OpWidth::B64,
                    dst: Gpr::RAX,
                    src: Gpr::RDI,
                }),
                SymInst::Real(Inst::AluRR {
                    op: manta_x86::Alu::Add,
                    dst: Gpr::RAX,
                    src: Gpr::RDI,
                }),
                SymInst::Real(Inst::Ret),
            ],
        );
        b.function(
            "main",
            0,
            true,
            vec![
                SymInst::Real(Inst::MovRI {
                    dst: Gpr::RDI,
                    imm: 7,
                }),
                SymInst::CallFunc("f".into()),
                SymInst::Real(Inst::Ret),
            ],
        );
        manta_x86::encode_image(&b.build().unwrap())
    }

    #[test]
    fn x86_images_are_auto_detected_and_forceable() {
        with_files(|dir| {
            let xlf = dir.join("p.xlf");
            fs::write(&xlf, x86_image_bytes()).unwrap();
            // Sniffed by magic: lift and infer work without any flag.
            let ir = run(&s(&["lift", xlf.to_str().unwrap()])).unwrap();
            assert!(ir.contains("module clix86"), "{ir}");
            let out = run(&s(&["infer", xlf.to_str().unwrap()])).unwrap();
            assert!(out.contains("f#arg0"), "{out}");
            // The explicit override takes the same path.
            let forced = run(&s(&["lift", xlf.to_str().unwrap(), "--frontend", "x86"])).unwrap();
            assert_eq!(forced, ir);
            // Forcing the wrong frontend is a decode error, not a panic.
            assert!(run(&s(&["lift", xlf.to_str().unwrap(), "--frontend", "sb"])).is_err());
            // The `stats` pipeline surfaces the lift.* counters.
            let stats = run(&s(&["stats", xlf.to_str().unwrap()])).unwrap();
            assert!(stats.contains("frontend:"), "{stats}");
            assert!(!stats.contains("frontend: 0 insts decoded"), "{stats}");
        });
    }

    #[test]
    fn unknown_magic_lists_the_frontends() {
        with_files(|dir| {
            let bad = dir.join("p.bin");
            fs::write(&bad, [0u8, 159, 146, 150]).unwrap();
            let e = run(&s(&["lift", bad.to_str().unwrap()])).unwrap_err();
            let msg = e.to_string();
            assert!(msg.contains("unrecognized image magic"), "{msg}");
            assert!(msg.contains("sb") && msg.contains("x86"), "{msg}");
            assert!(msg.contains("SBF1") && msg.contains("ELF"), "{msg}");
            // An unknown --frontend name gets the same listing.
            let e = run(&s(&["lift", bad.to_str().unwrap(), "--frontend", "mips"])).unwrap_err();
            assert!(e.to_string().contains("available frontends"), "{e}");
        });
    }

    #[test]
    fn explain_prints_a_derivation_tree() {
        with_files(|dir| {
            let src = dir.join("p.s");
            fs::write(&src, ASM).unwrap();
            // `take`'s pointer parameter: revealed by its own load and
            // propagated through the cascade, so the tree bottoms out at
            // reveal leaves under at least one inference tier.
            let out = run(&s(&["explain", src.to_str().unwrap(), "take", "p0"])).unwrap();
            assert!(out.contains("take:p0"), "{out}");
            assert!(out.contains("reveal"), "{out}");
            assert!(
                out.contains("FI") || out.contains("+CS") || out.contains("+FS"),
                "tree must cross an inference tier: {out}"
            );
            // Unknown values are a usage error, not a panic.
            let e = run(&s(&["explain", src.to_str().unwrap(), "take", "v99"])).unwrap_err();
            assert!(e.to_string().contains("no value"), "{e}");
            let e = run(&s(&["explain", src.to_str().unwrap(), "nosuch", "p0"])).unwrap_err();
            assert!(e.to_string().contains("no value"), "{e}");
        });
    }
}
