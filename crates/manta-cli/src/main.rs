//! The `manta` binary — see [`manta_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match manta_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
