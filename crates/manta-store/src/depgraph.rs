//! Dependency-aware invalidation over an analysis dependency graph.
//!
//! Nodes are dense `u32` indices (the caller maps function ids or names
//! onto them); edges point from a unit to the units it *depends on*
//! (caller → callee for call-graph dependencies, pointer-user → pointee
//! allocator for points-to dependencies). Given the set of changed
//! units, [`DepGraph::dependents`] computes the reverse closure — every
//! unit whose cached results may be stale — and
//! [`DepGraph::affected`] the bidirectional closure, the sound dirty
//! set for whole-module analyses (unification propagates both from
//! callees to callers and from callers into callees).
//!
//! [`DepGraph::closure_hash`] turns per-unit content hashes into
//! dependency-closure hashes: a unit's key hash covers its own content
//! plus everything it can reach, so entries keyed this way are
//! invalidated *by construction* when any dependency changes — the
//! content-addressed half of the invalidation story.

use crate::hash::Fingerprint;

/// A directed dependency graph over dense `u32` node indices.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Forward edges: `deps[n]` = nodes `n` depends on.
    deps: Vec<Vec<u32>>,
    /// Reverse edges: `rdeps[n]` = nodes depending on `n`.
    rdeps: Vec<Vec<u32>>,
}

impl DepGraph {
    /// An empty graph over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> DepGraph {
        DepGraph {
            deps: vec![Vec::new(); n],
            rdeps: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Records that `from` depends on `to` (e.g. caller → callee).
    /// Out-of-range indices are ignored; duplicate edges are fine.
    pub fn add_dep(&mut self, from: u32, to: u32) {
        if (from as usize) < self.deps.len() && (to as usize) < self.deps.len() {
            self.deps[from as usize].push(to);
            self.rdeps[to as usize].push(from);
        }
    }

    fn closure(&self, seeds: &[u32], edges: impl Fn(u32) -> Vec<u32>) -> Vec<u32> {
        let mut seen = vec![false; self.deps.len()];
        let mut work: Vec<u32> = Vec::new();
        for &s in seeds {
            if (s as usize) < seen.len() && !seen[s as usize] {
                seen[s as usize] = true;
                work.push(s);
            }
        }
        let mut out = Vec::new();
        while let Some(n) = work.pop() {
            out.push(n);
            for m in edges(n) {
                if !seen[m as usize] {
                    seen[m as usize] = true;
                    work.push(m);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The reverse closure of `changed` (the changed units plus every
    /// transitive dependent), sorted. This is the set whose per-unit
    /// cache entries must be invalidated when `changed` changed.
    #[must_use]
    pub fn dependents(&self, changed: &[u32]) -> Vec<u32> {
        self.closure(changed, |n| self.rdeps[n as usize].clone())
    }

    /// The bidirectional closure of `changed`, sorted — the sound dirty
    /// set for analyses that propagate information both ways along
    /// dependency edges (global unification).
    #[must_use]
    pub fn affected(&self, changed: &[u32]) -> Vec<u32> {
        self.closure(changed, |n| {
            let mut v = self.rdeps[n as usize].clone();
            v.extend_from_slice(&self.deps[n as usize]);
            v
        })
    }

    /// Dependency-closure hashes: `out[n]` covers `content[n]` plus the
    /// contents of every unit reachable from `n` along dependency
    /// edges. Deterministic (reachable sets are hashed in index order)
    /// and cycle-safe.
    ///
    /// # Panics
    ///
    /// Panics if `content.len()` differs from the node count.
    #[must_use]
    pub fn closure_hash(&self, content: &[u64]) -> Vec<u64> {
        assert_eq!(content.len(), self.deps.len(), "one hash per node");
        (0..self.deps.len() as u32)
            .map(|n| {
                let reach = self.closure(&[n], |m| self.deps[m as usize].clone());
                let mut h = Fingerprint::new();
                h.write_u64(u64::from(n));
                for r in reach {
                    h.write_u64(u64::from(r)).write_u64(content[r as usize]);
                }
                h.finish()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a → b → c, d isolated (a depends on b, b on c).
    fn chain() -> DepGraph {
        let mut g = DepGraph::new(4);
        g.add_dep(0, 1);
        g.add_dep(1, 2);
        g
    }

    #[test]
    fn dependents_is_reverse_reachability() {
        let g = chain();
        // c changed: b and a are stale, d untouched.
        assert_eq!(g.dependents(&[2]), vec![0, 1, 2]);
        // a changed: nothing depends on a.
        assert_eq!(g.dependents(&[0]), vec![0]);
        assert_eq!(g.dependents(&[3]), vec![3]);
    }

    #[test]
    fn affected_is_bidirectional() {
        let g = chain();
        assert_eq!(g.affected(&[1]), vec![0, 1, 2]);
        assert_eq!(g.affected(&[3]), vec![3]);
    }

    #[test]
    fn closure_hash_changes_exactly_for_dependents() {
        let g = chain();
        let before = g.closure_hash(&[10, 20, 30, 40]);
        // Change c's content: a, b, c hashes move; d's must not.
        let after = g.closure_hash(&[10, 20, 31, 40]);
        assert_ne!(before[0], after[0]);
        assert_ne!(before[1], after[1]);
        assert_ne!(before[2], after[2]);
        assert_eq!(before[3], after[3]);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = DepGraph::new(2);
        g.add_dep(0, 1);
        g.add_dep(1, 0);
        assert_eq!(g.dependents(&[0]), vec![0, 1]);
        let h = g.closure_hash(&[1, 2]);
        assert_eq!(h.len(), 2);
    }
}
