//! Dependency-aware invalidation over an analysis dependency graph.
//!
//! Nodes are dense `u32` indices (the caller maps function ids or names
//! onto them); edges point from a unit to the units it *depends on*
//! (caller → callee for call-graph dependencies, pointer-user → pointee
//! allocator for points-to dependencies). Given the set of changed
//! units, [`DepGraph::dependents`] computes the reverse closure — every
//! unit whose cached results may be stale — and
//! [`DepGraph::affected`] the bidirectional closure, the sound dirty
//! set for whole-module analyses (unification propagates both from
//! callees to callers and from callers into callees).
//!
//! [`DepGraph::closure_hash`] turns per-unit content hashes into
//! dependency-closure hashes: a unit's key hash covers its own content
//! plus everything it can reach, so entries keyed this way are
//! invalidated *by construction* when any dependency changes — the
//! content-addressed half of the invalidation story.

use crate::hash::Fingerprint;

/// A directed dependency graph over dense `u32` node indices.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Forward edges: `deps[n]` = nodes `n` depends on.
    deps: Vec<Vec<u32>>,
    /// Reverse edges: `rdeps[n]` = nodes depending on `n`.
    rdeps: Vec<Vec<u32>>,
}

impl DepGraph {
    /// An empty graph over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> DepGraph {
        DepGraph {
            deps: vec![Vec::new(); n],
            rdeps: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Records that `from` depends on `to` (e.g. caller → callee).
    /// Out-of-range indices are ignored; duplicate edges are fine.
    pub fn add_dep(&mut self, from: u32, to: u32) {
        if (from as usize) < self.deps.len() && (to as usize) < self.deps.len() {
            self.deps[from as usize].push(to);
            self.rdeps[to as usize].push(from);
        }
    }

    fn closure(&self, seeds: &[u32], edges: impl Fn(u32) -> Vec<u32>) -> Vec<u32> {
        let mut seen = vec![false; self.deps.len()];
        let mut work: Vec<u32> = Vec::new();
        for &s in seeds {
            if (s as usize) < seen.len() && !seen[s as usize] {
                seen[s as usize] = true;
                work.push(s);
            }
        }
        let mut out = Vec::new();
        while let Some(n) = work.pop() {
            out.push(n);
            for m in edges(n) {
                if !seen[m as usize] {
                    seen[m as usize] = true;
                    work.push(m);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The reverse closure of `changed` (the changed units plus every
    /// transitive dependent), sorted. This is the set whose per-unit
    /// cache entries must be invalidated when `changed` changed.
    #[must_use]
    pub fn dependents(&self, changed: &[u32]) -> Vec<u32> {
        self.closure(changed, |n| self.rdeps[n as usize].clone())
    }

    /// The bidirectional closure of `changed`, sorted — the sound dirty
    /// set for analyses that propagate information both ways along
    /// dependency edges (global unification).
    #[must_use]
    pub fn affected(&self, changed: &[u32]) -> Vec<u32> {
        self.closure(changed, |n| {
            let mut v = self.rdeps[n as usize].clone();
            v.extend_from_slice(&self.deps[n as usize]);
            v
        })
    }

    /// Condenses the graph into strongly connected components and
    /// arranges them into bottom-up wavefronts.
    ///
    /// SCC ids are assigned deterministically (ordered by each
    /// component's smallest member node). `levels[0]` holds the leaf
    /// SCCs — components depending on nothing outside themselves — and
    /// `levels[k]` the components whose out-of-component dependencies
    /// all live in levels `< k`. Scheduling level by level therefore
    /// guarantees every dependency's result is ready before a component
    /// runs, while components *within* a level are mutually independent
    /// and can run concurrently. Cycles (recursion the preprocessor did
    /// not break, or points-to loops) collapse into a single component
    /// and are handled as one unit rather than looping forever.
    #[must_use]
    pub fn condense(&self) -> Condensation {
        let n = self.deps.len();
        const UNSEEN: u32 = u32::MAX;
        let mut discovery = vec![UNSEEN; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut comp_of = vec![0u32; n];
        // Components in Tarjan pop order: a component is completed only
        // after everything it depends on, so pop order is a bottom-up
        // topological order of the condensation.
        let mut comps: Vec<Vec<u32>> = Vec::new();
        let mut next = 0u32;
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if discovery[root as usize] != UNSEEN {
                continue;
            }
            call.push((root, 0));
            while let Some(&(v, ei)) = call.last() {
                let vi = v as usize;
                if ei == 0 {
                    discovery[vi] = next;
                    low[vi] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[vi] = true;
                }
                if ei < self.deps[vi].len() {
                    if let Some(frame) = call.last_mut() {
                        frame.1 += 1;
                    }
                    let w = self.deps[vi][ei] as usize;
                    if discovery[w] == UNSEEN {
                        call.push((w as u32, 0));
                    } else if on_stack[w] {
                        low[vi] = low[vi].min(discovery[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        let pi = p as usize;
                        low[pi] = low[pi].min(low[vi]);
                    }
                    if low[vi] == discovery[vi] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = comps.len() as u32;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                }
            }
        }
        // Levels in pop order: every out-of-component dependency was
        // popped earlier, so its level is already final.
        let mut pop_level = vec![0u32; comps.len()];
        for (c, members) in comps.iter().enumerate() {
            for &v in members {
                for &w in &self.deps[v as usize] {
                    let d = comp_of[w as usize] as usize;
                    if d != c {
                        pop_level[c] = pop_level[c].max(pop_level[d] + 1);
                    }
                }
            }
        }
        // Relabel components by smallest member so ids are independent
        // of DFS traversal details.
        let mut order: Vec<usize> = (0..comps.len()).collect();
        order.sort_unstable_by_key(|&c| comps[c].first().copied().unwrap_or(u32::MAX));
        let mut new_id = vec![0u32; comps.len()];
        for (pos, &c) in order.iter().enumerate() {
            new_id[c] = pos as u32;
        }
        let mut sccs = vec![Vec::new(); comps.len()];
        let mut level_of = vec![0u32; comps.len()];
        let depth = pop_level
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut levels = vec![Vec::new(); depth];
        for (c, members) in comps.into_iter().enumerate() {
            let id = new_id[c];
            level_of[id as usize] = pop_level[c];
            levels[pop_level[c] as usize].push(id);
            sccs[id as usize] = members;
        }
        for l in &mut levels {
            l.sort_unstable();
        }
        let scc_of = comp_of.into_iter().map(|c| new_id[c as usize]).collect();
        Condensation {
            scc_of,
            sccs,
            level_of,
            levels,
        }
    }

    /// Dependency-closure hashes: `out[n]` covers `content[n]` plus the
    /// contents of every unit reachable from `n` along dependency
    /// edges. Deterministic (reachable sets are hashed in index order)
    /// and cycle-safe.
    ///
    /// # Panics
    ///
    /// Panics if `content.len()` differs from the node count.
    #[must_use]
    pub fn closure_hash(&self, content: &[u64]) -> Vec<u64> {
        assert_eq!(content.len(), self.deps.len(), "one hash per node");
        (0..self.deps.len() as u32)
            .map(|n| {
                let reach = self.closure(&[n], |m| self.deps[m as usize].clone());
                let mut h = Fingerprint::new();
                h.write_u64(u64::from(n));
                for r in reach {
                    h.write_u64(u64::from(r)).write_u64(content[r as usize]);
                }
                h.finish()
            })
            .collect()
    }
}

/// The SCC condensation of a [`DepGraph`], arranged into bottom-up
/// wavefronts. Produced by [`DepGraph::condense`].
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `scc_of[n]` = the SCC id containing node `n`.
    pub scc_of: Vec<u32>,
    /// Members of each SCC, sorted; ids are ordered by smallest member.
    pub sccs: Vec<Vec<u32>>,
    /// `level_of[s]` = the wavefront level of SCC `s`.
    pub level_of: Vec<u32>,
    /// `levels[k]` = SCC ids at level `k`, sorted. Level 0 components
    /// depend on nothing outside themselves; level `k` components only
    /// on levels `< k`. SCCs within one level are mutually independent.
    pub levels: Vec<Vec<u32>>,
}

impl Condensation {
    /// Widths of the wavefronts (number of independent SCCs per level):
    /// the available parallelism at each scheduling step.
    #[must_use]
    pub fn widths(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a → b → c, d isolated (a depends on b, b on c).
    fn chain() -> DepGraph {
        let mut g = DepGraph::new(4);
        g.add_dep(0, 1);
        g.add_dep(1, 2);
        g
    }

    #[test]
    fn dependents_is_reverse_reachability() {
        let g = chain();
        // c changed: b and a are stale, d untouched.
        assert_eq!(g.dependents(&[2]), vec![0, 1, 2]);
        // a changed: nothing depends on a.
        assert_eq!(g.dependents(&[0]), vec![0]);
        assert_eq!(g.dependents(&[3]), vec![3]);
    }

    #[test]
    fn affected_is_bidirectional() {
        let g = chain();
        assert_eq!(g.affected(&[1]), vec![0, 1, 2]);
        assert_eq!(g.affected(&[3]), vec![3]);
    }

    #[test]
    fn closure_hash_changes_exactly_for_dependents() {
        let g = chain();
        let before = g.closure_hash(&[10, 20, 30, 40]);
        // Change c's content: a, b, c hashes move; d's must not.
        let after = g.closure_hash(&[10, 20, 31, 40]);
        assert_ne!(before[0], after[0]);
        assert_ne!(before[1], after[1]);
        assert_ne!(before[2], after[2]);
        assert_eq!(before[3], after[3]);
    }

    /// On the chain a→b→c (+ isolated d) the bottom-up wavefronts are
    /// {c, d}, {b}, {a}: leaves first, each level only depending on
    /// earlier ones.
    #[test]
    fn condense_chain_wavefronts() {
        let g = chain();
        let c = g.condense();
        assert_eq!(c.sccs.len(), 4);
        assert_eq!(c.sccs, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(c.levels, vec![vec![2, 3], vec![1], vec![0]]);
        assert_eq!(c.level_of, vec![2, 1, 0, 0]);
        assert_eq!(c.widths(), vec![2, 1, 1]);
    }

    /// A 2-cycle collapses into one SCC; a node depending on the cycle
    /// lands one level above it.
    #[test]
    fn condense_collapses_cycles() {
        let mut g = DepGraph::new(3);
        g.add_dep(0, 1);
        g.add_dep(1, 0);
        g.add_dep(2, 0);
        let c = g.condense();
        assert_eq!(c.sccs, vec![vec![0, 1], vec![2]]);
        assert_eq!(c.scc_of, vec![0, 0, 1]);
        assert_eq!(c.levels, vec![vec![0], vec![1]]);
    }

    /// Diamond a→{b,c}→d: b and c share a wavefront (independent), with
    /// d below and a above.
    #[test]
    fn condense_diamond_parallel_level() {
        let mut g = DepGraph::new(4);
        g.add_dep(0, 1);
        g.add_dep(0, 2);
        g.add_dep(1, 3);
        g.add_dep(2, 3);
        let c = g.condense();
        assert_eq!(c.levels, vec![vec![3], vec![1, 2], vec![0]]);
    }

    /// Self-loops are a one-node SCC, not a crash or an extra level.
    #[test]
    fn condense_self_loop() {
        let mut g = DepGraph::new(2);
        g.add_dep(0, 0);
        g.add_dep(1, 0);
        let c = g.condense();
        assert_eq!(c.sccs, vec![vec![0], vec![1]]);
        assert_eq!(c.levels, vec![vec![0], vec![1]]);
    }

    /// Deep recursion in the DFS must not blow the thread stack: a
    /// 100k-node chain condenses iteratively.
    #[test]
    fn condense_deep_chain_is_iterative() {
        let n = 100_000u32;
        let mut g = DepGraph::new(n as usize);
        for i in 0..n - 1 {
            g.add_dep(i, i + 1);
        }
        let c = g.condense();
        assert_eq!(c.sccs.len(), n as usize);
        assert_eq!(c.levels.len(), n as usize);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = DepGraph::new(2);
        g.add_dep(0, 1);
        g.add_dep(1, 0);
        assert_eq!(g.dependents(&[0]), vec![0, 1]);
        let h = g.closure_hash(&[1, 2]);
        assert_eq!(h.len(), 2);
    }
}
