//! Length-prefixed binary (de)serialization.
//!
//! Every cached payload is encoded with these two types. The format is
//! deliberately boring: little-endian fixed-width integers, `u64`
//! length prefixes for variable-size data, no alignment, no
//! backtracking. Decoders must treat *any* malformed input as
//! [`DecodeError`] — never panic — because the bytes come from disk and
//! disk lies (truncation, bit rot, version skew).

use std::fmt;

/// A decoding failure: the payload is malformed or truncated. Always a
/// recoverable condition — callers discard the entry and recompute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// What the decoder was reading when it failed.
    pub context: &'static str,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decode error in {} at byte {}",
            self.context, self.offset
        )
    }
}

impl std::error::Error for DecodeError {}

/// An append-only byte encoder.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Starts empty.
    #[must_use]
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Appends an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Appends length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// The encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A checked, panic-free byte decoder over a borrowed buffer.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reads from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn err<T>(&self, context: &'static str) -> Result<T, DecodeError> {
        Err(DecodeError {
            context,
            offset: self.pos,
        })
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        match self.buf.get(self.pos..self.pos.saturating_add(n)) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => self.err(context),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is a decode error (malformed
    /// input must never round-trip silently).
    pub fn bool(&mut self, context: &'static str) -> Result<bool, DecodeError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => self.err(context),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        let s = self.take(4, context)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let s = self.take(8, context)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `u64` and checks it fits `usize` and the remaining buffer
    /// (so a corrupt length cannot trigger a huge allocation).
    pub fn len(&mut self, context: &'static str) -> Result<usize, DecodeError> {
        let v = self.u64(context)?;
        let n = usize::try_from(v).map_err(|_| DecodeError {
            context,
            offset: self.pos,
        })?;
        if n > self.buf.len().saturating_sub(self.pos) && n > self.buf.len() {
            return self.err(context);
        }
        Ok(n)
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let n = self.len(context)?;
        self.take(n, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, DecodeError> {
        let raw = self.bytes(context)?;
        std::str::from_utf8(raw).or_else(|_| self.err(context))
    }

    /// Whether the whole buffer has been consumed (decoders should check
    /// this last: trailing garbage means a corrupt or mis-versioned
    /// payload).
    #[must_use]
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Errors unless the buffer is fully consumed.
    pub fn expect_end(&self, context: &'static str) -> Result<(), DecodeError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(DecodeError {
                context,
                offset: self.pos,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7)
            .bool(true)
            .u32(0xdead_beef)
            .u64(u64::MAX)
            .f64(-2.5)
            .str("héllo")
            .bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert!(r.bool("t").unwrap());
        assert_eq!(r.u32("t").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("t").unwrap(), u64::MAX);
        assert_eq!(r.f64("t").unwrap(), -2.5);
        assert_eq!(r.str("t").unwrap(), "héllo");
        assert_eq!(r.bytes("t").unwrap(), &[1, 2, 3]);
        assert!(r.expect_end("t").is_ok());
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut w = ByteWriter::new();
        w.str("payload").u64(9);
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            let first = r.str("s");
            if first.is_ok() {
                assert!(r.u64("n").is_err(), "cut at {cut} must fail somewhere");
            }
        }
    }

    #[test]
    fn corrupt_length_cannot_allocate() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // absurd length prefix
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert!(r.bytes("b").is_err());
    }

    #[test]
    fn bad_bool_is_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert!(r.bool("b").is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut w = ByteWriter::new();
        w.u8(1).u8(2);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        r.u8("a").unwrap();
        assert!(r.expect_end("end").is_err());
    }
}
