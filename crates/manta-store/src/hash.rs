//! Deterministic, platform-independent hashing.
//!
//! Everything keyed on disk must hash identically across runs, platforms
//! and Rust versions, so `std::hash` (randomized, unspecified) is out.
//! The store uses 64-bit FNV-1a with a splitmix64 finalizer: simple,
//! dependency-free, stable by construction, and good enough for
//! content-addressing (collisions only cost a spurious recomputation —
//! correctness never depends on absence of collisions because payloads
//! carry their own checksums).

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The splitmix64 mixing step — also the canonical seed scrambler shared
/// by the workload generator and the ISA property tests (one copy, here).
#[inline]
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The splitmix64 sequence as a stream: `SplitMix64(seed)` yields
/// `splitmix64(seed)`, `splitmix64(seed + γ)`, … — the standard
/// generator, shared by the workload RNG key expansion and the ISA
/// property tests.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next value in the stream. Deliberately not `Iterator`: the
    /// stream is infinite and callers want `u64`, not `Option<u64>`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let v = splitmix64(self.0);
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        v
    }
}

/// A streaming deterministic 64-bit hasher (FNV-1a with a splitmix64
/// finalizer). Not cryptographic; see the module docs for why that is
/// acceptable here.
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// Starts a fresh hash.
    #[must_use]
    pub fn new() -> Fingerprint {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a string (length-prefixed, so `("ab","c")` and `("a","bc")`
    /// hash differently).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Folds a `usize` as `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// The finalized hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

/// One-shot hash of a byte slice.
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    Fingerprint::new().write(bytes).finish()
}

/// One-shot hash of a string (equivalent to hashing its bytes).
#[must_use]
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Order-dependent combination of two hashes (`combine(a, b) !=
/// combine(b, a)`), for folding component hashes into one key.
#[must_use]
pub fn combine(a: u64, b: u64) -> u64 {
    Fingerprint::new().write_u64(a).write_u64(b).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_across_calls() {
        assert_eq!(hash_bytes(b"manta"), hash_bytes(b"manta"));
        assert_ne!(hash_bytes(b"manta"), hash_bytes(b"Manta"));
        // Pinned value: the on-disk format depends on this function never
        // changing silently.
        assert_eq!(hash_bytes(b""), splitmix64(FNV_OFFSET));
    }

    #[test]
    fn string_boundaries_matter() {
        let mut a = Fingerprint::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_is_order_dependent() {
        let (a, b) = (hash_str("x"), hash_str("y"));
        assert_ne!(combine(a, b), combine(b, a));
    }

    #[test]
    fn splitmix_scrambles() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
