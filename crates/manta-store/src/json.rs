//! Minimal JSON writing and parsing — enough for telemetry reports and
//! their tests, with no external crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An incremental JSON writer producing compact, valid output. Commas are
/// inserted automatically between elements.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the current nesting level already holds an element.
    has_elem: Vec<bool>,
}

impl JsonWriter {
    /// Starts with empty output.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(has) = self.has_elem.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.has_elem.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.has_elem.pop();
        self.out.push('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.has_elem.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.has_elem.pop();
        self.out.push(']');
    }

    /// Writes an object key (including the `:`).
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        escape_into(k, &mut self.out);
        self.out.push(':');
        // The key consumed the comma slot; its value must not add another.
        if let Some(has) = self.has_elem.last_mut() {
            *has = false;
        }
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        escape_into(s, &mut self.out);
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value (finite; NaN/inf serialize as 0).
    pub fn float(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push('0');
        }
    }

    /// Returns the finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order normalized).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `peek` saw a byte, so the
                    // validated slice is non-empty and yields a char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("empty scalar")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_parser_roundtrip() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("a \"quoted\"\nvalue");
        w.key("n");
        w.uint(42);
        w.key("xs");
        w.begin_array();
        w.uint(1);
        w.float(2.5);
        w.begin_object();
        w.key("deep");
        w.string("yes");
        w.end_object();
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("name").unwrap().as_str().unwrap(),
            "a \"quoted\"\nvalue"
        );
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), 42.0);
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[1].as_f64().unwrap(), 2.5);
        assert_eq!(xs[2].get("deep").unwrap().as_str().unwrap(), "yes");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
