//! The persistent, content-addressed entry store.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/MANIFEST              store-level header (magic + format version)
//! <dir>/<stage>-<content>-<config>.entry    one file per cached entry
//! ```
//!
//! Every entry file is self-verifying:
//!
//! ```text
//! offset  size  field
//! 0       8     entry magic  "MANTAENT"
//! 8       4     format version (little-endian u32)
//! 12      8     payload length (little-endian u64)
//! 20      8     payload checksum (fnv64 of the payload bytes)
//! 28      n     payload
//! ```
//!
//! ## Corruption and version skew
//!
//! Reads validate magic, version, length and checksum; any mismatch
//! deletes the offending file, bumps [`StoreStats::corrupt`] and reads
//! as a miss — the caller recomputes. A missing, foreign or
//! version-mismatched `MANIFEST` wipes all entries and starts fresh
//! ([`Store::open`] reports this so callers can log a degradation).
//! The store therefore never panics on, and never returns, bytes that
//! were not written by this exact format version with an intact
//! checksum. Stale data is prevented by content-addressing: keys include
//! the content and configuration hashes, so changed inputs simply look
//! up a different key.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hash::hash_bytes;

/// Store-level magic, first bytes of `MANIFEST`.
pub const MANIFEST_MAGIC: &[u8; 8] = b"MSTORE1\n";
/// Per-entry magic.
pub const ENTRY_MAGIC: &[u8; 8] = b"MANTAENT";
/// On-disk format version. Bump on any layout or payload-codec change:
/// old stores are then discarded wholesale on open.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// The key of one cached entry: `(stage, content-hash, config-hash)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Key {
    /// Pipeline stage tag (e.g. `infer`, `row`, `modidx`). Must be
    /// non-empty ASCII alphanumerics (plus `_`); enforced on use.
    pub stage: &'static str,
    /// Content hash of the analyzed input.
    pub content: u64,
    /// Hash of every configuration bit that affects the result.
    pub config: u64,
}

impl Key {
    /// Shorthand constructor.
    #[must_use]
    pub fn new(stage: &'static str, content: u64, config: u64) -> Key {
        Key {
            stage,
            content,
            config,
        }
    }

    fn file_name(&self) -> String {
        format!(
            "{}-{:016x}-{:016x}.entry",
            self.stage, self.content, self.config
        )
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{:016x}:{:016x}",
            self.stage, self.content, self.config
        )
    }
}

/// A failure opening or writing the store. Reads never fail — they miss.
#[derive(Debug)]
pub struct StoreError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

fn store_err<T>(msg: impl Into<String>) -> Result<T, StoreError> {
    Err(StoreError {
        message: msg.into(),
    })
}

/// Monotonic counters describing one store's traffic. All methods take
/// `&self`; the store is usable behind a shared reference.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Successful `get`s.
    pub hits: AtomicU64,
    /// `get`s that found nothing (or found corruption).
    pub misses: AtomicU64,
    /// Entries removed by dependency-aware invalidation.
    pub invalidations: AtomicU64,
    /// Corrupt or version-mismatched files discarded.
    pub corrupt: AtomicU64,
    /// Payload bytes served from the store.
    pub bytes_read: AtomicU64,
    /// Payload bytes written into the store.
    pub bytes_written: AtomicU64,
}

/// A plain-value snapshot of [`StoreStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StatsSnapshot {
    /// Successful `get`s.
    pub hits: u64,
    /// Failed `get`s (includes discarded corrupt entries).
    pub misses: u64,
    /// Entries removed by invalidation.
    pub invalidations: u64,
    /// Corrupt files discarded.
    pub corrupt: u64,
    /// Payload bytes served.
    pub bytes_read: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
}

impl StoreStats {
    /// Reads every counter at once.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// What [`Store::open`] had to do to produce a usable store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpenOutcome {
    /// The directory held a healthy store of the current format.
    Existing,
    /// The directory was empty or new; a fresh manifest was written.
    Fresh,
    /// The manifest was missing/corrupt/another version: all entries
    /// were discarded and the store reinitialized. Callers should log a
    /// degradation — cached work was lost, but correctness is intact.
    Recovered,
}

/// A directory-backed content-addressed store. Cheap to open, safe to
/// share behind a reference (all mutation is file-system level and
/// atomic-rename based).
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    stats: StoreStats,
    /// Per-stage-tag `(hits, misses)`, keyed by [`Key::stage`]. Gets are
    /// file reads, so one short mutex hold per get is noise.
    per_kind: Mutex<BTreeMap<&'static str, (u64, u64)>>,
    /// How open found the directory.
    outcome: OpenOutcome,
}

impl Store {
    /// Opens (or initializes) the store in `dir`, creating the directory
    /// if needed. See [`OpenOutcome`] for the recovery semantics.
    ///
    /// # Errors
    ///
    /// Only on unrecoverable filesystem failures (cannot create the
    /// directory or write the manifest) — never on corrupt content.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let dir = dir.into();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return store_err(format!("cannot create {}: {e}", dir.display()));
        }
        let manifest = dir.join("MANIFEST");
        let outcome = match std::fs::read(&manifest) {
            Ok(bytes) if manifest_is_current(&bytes) => OpenOutcome::Existing,
            Ok(_) => {
                // Foreign or old-format store: discard every entry.
                remove_entries(&dir);
                write_manifest(&dir)?;
                OpenOutcome::Recovered
            }
            Err(_) => {
                let had_entries = dir_has_entries(&dir);
                remove_entries(&dir);
                write_manifest(&dir)?;
                if had_entries {
                    OpenOutcome::Recovered
                } else {
                    OpenOutcome::Fresh
                }
            }
        };
        Ok(Store {
            dir,
            stats: StoreStats::default(),
            per_kind: Mutex::new(BTreeMap::new()),
            outcome,
        })
    }

    /// How [`Store::open`] found the directory.
    #[must_use]
    pub fn open_outcome(&self) -> OpenOutcome {
        self.outcome
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Per-stage-tag traffic: `(stage, hits, misses)` sorted by stage.
    /// Stages that saw no gets are absent.
    #[must_use]
    pub fn kind_traffic(&self) -> Vec<(&'static str, u64, u64)> {
        match self.per_kind.lock() {
            Ok(m) => m.iter().map(|(k, &(h, s))| (*k, h, s)).collect(),
            Err(_) => Vec::new(),
        }
    }

    fn bump_kind(&self, kind: &'static str, hit: bool) {
        if let Ok(mut m) = self.per_kind.lock() {
            let slot = m.entry(kind).or_insert((0, 0));
            if hit {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }

    fn path_of(&self, key: &Key) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Fetches a payload. Corrupt, truncated or version-mismatched
    /// entries are deleted and read as a miss; this method never panics
    /// and never returns bytes whose checksum does not match.
    pub fn get(&self, key: &Key) -> Option<Vec<u8>> {
        let path = self.path_of(key);
        let raw = match std::fs::read(&path) {
            Ok(r) => r,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.bump_kind(key.stage, false);
                return None;
            }
        };
        match decode_entry(&raw) {
            Some(payload) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                self.bump_kind(key.stage, true);
                Some(payload)
            }
            None => {
                // Corruption: discard so the next run does not re-read it.
                let _ = std::fs::remove_file(&path);
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.bump_kind(key.stage, false);
                None
            }
        }
    }

    /// Stores a payload under `key` (write-to-temp + rename, so readers
    /// never observe a half-written entry).
    ///
    /// # Errors
    ///
    /// On filesystem failures. Callers may ignore the error — a failed
    /// put only costs a future recomputation.
    pub fn put(&self, key: &Key, payload: &[u8]) -> Result<(), StoreError> {
        debug_assert!(
            !key.stage.is_empty()
                && key
                    .stage
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_'),
            "stage tags must be [A-Za-z0-9_]+: {:?}",
            key.stage
        );
        let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
        file.extend_from_slice(ENTRY_MAGIC);
        file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&hash_bytes(payload).to_le_bytes());
        file.extend_from_slice(payload);
        let path = self.path_of(key);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{:x}",
            std::process::id(),
            hash_bytes(path.as_os_str().as_encoded_bytes())
        ));
        if let Err(e) = std::fs::write(&tmp, &file) {
            return store_err(format!("cannot write {}: {e}", tmp.display()));
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return store_err(format!("cannot commit {}: {e}", path.display()));
        }
        self.stats
            .bytes_written
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Removes one entry (idempotent). Returns whether a file existed.
    pub fn invalidate(&self, key: &Key) -> bool {
        let existed = std::fs::remove_file(self.path_of(key)).is_ok();
        if existed {
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Removes every entry whose `(stage, content)` pair matches,
    /// across all config hashes. Returns the number removed.
    pub fn invalidate_content(&self, stage: &str, content: u64) -> usize {
        let prefix = format!("{stage}-{content:016x}-");
        let mut removed = 0;
        for name in self.entry_names() {
            if name.starts_with(&prefix) && std::fs::remove_file(self.dir.join(&name)).is_ok() {
                removed += 1;
            }
        }
        self.stats
            .invalidations
            .fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Number of entry files currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entry_names().len()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry, keeping the manifest.
    pub fn clear(&self) {
        remove_entries(&self.dir);
    }

    fn entry_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for e in rd.flatten() {
                if let Some(name) = e.file_name().to_str() {
                    if name.ends_with(".entry") {
                        names.push(name.to_string());
                    }
                }
            }
        }
        names.sort();
        names
    }
}

fn manifest_is_current(bytes: &[u8]) -> bool {
    bytes.len() >= 12
        && &bytes[..8] == MANIFEST_MAGIC
        && bytes[8..12] == FORMAT_VERSION.to_le_bytes()
}

fn write_manifest(dir: &Path) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(12);
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    match std::fs::write(dir.join("MANIFEST"), bytes) {
        Ok(()) => Ok(()),
        Err(e) => store_err(format!("cannot write manifest in {}: {e}", dir.display())),
    }
}

fn dir_has_entries(dir: &Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|rd| {
        rd.flatten().any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".entry"))
        })
    })
}

fn remove_entries(dir: &Path) {
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            let keep = e
                .file_name()
                .to_str()
                .is_some_and(|n| !n.ends_with(".entry") && !n.starts_with(".tmp-"));
            if !keep {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

/// Validates and strips an entry header, returning the payload.
fn decode_entry(raw: &[u8]) -> Option<Vec<u8>> {
    if raw.len() < HEADER_LEN || &raw[..8] != ENTRY_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(raw[8..12].try_into().ok()?);
    if version != FORMAT_VERSION {
        return None;
    }
    let len = u64::from_le_bytes(raw[12..20].try_into().ok()?);
    let checksum = u64::from_le_bytes(raw[20..28].try_into().ok()?);
    let payload = &raw[HEADER_LEN..];
    if payload.len() as u64 != len || hash_bytes(payload) != checksum {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("manta-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let dir = temp_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.open_outcome(), OpenOutcome::Fresh);
        let key = Key::new("infer", 0xabc, 0xdef);
        assert!(store.get(&key).is_none());
        store.put(&key, b"payload").unwrap();
        assert_eq!(store.get(&key).unwrap(), b"payload");
        let s = store.stats().snapshot();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes_written, 7);
        assert_eq!(s.bytes_read, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_preserves_entries() {
        let dir = temp_dir("reopen");
        let key = Key::new("row", 1, 2);
        {
            let store = Store::open(&dir).unwrap();
            store.put(&key, b"persisted").unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.open_outcome(), OpenOutcome::Existing);
        assert_eq!(store.get(&key).unwrap(), b"persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_discarded_not_served() {
        let dir = temp_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        let key = Key::new("infer", 3, 4);
        store.put(&key, b"good data here").unwrap();
        // Flip a payload byte on disk.
        let path = dir.join(key.file_name());
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        std::fs::write(&path, raw).unwrap();
        assert!(store.get(&key).is_none(), "corrupt entry must miss");
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert_eq!(store.stats().snapshot().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_wipes_on_open() {
        let dir = temp_dir("version");
        {
            let store = Store::open(&dir).unwrap();
            store.put(&Key::new("infer", 1, 1), b"old").unwrap();
        }
        // Rewrite the manifest with a future version.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MANIFEST_MAGIC);
        bytes.extend_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(dir.join("MANIFEST"), bytes).unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.open_outcome(), OpenOutcome::Recovered);
        assert!(store.is_empty(), "old-format entries must be discarded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_content_removes_all_configs() {
        let dir = temp_dir("inval");
        let store = Store::open(&dir).unwrap();
        store.put(&Key::new("infer", 9, 1), b"a").unwrap();
        store.put(&Key::new("infer", 9, 2), b"b").unwrap();
        store.put(&Key::new("infer", 8, 1), b"keep").unwrap();
        assert_eq!(store.invalidate_content("infer", 9), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().snapshot().invalidations, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
