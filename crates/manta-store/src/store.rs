//! The persistent, content-addressed entry store.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/MANIFEST              store-level header (magic + format version)
//! <dir>/LOCK                  advisory single-writer lock (holder pid)
//! <dir>/<stage>-<content>-<config>.entry    one file per cached entry
//! ```
//!
//! Every entry file is self-verifying:
//!
//! ```text
//! offset  size  field
//! 0       8     entry magic  "MANTAENT"
//! 8       4     format version (little-endian u32)
//! 12      8     payload length (little-endian u64)
//! 20      8     payload checksum (fnv64 of the payload bytes)
//! 28      n     payload
//! ```
//!
//! ## Corruption and version skew
//!
//! Reads validate magic, version, length and checksum; any mismatch
//! deletes the offending file, bumps [`StoreStats::corrupt`] and reads
//! as a miss — the caller recomputes. A missing, foreign or
//! version-mismatched `MANIFEST` wipes all entries and starts fresh
//! ([`Store::open`] reports this so callers can log a degradation).
//! The store therefore never panics on, and never returns, bytes that
//! were not written by this exact format version with an intact
//! checksum. Stale data is prevented by content-addressing: keys include
//! the content and configuration hashes, so changed inputs simply look
//! up a different key.
//!
//! ## Advisory locking and unclean shutdown
//!
//! Opening a store takes an OS advisory lock (`File::try_lock`; `flock`
//! on Linux) on the `LOCK` file, so two *processes* — or two openers in
//! one process — cannot race the same directory. The kernel releases
//! the lock when the holder exits, however it exits, so a stale lock
//! cannot outlive its holder and takeover needs no delete-and-recreate
//! dance (which would be racy). The file also records the holder's pid:
//! written at acquisition, blanked on clean [`Store`] drop. Acquiring
//! the lock over a non-blank pid therefore means the previous holder
//! died mid-flight — an *unclean shutdown*: the opener sweeps
//! half-written `.tmp-*` files, keeps every committed (self-verifying)
//! entry, and reports [`OpenOutcome::Recovered`]. A second opener
//! against a live holder waits briefly, then fails with a diagnostic
//! naming the holder pid. The `LOCK` file itself is never unlinked:
//! removing it would let a new opener lock a fresh inode while an older
//! waiter still held the unlinked one, silently admitting two writers.
//!
//! ## Garbage collection
//!
//! [`Store::gc`] evicts least-recently-used entries until the store fits
//! a byte budget. Recency is the entry file's modification time — hits
//! refresh it — with ties broken by file name so eviction order is
//! deterministic. Eviction is always safe: keys are content-addressed,
//! so an evicted entry can only cost a recomputation, never a wrong
//! answer.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use crate::hash::hash_bytes;

/// Store-level magic, first bytes of `MANIFEST`.
pub const MANIFEST_MAGIC: &[u8; 8] = b"MSTORE1\n";
/// Per-entry magic.
pub const ENTRY_MAGIC: &[u8; 8] = b"MANTAENT";
/// On-disk format version. Bump on any layout or payload-codec change:
/// old stores are then discarded wholesale on open.
pub const FORMAT_VERSION: u32 = 1;
/// Name of the advisory lock file inside the store directory.
pub const LOCK_FILE: &str = "LOCK";
/// How long [`Store::open`] waits for a live lock holder before failing.
pub const DEFAULT_LOCK_WAIT: Duration = Duration::from_secs(2);

const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// The key of one cached entry: `(stage, content-hash, config-hash)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Key {
    /// Pipeline stage tag (e.g. `infer`, `row`, `modidx`). Must be
    /// non-empty ASCII alphanumerics (plus `_`); enforced on use.
    pub stage: &'static str,
    /// Content hash of the analyzed input.
    pub content: u64,
    /// Hash of every configuration bit that affects the result.
    pub config: u64,
}

impl Key {
    /// Shorthand constructor.
    #[must_use]
    pub fn new(stage: &'static str, content: u64, config: u64) -> Key {
        Key {
            stage,
            content,
            config,
        }
    }

    fn file_name(&self) -> String {
        format!(
            "{}-{:016x}-{:016x}.entry",
            self.stage, self.content, self.config
        )
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{:016x}:{:016x}",
            self.stage, self.content, self.config
        )
    }
}

/// A failure opening or writing the store. Reads never fail — they miss.
#[derive(Debug)]
pub struct StoreError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

fn store_err<T>(msg: impl Into<String>) -> Result<T, StoreError> {
    Err(StoreError {
        message: msg.into(),
    })
}

/// Monotonic counters describing one store's traffic. All methods take
/// `&self`; the store is usable behind a shared reference.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Successful `get`s.
    pub hits: AtomicU64,
    /// `get`s that found nothing (or found corruption).
    pub misses: AtomicU64,
    /// Entries removed by dependency-aware invalidation.
    pub invalidations: AtomicU64,
    /// Corrupt or version-mismatched files discarded.
    pub corrupt: AtomicU64,
    /// Entries evicted by [`Store::gc`].
    pub evictions: AtomicU64,
    /// Payload bytes served from the store.
    pub bytes_read: AtomicU64,
    /// Payload bytes written into the store.
    pub bytes_written: AtomicU64,
}

/// A plain-value snapshot of [`StoreStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StatsSnapshot {
    /// Successful `get`s.
    pub hits: u64,
    /// Failed `get`s (includes discarded corrupt entries).
    pub misses: u64,
    /// Entries removed by invalidation.
    pub invalidations: u64,
    /// Corrupt files discarded.
    pub corrupt: u64,
    /// Entries evicted by GC.
    pub evictions: u64,
    /// Payload bytes served.
    pub bytes_read: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
}

impl StoreStats {
    /// Reads every counter at once.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// What [`Store::open`] had to do to produce a usable store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpenOutcome {
    /// The directory held a healthy store of the current format.
    Existing,
    /// The directory was empty or new; a fresh manifest was written.
    Fresh,
    /// The store needed recovery. Either the manifest was
    /// missing/corrupt/another version (all entries discarded and the
    /// store reinitialized), or the previous holder died without
    /// releasing the `LOCK` (half-written `.tmp-*` files swept;
    /// committed entries kept — they are self-verifying). Callers should
    /// log a degradation; correctness is intact either way.
    Recovered,
}

/// A directory-backed content-addressed store. Cheap to open, safe to
/// share behind a reference (all mutation is file-system level and
/// atomic-rename based).
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    stats: StoreStats,
    /// Per-stage-tag `(hits, misses)`, keyed by [`Key::stage`]. Gets are
    /// file reads, so one short mutex hold per get is noise.
    per_kind: Mutex<BTreeMap<&'static str, (u64, u64)>>,
    /// How open found the directory.
    outcome: OpenOutcome,
    /// The held advisory lock on the store's `LOCK` file. Closing the
    /// handle (on drop) releases the kernel lock.
    lock: std::fs::File,
}

impl Store {
    /// Opens (or initializes) the store in `dir`, creating the directory
    /// if needed. Waits up to [`DEFAULT_LOCK_WAIT`] for a live advisory
    /// lock holder. See [`OpenOutcome`] for the recovery semantics.
    ///
    /// # Errors
    ///
    /// When another live process holds the store's `LOCK`, or on
    /// unrecoverable filesystem failures (cannot create the directory or
    /// write the manifest) — never on corrupt content.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        Store::open_with_lock_wait(dir, DEFAULT_LOCK_WAIT)
    }

    /// [`Store::open`] with an explicit bound on how long to wait for a
    /// live lock holder before failing.
    ///
    /// # Errors
    ///
    /// As [`Store::open`].
    pub fn open_with_lock_wait(
        dir: impl Into<PathBuf>,
        lock_wait: Duration,
    ) -> Result<Store, StoreError> {
        let dir = dir.into();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return store_err(format!("cannot create {}: {e}", dir.display()));
        }
        let lock = acquire_lock(&dir, lock_wait)?;
        let manifest = dir.join("MANIFEST");
        let outcome = match std::fs::read(&manifest) {
            Ok(bytes) if manifest_is_current(&bytes) => {
                if lock.unclean_shutdown {
                    // The previous holder died mid-flight: drop its
                    // half-written temp files, keep committed entries.
                    remove_tmp_files(&dir);
                    OpenOutcome::Recovered
                } else {
                    OpenOutcome::Existing
                }
            }
            Ok(_) => {
                // Foreign or old-format store: discard every entry.
                remove_entries(&dir);
                write_manifest(&dir)?;
                OpenOutcome::Recovered
            }
            Err(_) => {
                let had_entries = dir_has_entries(&dir);
                remove_entries(&dir);
                write_manifest(&dir)?;
                if had_entries {
                    OpenOutcome::Recovered
                } else {
                    OpenOutcome::Fresh
                }
            }
        };
        Ok(Store {
            dir,
            stats: StoreStats::default(),
            per_kind: Mutex::new(BTreeMap::new()),
            outcome,
            lock: lock.file,
        })
    }

    /// How [`Store::open`] found the directory.
    #[must_use]
    pub fn open_outcome(&self) -> OpenOutcome {
        self.outcome
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Per-stage-tag traffic: `(stage, hits, misses)` sorted by stage.
    /// Stages that saw no gets are absent.
    #[must_use]
    pub fn kind_traffic(&self) -> Vec<(&'static str, u64, u64)> {
        match self.per_kind.lock() {
            Ok(m) => m.iter().map(|(k, &(h, s))| (*k, h, s)).collect(),
            Err(_) => Vec::new(),
        }
    }

    fn bump_kind(&self, kind: &'static str, hit: bool) {
        if let Ok(mut m) = self.per_kind.lock() {
            let slot = m.entry(kind).or_insert((0, 0));
            if hit {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }

    fn path_of(&self, key: &Key) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Fetches a payload. Corrupt, truncated or version-mismatched
    /// entries are deleted and read as a miss; this method never panics
    /// and never returns bytes whose checksum does not match.
    pub fn get(&self, key: &Key) -> Option<Vec<u8>> {
        let path = self.path_of(key);
        let raw = match std::fs::read(&path) {
            Ok(r) => r,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.bump_kind(key.stage, false);
                return None;
            }
        };
        match decode_entry(&raw) {
            Some(payload) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                self.bump_kind(key.stage, true);
                // Refresh the entry's LRU recency (best-effort; a failed
                // touch only makes the entry eligible for eviction
                // earlier than ideal).
                let _ = std::fs::File::options()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_modified(SystemTime::now()));
                Some(payload)
            }
            None => {
                // Corruption: discard so the next run does not re-read it.
                let _ = std::fs::remove_file(&path);
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.bump_kind(key.stage, false);
                None
            }
        }
    }

    /// Stores a payload under `key` (write-to-temp + rename, so readers
    /// never observe a half-written entry).
    ///
    /// # Errors
    ///
    /// On filesystem failures. Callers may ignore the error — a failed
    /// put only costs a future recomputation.
    pub fn put(&self, key: &Key, payload: &[u8]) -> Result<(), StoreError> {
        debug_assert!(
            !key.stage.is_empty()
                && key
                    .stage
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_'),
            "stage tags must be [A-Za-z0-9_]+: {:?}",
            key.stage
        );
        let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
        file.extend_from_slice(ENTRY_MAGIC);
        file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&hash_bytes(payload).to_le_bytes());
        file.extend_from_slice(payload);
        let path = self.path_of(key);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{:x}",
            std::process::id(),
            hash_bytes(path.as_os_str().as_encoded_bytes())
        ));
        if let Err(e) = std::fs::write(&tmp, &file) {
            return store_err(format!("cannot write {}: {e}", tmp.display()));
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return store_err(format!("cannot commit {}: {e}", path.display()));
        }
        self.stats
            .bytes_written
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Removes one entry (idempotent). Returns whether a file existed.
    pub fn invalidate(&self, key: &Key) -> bool {
        let existed = std::fs::remove_file(self.path_of(key)).is_ok();
        if existed {
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Removes every entry whose `(stage, content)` pair matches,
    /// across all config hashes. Returns the number removed.
    pub fn invalidate_content(&self, stage: &str, content: u64) -> usize {
        let prefix = format!("{stage}-{content:016x}-");
        let mut removed = 0;
        for name in self.entry_names() {
            if name.starts_with(&prefix) && std::fs::remove_file(self.dir.join(&name)).is_ok() {
                removed += 1;
            }
        }
        self.stats
            .invalidations
            .fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Number of entry files currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entry_names().len()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry, keeping the manifest.
    pub fn clear(&self) {
        remove_entries(&self.dir);
    }

    fn entry_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for e in rd.flatten() {
                if let Some(name) = e.file_name().to_str() {
                    if name.ends_with(".entry") {
                        names.push(name.to_string());
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// Total bytes currently held in entry files (headers included).
    #[must_use]
    pub fn disk_usage(&self) -> u64 {
        self.entries_with_meta().iter().map(|e| e.size).sum()
    }

    /// Evicts least-recently-used entries until the bytes held in entry
    /// files fit `max_bytes`. Recency is the file modification time
    /// (refreshed on every hit), ties broken by file name so the
    /// eviction order is deterministic; `MANIFEST` and `LOCK` are never
    /// touched. Returns what the pass did.
    ///
    /// Always safe: keys are content-addressed, so evicting an entry can
    /// only cost a recomputation, never change an answer.
    pub fn gc(&self, max_bytes: u64) -> GcReport {
        let mut entries = self.entries_with_meta();
        entries.sort_by(|a, b| (a.mtime, &a.name).cmp(&(b.mtime, &b.name)));
        let mut live_bytes: u64 = entries.iter().map(|e| e.size).sum();
        let mut report = GcReport {
            scanned: entries.len(),
            live_bytes,
            ..GcReport::default()
        };
        for e in &entries {
            if live_bytes <= max_bytes {
                break;
            }
            if std::fs::remove_file(self.dir.join(&e.name)).is_ok() {
                live_bytes -= e.size;
                report.evicted += 1;
                report.evicted_bytes += e.size;
            }
        }
        report.live_bytes = live_bytes;
        self.stats
            .evictions
            .fetch_add(report.evicted as u64, Ordering::Relaxed);
        report
    }

    fn entries_with_meta(&self) -> Vec<EntryMeta> {
        let mut out = Vec::new();
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for e in rd.flatten() {
                let Some(name) = e.file_name().to_str().map(str::to_string) else {
                    continue;
                };
                if !name.ends_with(".entry") {
                    continue;
                }
                let Ok(meta) = e.metadata() else { continue };
                out.push(EntryMeta {
                    mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                    size: meta.len(),
                    name,
                });
            }
        }
        out
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Clean release: blank the recorded pid (content still present
        // at the next acquisition is the unclean-shutdown signal), then
        // let the kernel lock go when the handle closes. The file is
        // never unlinked — see the module docs on why that would race.
        let _ = self.lock.set_len(0);
    }
}

/// One entry file's name, size and recency, as seen by [`Store::gc`].
struct EntryMeta {
    mtime: SystemTime,
    size: u64,
    name: String,
}

/// The outcome of one [`Store::gc`] pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GcReport {
    /// Entry files examined.
    pub scanned: usize,
    /// Entry files removed.
    pub evicted: usize,
    /// Bytes freed by eviction (headers included).
    pub evicted_bytes: u64,
    /// Bytes remaining in entry files after the pass.
    pub live_bytes: u64,
}

/// What [`acquire_lock`] learned while taking the lock.
struct LockAcquired {
    /// The open handle holding the kernel advisory lock.
    file: std::fs::File,
    /// The previous holder died without releasing the store (its pid
    /// was still recorded in the lock file when we acquired the lock).
    unclean_shutdown: bool,
}

/// Takes the kernel advisory lock on the `LOCK` file in `dir`, waiting
/// up to `wait` for a live holder. The kernel serializes takeover, so
/// two openers can never both hold the lock — there is no read/delete/
/// recreate window. A pid left recorded in the file by a holder that
/// died (the kernel released its lock; a clean drop blanks the file)
/// is reported as an unclean shutdown so open can run its recovery
/// sweep.
fn acquire_lock(dir: &Path, wait: Duration) -> Result<LockAcquired, StoreError> {
    use std::io::{Read, Seek, Write};
    let path = dir.join(LOCK_FILE);
    let mut file = match std::fs::File::options()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(&path)
    {
        Ok(f) => f,
        Err(e) => return store_err(format!("cannot create lock {}: {e}", path.display())),
    };
    let deadline = Instant::now() + wait;
    loop {
        match file.try_lock() {
            Ok(()) => break,
            Err(std::fs::TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    let who = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok())
                        .map(|p| format!("live process {p}"))
                        .unwrap_or_else(|| "an unidentified process".to_string());
                    return store_err(format!(
                        "store at {} is locked by {who}; close the other \
                         session before opening {}",
                        dir.display(),
                        path.display()
                    ));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(std::fs::TryLockError::Error(e)) => {
                return store_err(format!("cannot lock {}: {e}", path.display()));
            }
        }
    }
    // We hold the lock; nobody else can be mutating the file now.
    let mut prev = String::new();
    let _ = file.seek(std::io::SeekFrom::Start(0));
    let _ = file.read_to_string(&mut prev);
    let unclean_shutdown = !prev.trim().is_empty();
    let _ = file.set_len(0);
    let _ = file.seek(std::io::SeekFrom::Start(0));
    let _ = write!(file, "{}", std::process::id());
    Ok(LockAcquired {
        file,
        unclean_shutdown,
    })
}

fn manifest_is_current(bytes: &[u8]) -> bool {
    bytes.len() >= 12
        && &bytes[..8] == MANIFEST_MAGIC
        && bytes[8..12] == FORMAT_VERSION.to_le_bytes()
}

fn write_manifest(dir: &Path) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(12);
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    match std::fs::write(dir.join("MANIFEST"), bytes) {
        Ok(()) => Ok(()),
        Err(e) => store_err(format!("cannot write manifest in {}: {e}", dir.display())),
    }
}

fn dir_has_entries(dir: &Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|rd| {
        rd.flatten().any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".entry"))
        })
    })
}

fn remove_entries(dir: &Path) {
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            let keep = e
                .file_name()
                .to_str()
                .is_some_and(|n| !n.ends_with(".entry") && !n.starts_with(".tmp-"));
            if !keep {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

/// Sweeps half-written `.tmp-*` files (unclean-shutdown recovery),
/// keeping committed entries and the manifest.
fn remove_tmp_files(dir: &Path) {
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            if e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(".tmp-"))
            {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

/// Validates and strips an entry header, returning the payload.
fn decode_entry(raw: &[u8]) -> Option<Vec<u8>> {
    if raw.len() < HEADER_LEN || &raw[..8] != ENTRY_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(raw[8..12].try_into().ok()?);
    if version != FORMAT_VERSION {
        return None;
    }
    let len = u64::from_le_bytes(raw[12..20].try_into().ok()?);
    let checksum = u64::from_le_bytes(raw[20..28].try_into().ok()?);
    let payload = &raw[HEADER_LEN..];
    if payload.len() as u64 != len || hash_bytes(payload) != checksum {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("manta-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let dir = temp_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.open_outcome(), OpenOutcome::Fresh);
        let key = Key::new("infer", 0xabc, 0xdef);
        assert!(store.get(&key).is_none());
        store.put(&key, b"payload").unwrap();
        assert_eq!(store.get(&key).unwrap(), b"payload");
        let s = store.stats().snapshot();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes_written, 7);
        assert_eq!(s.bytes_read, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_preserves_entries() {
        let dir = temp_dir("reopen");
        let key = Key::new("row", 1, 2);
        {
            let store = Store::open(&dir).unwrap();
            store.put(&key, b"persisted").unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.open_outcome(), OpenOutcome::Existing);
        assert_eq!(store.get(&key).unwrap(), b"persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_discarded_not_served() {
        let dir = temp_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        let key = Key::new("infer", 3, 4);
        store.put(&key, b"good data here").unwrap();
        // Flip a payload byte on disk.
        let path = dir.join(key.file_name());
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        std::fs::write(&path, raw).unwrap();
        assert!(store.get(&key).is_none(), "corrupt entry must miss");
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert_eq!(store.stats().snapshot().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_wipes_on_open() {
        let dir = temp_dir("version");
        {
            let store = Store::open(&dir).unwrap();
            store.put(&Key::new("infer", 1, 1), b"old").unwrap();
        }
        // Rewrite the manifest with a future version.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MANIFEST_MAGIC);
        bytes.extend_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(dir.join("MANIFEST"), bytes).unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.open_outcome(), OpenOutcome::Recovered);
        assert!(store.is_empty(), "old-format entries must be discarded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_opener_fails_with_a_clear_diagnostic_while_lock_is_held() {
        let dir = temp_dir("lock-held");
        let store = Store::open(&dir).unwrap();
        let err = Store::open_with_lock_wait(&dir, Duration::from_millis(50))
            .expect_err("second open must fail while the lock is held");
        assert!(
            err.message.contains(&format!("{}", std::process::id())),
            "diagnostic must name the holder pid: {}",
            err.message
        );
        assert!(
            err.message.contains("LOCK"),
            "diagnostic must name the lock file: {}",
            err.message
        );
        drop(store);
        // Dropping the holder releases the lock; the next open succeeds
        // cleanly (no recovery needed).
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.open_outcome(), OpenOutcome::Existing);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_recovers_keeping_committed_entries() {
        let dir = temp_dir("lock-stale");
        let key = Key::new("infer", 7, 7);
        {
            let store = Store::open(&dir).unwrap();
            store.put(&key, b"committed").unwrap();
        }
        // Simulate a SIGKILLed holder: a LOCK naming a dead pid plus a
        // half-written temp file.
        std::fs::write(dir.join(LOCK_FILE), b"999999999").unwrap();
        std::fs::write(dir.join(".tmp-999999999-abc"), b"partial").unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(
            store.open_outcome(),
            OpenOutcome::Recovered,
            "a stale lock is an unclean shutdown"
        );
        assert_eq!(
            store.get(&key).unwrap(),
            b"committed",
            "committed entries must survive unclean shutdown"
        );
        assert!(
            !dir.join(".tmp-999999999-abc").exists(),
            "half-written temp files must be swept"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_openers_over_a_stale_lock_admit_exactly_one() {
        let dir = temp_dir("lock-race");
        drop(Store::open(&dir).unwrap());
        // A stale lock from a SIGKILLed holder. Takeover is the racy
        // path under delete-and-recreate schemes: both racers see the
        // dead pid, both clear, both "win". The kernel lock serializes
        // it instead.
        std::fs::write(dir.join(LOCK_FILE), b"999999999").unwrap();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let stores: Vec<_> = (0..2)
            .map(|_| {
                let dir = dir.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    Store::open_with_lock_wait(&dir, Duration::ZERO)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        // Both results are still alive here, so the winner's lock is
        // held while we count: the single-writer invariant demands
        // exactly one success.
        assert_eq!(
            stores.iter().filter(|r| r.is_ok()).count(),
            1,
            "exactly one racer may take over a stale lock"
        );
        assert!(
            stores
                .iter()
                .flatten()
                .all(|s| s.open_outcome() == OpenOutcome::Recovered),
            "the winner must still observe the unclean shutdown"
        );
        drop(stores);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_least_recently_used_until_under_budget() {
        let dir = temp_dir("gc");
        let store = Store::open(&dir).unwrap();
        let cold = Key::new("infer", 1, 1);
        let warm = Key::new("infer", 2, 1);
        let hot = Key::new("infer", 3, 1);
        for key in [&cold, &warm, &hot] {
            store.put(key, &[0u8; 100]).unwrap();
        }
        // Establish recency: hits refresh mtimes in this order. The
        // sleeps keep mtimes distinct on coarse-grained filesystems.
        for key in [&cold, &warm, &hot] {
            std::thread::sleep(Duration::from_millis(20));
            assert!(store.get(key).is_some());
        }
        let each = std::fs::metadata(dir.join(cold.file_name())).unwrap().len();
        // Budget for two entries: the least recently used one goes.
        let report = store.gc(2 * each);
        assert_eq!((report.scanned, report.evicted), (3, 1));
        assert_eq!(report.evicted_bytes, each);
        assert_eq!(report.live_bytes, 2 * each);
        assert!(store.get(&cold).is_none(), "LRU entry must be evicted");
        assert!(store.get(&warm).is_some());
        assert!(store.get(&hot).is_some());
        assert_eq!(store.stats().snapshot().evictions, 1);
        // A pass under budget is a no-op.
        let idle = store.gc(u64::MAX);
        assert_eq!(idle.evicted, 0);
        // MANIFEST and LOCK survive even a zero-byte budget.
        let wipe = store.gc(0);
        assert_eq!(wipe.evicted, 2);
        assert!(dir.join("MANIFEST").exists());
        assert!(dir.join(LOCK_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_usage_tracks_entry_bytes() {
        let dir = temp_dir("usage");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.disk_usage(), 0);
        store.put(&Key::new("infer", 1, 1), &[0u8; 64]).unwrap();
        assert_eq!(store.disk_usage(), 64 + HEADER_LEN as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_content_removes_all_configs() {
        let dir = temp_dir("inval");
        let store = Store::open(&dir).unwrap();
        store.put(&Key::new("infer", 9, 1), b"a").unwrap();
        store.put(&Key::new("infer", 9, 2), b"b").unwrap();
        store.put(&Key::new("infer", 8, 1), b"keep").unwrap();
        assert_eq!(store.invalidate_content("infer", 9), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().snapshot().invalidations, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
