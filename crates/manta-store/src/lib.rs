//! # manta-store
//!
//! The persistence layer of the Manta pipeline: a zero-dependency
//! (`std`-only, per the repo's in-tree-substitutes convention)
//! content-addressed analysis cache with dependency-aware invalidation.
//!
//! Four building blocks, layered bottom-up:
//!
//! * [`hash`] — deterministic 64-bit hashing ([`hash::Fingerprint`],
//!   FNV-1a + splitmix64). Also the one shared home of `splitmix64`,
//!   previously duplicated across the workload generator and the ISA
//!   property tests.
//! * [`bytes`] — length-prefixed binary codecs ([`bytes::ByteWriter`] /
//!   [`bytes::ByteReader`]) with panic-free, allocation-bounded
//!   decoding. Every cached payload uses these.
//! * [`json`] — the hand-rolled JSON writer/parser shared with
//!   `manta-telemetry` (which re-exports it) and the bench JSON
//!   baselines.
//! * [`store`] — the versioned on-disk [`Store`]: entries keyed by
//!   `(stage, content-hash, config-hash)`, self-checksummed files,
//!   atomic-rename writes, corruption that degrades to recomputation.
//! * [`depgraph`] — reverse/bidirectional closure computation and
//!   dependency-closure hashing for invalidation over the call graph.
//!
//! This crate knows nothing about IR, analyses or inference: higher
//! layers (`manta::cache`, `manta-eval`) map their domain objects onto
//! hashes and byte payloads. That keeps `manta-store` at the very
//! bottom of the crate graph, so even `manta-telemetry` can reuse its
//! serialization helpers.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bytes;
pub mod depgraph;
pub mod hash;
pub mod json;
pub mod store;

pub use bytes::{ByteReader, ByteWriter, DecodeError};
pub use depgraph::{Condensation, DepGraph};
pub use hash::{combine, hash_bytes, hash_str, splitmix64, Fingerprint};
pub use store::{
    GcReport, Key, OpenOutcome, StatsSnapshot, Store, StoreError, StoreStats, DEFAULT_LOCK_WAIT,
    FORMAT_VERSION, LOCK_FILE,
};
