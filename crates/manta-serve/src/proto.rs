//! The `manta-serve` wire protocol.
//!
//! Frames are a 4-byte little-endian payload length followed by the
//! payload, encoded with the `manta-store` byte codec. Every payload
//! starts with the protocol version ([`PROTO_VERSION`]) and a one-byte
//! message tag; decoders reject unknown versions and tags with a
//! positioned [`DecodeError`] and must never panic — the bytes come
//! from the network, and the network lies exactly like disk does.
//!
//! ```text
//! frame    := len:u32le payload[len]
//! payload  := version:u32 tag:u8 fields...
//! ```
//!
//! Requests: `Ping`, `Analyze { module_text, sensitivity, fuel?,
//! deadline_ms? }`, `Stats`, `Shutdown`. Responses: `Pong`, `Analyzed
//! { result_bytes, summary, degraded }`, `Error { MantaError }`,
//! `Overloaded { retry_after_ms }`, `Stats { text }`, `ShuttingDown`.
//! `result_bytes` is the canonical `manta::cache::encode_result`
//! payload, so clients can assert byte-identity across warm and cold
//! runs without re-deriving a rendering.

use std::io::{Read, Write};

use manta::Sensitivity;
use manta_resilience::{BudgetKind, BudgetSpec, MantaError};
use manta_store::{ByteReader, ByteWriter, DecodeError};

/// Wire protocol version; bump on any frame-layout change.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on a frame payload (module text dominates).
pub const MAX_FRAME: usize = 16 << 20;

/// A job submitted by a client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Analyze one module.
    Analyze {
        /// Module source: textual IR or assembly, as accepted by the CLI.
        module_text: String,
        /// Cascade sensitivity to run.
        sensitivity: Sensitivity,
        /// Per-request fuel budget (server may clamp it further).
        fuel: Option<u64>,
        /// Per-request wall-clock budget in milliseconds (server may
        /// clamp it further).
        deadline_ms: Option<u64>,
    },
    /// Fetch the daemon's counters as rendered text.
    Stats,
    /// Ask the daemon to drain in-flight work and exit.
    Shutdown,
}

impl Request {
    /// The per-request budget carried by an `Analyze`, defaults for the
    /// other variants.
    #[must_use]
    pub fn budget(&self) -> BudgetSpec {
        match self {
            Request::Analyze {
                fuel, deadline_ms, ..
            } => BudgetSpec {
                fuel: *fuel,
                deadline_ms: *deadline_ms,
            },
            _ => BudgetSpec::default(),
        }
    }

    /// Encodes this request as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(PROTO_VERSION);
        match self {
            Request::Ping => {
                w.u8(0);
            }
            Request::Analyze {
                module_text,
                sensitivity,
                fuel,
                deadline_ms,
            } => {
                w.u8(1);
                w.str(module_text);
                w.u8(sensitivity_to_u8(*sensitivity));
                encode_opt_u64(&mut w, *fuel);
                encode_opt_u64(&mut w, *deadline_ms);
            }
            Request::Stats => {
                w.u8(2);
            }
            Request::Shutdown => {
                w.u8(3);
            }
        }
        w.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on version or tag mismatch, truncation, or
    /// trailing garbage; the offset names the failing byte.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut r = ByteReader::new(payload);
        check_version(&mut r)?;
        let req = match r.u8("request.tag")? {
            0 => Request::Ping,
            1 => Request::Analyze {
                module_text: r.str("request.module_text")?.to_string(),
                sensitivity: sensitivity_from_u8(r.u8("request.sensitivity")?).ok_or(
                    DecodeError {
                        context: "request.sensitivity",
                        offset: payload.len(),
                    },
                )?,
                fuel: decode_opt_u64(&mut r, "request.fuel")?,
                deadline_ms: decode_opt_u64(&mut r, "request.deadline_ms")?,
            },
            2 => Request::Stats,
            3 => Request::Shutdown,
            _ => {
                return Err(DecodeError {
                    context: "request.tag",
                    offset: 4,
                })
            }
        };
        r.expect_end("request.end")?;
        Ok(req)
    }
}

/// The daemon's answer to one [`Request`].
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// A completed (possibly degraded) analysis.
    Analyzed {
        /// Canonical `encode_result` bytes of the inference result.
        result: Vec<u8>,
        /// Human-readable one-line summary.
        summary: String,
        /// Whether any stage degraded (budget, panic, injected fault).
        degraded: bool,
    },
    /// The request failed with a structured pipeline error; the worker
    /// that produced it is alive and serving.
    Error {
        /// The structured failure.
        error: MantaError,
    },
    /// Admission control rejected the job: the queue is full. Retry
    /// after a backoff (see `manta_resilience::Backoff`).
    Overloaded {
        /// Server's hint for the first retry delay.
        retry_after_ms: u64,
    },
    /// Rendered daemon counters.
    Stats {
        /// Text report, one `name value` pair per line.
        text: String,
    },
    /// The daemon acknowledged [`Request::Shutdown`] and is draining.
    ShuttingDown,
}

impl Response {
    /// Encodes this response as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(PROTO_VERSION);
        match self {
            Response::Pong => {
                w.u8(0);
            }
            Response::Analyzed {
                result,
                summary,
                degraded,
            } => {
                w.u8(1);
                w.bytes(result);
                w.str(summary);
                w.bool(*degraded);
            }
            Response::Error { error } => {
                w.u8(2);
                encode_error(&mut w, error);
            }
            Response::Overloaded { retry_after_ms } => {
                w.u8(3);
                w.u64(*retry_after_ms);
            }
            Response::Stats { text } => {
                w.u8(4);
                w.str(text);
            }
            Response::ShuttingDown => {
                w.u8(5);
            }
        }
        w.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut r = ByteReader::new(payload);
        check_version(&mut r)?;
        let resp = match r.u8("response.tag")? {
            0 => Response::Pong,
            1 => Response::Analyzed {
                result: r.bytes("response.result")?.to_vec(),
                summary: r.str("response.summary")?.to_string(),
                degraded: r.bool("response.degraded")?,
            },
            2 => Response::Error {
                error: decode_error(&mut r)?,
            },
            3 => Response::Overloaded {
                retry_after_ms: r.u64("response.retry_after_ms")?,
            },
            4 => Response::Stats {
                text: r.str("response.stats")?.to_string(),
            },
            5 => Response::ShuttingDown,
            _ => {
                return Err(DecodeError {
                    context: "response.tag",
                    offset: 4,
                })
            }
        };
        r.expect_end("response.end")?;
        Ok(resp)
    }
}

fn check_version(r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
    if r.u32("proto.version")? != PROTO_VERSION {
        return Err(DecodeError {
            context: "proto.version",
            offset: 0,
        });
    }
    Ok(())
}

fn encode_opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.bool(true);
            w.u64(x);
        }
        None => {
            w.bool(false);
        }
    }
}

fn decode_opt_u64(
    r: &mut ByteReader<'_>,
    context: &'static str,
) -> Result<Option<u64>, DecodeError> {
    Ok(if r.bool(context)? {
        Some(r.u64(context)?)
    } else {
        None
    })
}

fn sensitivity_to_u8(s: Sensitivity) -> u8 {
    match s {
        Sensitivity::Fi => 0,
        Sensitivity::Fs => 1,
        Sensitivity::FiFs => 2,
        Sensitivity::FiCsFs => 3,
        Sensitivity::FiFsCs => 4,
    }
}

fn sensitivity_from_u8(v: u8) -> Option<Sensitivity> {
    Some(match v {
        0 => Sensitivity::Fi,
        1 => Sensitivity::Fs,
        2 => Sensitivity::FiFs,
        3 => Sensitivity::FiCsFs,
        4 => Sensitivity::FiFsCs,
        _ => return None,
    })
}

fn encode_error(w: &mut ByteWriter, e: &MantaError) {
    match e {
        MantaError::Parse { line, col, message } => {
            w.u8(0);
            w.u64(*line as u64);
            w.u64(*col as u64);
            w.str(message);
        }
        MantaError::Verify { message } => {
            w.u8(1);
            w.str(message);
        }
        MantaError::Panic { stage, message } => {
            w.u8(2);
            w.str(stage);
            w.str(message);
        }
        MantaError::Budget { stage, kind } => {
            w.u8(3);
            w.str(stage);
            w.u8(match kind {
                BudgetKind::Fuel => 0,
                BudgetKind::Deadline => 1,
                BudgetKind::Injected => 2,
            });
        }
    }
}

fn decode_error(r: &mut ByteReader<'_>) -> Result<MantaError, DecodeError> {
    Ok(match r.u8("error.tag")? {
        0 => MantaError::Parse {
            line: r.u64("error.line")? as usize,
            col: r.u64("error.col")? as usize,
            message: r.str("error.message")?.to_string(),
        },
        1 => MantaError::Verify {
            message: r.str("error.message")?.to_string(),
        },
        2 => MantaError::Panic {
            stage: r.str("error.stage")?.to_string(),
            message: r.str("error.message")?.to_string(),
        },
        3 => MantaError::Budget {
            stage: r.str("error.stage")?.to_string(),
            kind: match r.u8("error.kind")? {
                0 => BudgetKind::Fuel,
                1 => BudgetKind::Deadline,
                2 => BudgetKind::Injected,
                _ => {
                    return Err(DecodeError {
                        context: "error.kind",
                        offset: 0,
                    })
                }
            },
        },
        _ => {
            return Err(DecodeError {
                context: "error.tag",
                offset: 0,
            })
        }
    })
}

/// Writes one frame: 4-byte little-endian length, then the payload.
///
/// # Errors
///
/// Propagates I/O failures; payloads over [`MAX_FRAME`] are refused
/// with `InvalidInput` instead of being sent.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from a blocking stream. `Ok(None)` is a clean
/// end-of-stream (the peer closed between frames); a stream truncated
/// *inside* a frame, or a length over [`MAX_FRAME`], is
/// `UnexpectedEof`/`InvalidData`.
///
/// On a stream with a read timeout armed, use a persistent
/// [`FrameReader`] instead: this helper discards partial progress on
/// `WouldBlock`, which desynchronizes the stream.
///
/// # Errors
///
/// Propagates I/O failures and malformed lengths.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    FrameReader::new().read_frame(r)
}

/// Incremental frame reader whose progress survives read timeouts.
///
/// With a socket read timeout armed, a `WouldBlock`/`TimedOut` error
/// can interrupt a frame anywhere — after 1–3 bytes of the length
/// prefix, or mid-payload. A stateless reader would discard those bytes
/// and parse whatever arrives next as a fresh length, permanently
/// desynchronizing the connection. `FrameReader` buffers the partial
/// frame across calls: after a timeout, call
/// [`FrameReader::read_frame`] again and the read resumes exactly where
/// the stream stopped.
#[derive(Default)]
pub struct FrameReader {
    len_bytes: [u8; 4],
    len_filled: usize,
    payload: Vec<u8>,
    payload_filled: usize,
    in_payload: bool,
}

impl FrameReader {
    /// A reader with no partial frame buffered.
    #[must_use]
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Whether a partially-read frame is buffered (a previous call was
    /// interrupted mid-frame).
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.len_filled > 0 || self.in_payload
    }

    /// Reads one frame, resuming any partial frame left by a previous
    /// timed-out call. `Ok(None)` is a clean end-of-stream (the peer
    /// closed *between* frames).
    ///
    /// # Errors
    ///
    /// `WouldBlock`/`TimedOut` pass through with the partial frame kept
    /// buffered — call again to resume. A stream truncated inside a
    /// frame is `UnexpectedEof`; a length over [`MAX_FRAME`] is
    /// `InvalidData`. Other I/O failures propagate.
    pub fn read_frame(&mut self, r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
        if !self.in_payload {
            while self.len_filled < 4 {
                match r.read(&mut self.len_bytes[self.len_filled..])? {
                    0 if self.len_filled == 0 => return Ok(None),
                    0 => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "stream truncated inside a frame length",
                        ))
                    }
                    n => self.len_filled += n,
                }
            }
            let len = u32::from_le_bytes(self.len_bytes) as usize;
            if len > MAX_FRAME {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame length {len} exceeds MAX_FRAME"),
                ));
            }
            self.payload = vec![0u8; len];
            self.payload_filled = 0;
            self.in_payload = true;
        }
        while self.payload_filled < self.payload.len() {
            match r.read(&mut self.payload[self.payload_filled..])? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "stream truncated inside a frame payload",
                    ))
                }
                n => self.payload_filled += n,
            }
        }
        self.in_payload = false;
        self.len_filled = 0;
        Ok(Some(std::mem::take(&mut self.payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Analyze {
                module_text: "module m\n".to_string(),
                sensitivity: Sensitivity::FiCsFs,
                fuel: Some(1000),
                deadline_ms: None,
            },
            Request::Analyze {
                module_text: String::new(),
                sensitivity: Sensitivity::Fi,
                fuel: None,
                deadline_ms: Some(250),
            },
            Request::Stats,
            Request::Shutdown,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Analyzed {
                result: vec![1, 2, 3],
                summary: "precise=3 over=1 unknown=0".to_string(),
                degraded: true,
            },
            Response::Error {
                error: MantaError::Panic {
                    stage: "serve.dispatch".to_string(),
                    message: "injected".to_string(),
                },
            },
            Response::Error {
                error: MantaError::Budget {
                    stage: "serve.decode".to_string(),
                    kind: BudgetKind::Injected,
                },
            },
            Response::Error {
                error: MantaError::Parse {
                    line: 3,
                    col: 0,
                    message: "bad opcode".to_string(),
                },
            },
            Response::Overloaded { retry_after_ms: 15 },
            Response::Stats {
                text: "serve.requests 4\n".to_string(),
            },
            Response::ShuttingDown,
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in all_requests() {
            let back = Request::decode(&req.encode()).expect("roundtrip");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in all_responses() {
            let back = Response::decode(&resp.encode()).expect("roundtrip");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn every_truncation_is_a_positioned_error_never_a_panic() {
        for req in all_requests() {
            let full = req.encode();
            for cut in 0..full.len() {
                let err = Request::decode(&full[..cut]).expect_err("truncated must fail");
                assert!(!err.context.is_empty());
            }
        }
        for resp in all_responses() {
            let full = resp.encode();
            for cut in 0..full.len() {
                assert!(Response::decode(&full[..cut]).is_err());
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        let err = Request::decode(&bytes).expect_err("trailing byte");
        assert_eq!(err.context, "request.end");
    }

    #[test]
    fn version_and_tag_skew_are_rejected() {
        let mut bytes = Request::Stats.encode();
        bytes[0] = 0xFF;
        assert_eq!(
            Request::decode(&bytes).expect_err("version").context,
            "proto.version"
        );
        let mut bytes = Request::Stats.encode();
        bytes[4] = 0xEE;
        assert_eq!(
            Request::decode(&bytes).expect_err("tag").context,
            "request.tag"
        );
    }

    #[test]
    fn frames_roundtrip_and_truncation_is_detected() {
        let payload = Request::Ping.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(&buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&payload[..])
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&payload[..])
        );
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
        // Truncate inside the second frame's payload.
        let cut = buf.len() - 2;
        let mut cursor = std::io::Cursor::new(&buf[..cut]);
        assert!(read_frame(&mut cursor).unwrap().is_some());
        let err = read_frame(&mut cursor).expect_err("truncated frame");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // An absurd length never allocates.
        let mut huge = std::io::Cursor::new((u32::MAX).to_le_bytes().to_vec());
        assert_eq!(
            read_frame(&mut huge).expect_err("huge frame").kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    /// Yields one byte per read, returning `WouldBlock` before every
    /// byte — so a timeout lands between every pair of bytes, including
    /// mid-length-prefix and mid-payload.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        block_next: bool,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            if self.block_next {
                self.block_next = false;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.block_next = true;
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts_at_every_byte_boundary() {
        let first = Request::Analyze {
            module_text: "module m\n".to_string(),
            sensitivity: Sensitivity::FiCsFs,
            fuel: Some(9),
            deadline_ms: None,
        }
        .encode();
        let second = Request::Ping.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &first).unwrap();
        write_frame(&mut wire, &second).unwrap();

        let mut stream = Trickle {
            data: wire,
            pos: 0,
            block_next: true,
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        let mut timeouts = 0;
        loop {
            match reader.read_frame(&mut stream) {
                Ok(Some(payload)) => frames.push(payload),
                Ok(None) => break,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    timeouts += 1;
                    assert!(timeouts < 1_000_000, "reader must make progress");
                }
                Err(e) => panic!("unexpected framing error: {e}"),
            }
        }
        assert_eq!(frames, vec![first, second], "no byte lost to a timeout");
        assert!(
            timeouts > 8,
            "the trickle must have interrupted mid-prefix and mid-payload"
        );
        assert!(!reader.mid_frame(), "clean EOF leaves no partial frame");
    }
}
