//! The analysis daemon: accept loop, admission control, worker pool,
//! per-request fault isolation, store GC, and graceful drain.
//!
//! ## Request lifecycle and fault sites
//!
//! ```text
//! accept ── serve.accept ──► decode ── serve.decode ──► admission
//!    (connection thread)                                   │ full → Overloaded
//!                                                          ▼
//!                              worker ── serve.dispatch ──► Engine::analyze_module
//!                                 │                             (stages fan out on
//!                                 │ serve.gc (periodic)          manta-parallel)
//!                                 ▼
//!                              respond ── serve.respond ──► frame on the wire
//! ```
//!
//! Every named site is a deterministic `manta-resilience` fault point:
//! an injected panic is caught at the site's isolation boundary and
//! turned into a structured [`MantaError`] response, and an injected
//! budget exhaustion becomes a structured `Budget { kind: Injected }`
//! response — in both cases the worker and the daemon keep serving.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use manta::cache::encode_result;
use manta::Engine;
use manta_ir::Module;
use manta_resilience::{
    fault_point, isolate, take_pending_exhaustion, BudgetKind, BudgetSpec, MantaError,
};

use crate::counters;
use crate::proto::{read_frame, write_frame, FrameReader, Request, Response};

/// Tuning knobs for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// Analysis worker threads (admission-controlled jobs run here).
    pub workers: usize,
    /// Bounded job-queue depth; a full queue rejects with `Overloaded`.
    pub queue_cap: usize,
    /// Server-side ceiling on per-request fuel. A request asking for
    /// more (or for none) is clamped down to this.
    pub fuel_cap: Option<u64>,
    /// Server-side ceiling on per-request deadlines, milliseconds.
    pub deadline_cap_ms: Option<u64>,
    /// Store GC byte budget; `None` disables GC.
    pub gc_max_bytes: Option<u64>,
    /// Analyses between GC passes.
    pub gc_every: u64,
    /// Retry hint carried on `Overloaded` responses.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 8,
            fuel_cap: None,
            deadline_cap_ms: None,
            gc_max_bytes: None,
            gc_every: 32,
            retry_after_ms: 25,
        }
    }
}

/// Plain-value snapshot of one daemon's counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServeStats {
    /// Frames successfully decoded into requests.
    pub requests: u64,
    /// Analyses completed (including degraded ones).
    pub analyzed: u64,
    /// Analyses that completed degraded.
    pub degraded: u64,
    /// Requests answered with a structured error.
    pub errors: u64,
    /// Jobs rejected by admission control.
    pub overloaded: u64,
    /// Frames that failed to read or decode.
    pub frame_errors: u64,
    /// GC passes run.
    pub gc_runs: u64,
    /// Entries evicted by GC.
    pub gc_evicted: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
}

#[derive(Default)]
struct StatsCells {
    requests: AtomicU64,
    analyzed: AtomicU64,
    degraded: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    frame_errors: AtomicU64,
    gc_runs: AtomicU64,
    gc_evicted: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            analyzed: self.analyzed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            gc_runs: self.gc_runs.load(Ordering::Relaxed),
            gc_evicted: self.gc_evicted.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// One queued analysis job: the request plus the slot its connection
/// thread is blocked on.
struct Job {
    request: Request,
    slot: Arc<ResponseSlot>,
}

/// A oneshot rendezvous between a connection thread and a worker.
#[derive(Default)]
struct ResponseSlot {
    value: Mutex<Option<Response>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn fill(&self, resp: Response) {
        if let Ok(mut guard) = self.value.lock() {
            *guard = Some(resp);
        }
        self.cv.notify_all();
    }

    /// Blocks until a worker fills the slot, up to `backstop`. The
    /// worker's drop guard makes an unanswered slot nearly impossible;
    /// the bound means even an unforeseen worker failure cannot leak
    /// this connection thread forever.
    fn wait(&self, backstop: Duration) -> Response {
        let deadline = std::time::Instant::now() + backstop;
        let Ok(mut guard) = self.value.lock() else {
            return Response::Error {
                error: MantaError::Panic {
                    stage: "serve.slot".to_string(),
                    message: "response slot poisoned".to_string(),
                },
            };
        };
        loop {
            if let Some(resp) = guard.take() {
                return resp;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Response::Error {
                    error: MantaError::Verify {
                        message: "no worker response within the backstop window".to_string(),
                    },
                };
            }
            guard = match self.cv.wait_timeout(guard, deadline - now) {
                Ok((g, _)) => g,
                Err(poison) => poison.into_inner().0,
            };
        }
    }
}

struct Shared {
    engine: Engine,
    config: ServeConfig,
    /// The bound address, so a remote `Shutdown` can poke the accept
    /// loop out of its blocking `accept()` with a self-connection.
    addr: SocketAddr,
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    draining: AtomicBool,
    analyze_count: AtomicU64,
    in_flight: AtomicU64,
    stats: StatsCells,
    /// Live connection-handler count, so drain can wait for responders.
    conns: Mutex<usize>,
    conns_cv: Condvar,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.work_cv.notify_all();
    }

    /// Admission control: accepts the job if the bounded queue has
    /// room, else `None` — the caller answers `Overloaded`.
    fn try_submit(&self, request: Request) -> Option<Arc<ResponseSlot>> {
        let mut q = lock(&self.queue);
        if q.len() >= self.config.queue_cap {
            return None;
        }
        let slot = Arc::new(ResponseSlot::default());
        q.push_back(Job {
            request,
            slot: Arc::clone(&slot),
        });
        drop(q);
        self.work_cv.notify_one();
        Some(slot)
    }

    /// Worker loop: pop until the daemon is draining *and* the queue is
    /// empty (drain finishes queued work, it does not drop it).
    fn next_job(&self) -> Option<Job> {
        let mut q = lock(&self.queue);
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.draining() {
                return None;
            }
            q = match self.work_cv.wait(q) {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
        }
    }

    fn render_stats(&self) -> String {
        let s = self.stats.snapshot();
        let mut out = String::new();
        for (name, v) in [
            ("serve.requests", s.requests),
            ("serve.analyzed", s.analyzed),
            ("serve.degraded", s.degraded),
            ("serve.errors", s.errors),
            ("serve.overloaded", s.overloaded),
            ("serve.frame_errors", s.frame_errors),
            ("serve.gc_runs", s.gc_runs),
            ("serve.gc_evicted", s.gc_evicted),
            ("serve.bytes_in", s.bytes_in),
            ("serve.bytes_out", s.bytes_out),
        ] {
            out.push_str(&format!("{name} {v}\n"));
        }
        if let Some(cache) = self.engine.cache() {
            let st = cache.store().stats().snapshot();
            out.push_str(&format!("store.hits {}\n", st.hits));
            out.push_str(&format!("store.misses {}\n", st.misses));
            out.push_str(&format!("store.evictions {}\n", st.evictions));
            out.push_str(&format!("store.bytes {}\n", cache.store().disk_usage()));
        }
        out
    }
}

/// A running daemon: owns the accept loop and worker threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the accept loop and
    /// `config.workers` analysis workers. The engine's attached cache
    /// (if any) is shared by every session; requests run on per-request
    /// engine clones so one tenant's budget never leaks into another's.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener or spawning threads.
    pub fn spawn(engine: Engine, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            config,
            addr,
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            analyze_count: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            stats: StatsCells::default(),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
        });

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("manta-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?;
            worker_handles.push(handle);
        }

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("manta-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Whether a client asked the daemon to shut down.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining()
    }

    /// Jobs currently waiting in the admission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Jobs currently executing on workers.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Initiates a graceful drain: stop admitting new work, finish the
    /// queued jobs, answer in-flight connections, then return. Also
    /// triggered remotely by [`Request::Shutdown`]; [`Server::join`]
    /// alone waits for that.
    pub fn shutdown(mut self) {
        self.shared.begin_drain();
        self.finish();
    }

    /// Blocks until the daemon drains (a client sent
    /// [`Request::Shutdown`]) and every worker exits.
    pub fn join(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        // Unblock the accept loop: it re-checks `draining` per wakeup.
        if let Some(handle) = self.accept.take() {
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Give in-flight connection handlers a bounded window to write
        // their final responses before the caller exits the process.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut conns = lock(&self.shared.conns);
        while *conns > 0 && std::time::Instant::now() < deadline {
            let (guard, _) = self
                .shared
                .conns_cv
                .wait_timeout(conns, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            conns = guard;
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining() {
                    return;
                }
                // Persistent accept failures (fd exhaustion: EMFILE/
                // ENFILE) must not become a hot spin; back off briefly.
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
        };
        if shared.draining() {
            return;
        }
        {
            *lock(&shared.conns) += 1;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("manta-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                let mut conns = lock(&conn_shared.conns);
                *conns = conns.saturating_sub(1);
                conn_shared.conns_cv.notify_all();
            });
        if spawned.is_err() {
            let mut conns = lock(&shared.conns);
            *conns = conns.saturating_sub(1);
        }
    }
}

/// Sends `resp`, running the `serve.respond` fault site. An injected
/// panic or exhaustion at the site replaces the payload with the
/// corresponding structured error — the client always gets *a* frame.
fn send(stream: &mut TcpStream, resp: Response, shared: &Shared) {
    let encoded = match isolate("serve.respond", || {
        fault_point("serve.respond");
        resp.encode()
    }) {
        Ok(bytes) => {
            if take_pending_exhaustion() {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    error: MantaError::Budget {
                        stage: "serve.respond".to_string(),
                        kind: BudgetKind::Injected,
                    },
                }
                .encode()
            } else {
                bytes
            }
        }
        Err(error) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            Response::Error { error }.encode()
        }
    };
    shared
        .stats
        .bytes_out
        .fetch_add(encoded.len() as u64, Ordering::Relaxed);
    counters::BYTES_OUT.add(encoded.len() as u64);
    let _ = write_frame(stream, &encoded);
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Bounded reads so drain never waits on an idle client forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    // Connection setup is itself a fault site: an injected failure here
    // still answers the client with a structured error before closing.
    // After writing the error, drain the client's (already in-flight)
    // request so closing our end does not RST the un-read error frame
    // out from under them.
    let accept_error = match isolate("serve.accept", || fault_point("serve.accept")) {
        Err(error) => Some(error),
        Ok(()) if take_pending_exhaustion() => Some(MantaError::Budget {
            stage: "serve.accept".to_string(),
            kind: BudgetKind::Injected,
        }),
        Ok(()) => None,
    };
    if let Some(error) = accept_error {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        send(&mut stream, Response::Error { error }, shared);
        let _ = read_frame(&mut stream);
        return;
    }
    // The persistent reader keeps partial frames across read timeouts:
    // a timeout that lands mid-length-prefix or mid-payload resumes on
    // the next iteration instead of desynchronizing the stream.
    let mut frames = FrameReader::new();
    loop {
        let payload = match frames.read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    return;
                }
                continue;
            }
            Err(_) => {
                // Truncated or malformed framing: nothing sensible can
                // be parsed from this stream anymore.
                shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                counters::FRAME_ERRORS.incr();
                return;
            }
        };
        shared
            .stats
            .bytes_in
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        counters::BYTES_IN.add(payload.len() as u64);

        let decoded = isolate("serve.decode", || {
            fault_point("serve.decode");
            Request::decode(&payload)
        });
        let request = match decoded {
            Err(error) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                send(&mut stream, Response::Error { error }, shared);
                continue;
            }
            Ok(Err(decode_err)) => {
                shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                counters::FRAME_ERRORS.incr();
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                send(
                    &mut stream,
                    Response::Error {
                        error: MantaError::Parse {
                            line: 0,
                            col: decode_err.offset,
                            message: decode_err.to_string(),
                        },
                    },
                    shared,
                );
                continue;
            }
            Ok(Ok(request)) => request,
        };
        if take_pending_exhaustion() {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            send(
                &mut stream,
                Response::Error {
                    error: MantaError::Budget {
                        stage: "serve.decode".to_string(),
                        kind: BudgetKind::Injected,
                    },
                },
                shared,
            );
            continue;
        }

        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        counters::REQUESTS.incr();
        match request {
            Request::Ping => send(&mut stream, Response::Pong, shared),
            Request::Stats => {
                let text = shared.render_stats();
                send(&mut stream, Response::Stats { text }, shared);
            }
            Request::Shutdown => {
                shared.begin_drain();
                send(&mut stream, Response::ShuttingDown, shared);
                // Wake the accept loop out of its blocking accept() so a
                // `join()`ed daemon actually exits; the poke connection
                // is dropped unserved once `draining` is observed.
                let _ = TcpStream::connect(shared.addr);
                return;
            }
            req @ Request::Analyze { .. } => {
                if shared.draining() {
                    send(&mut stream, Response::ShuttingDown, shared);
                    continue;
                }
                // Worst-case honest wait: every queue slot ahead of us
                // running to its full deadline, plus slack. Undeadlined
                // requests get a generous fixed backstop.
                let backstop = match req.budget().deadline_ms {
                    Some(d) => Duration::from_millis(
                        d.saturating_mul(shared.config.queue_cap as u64 + 1)
                            .saturating_add(60_000),
                    ),
                    None => Duration::from_secs(600),
                };
                match shared.try_submit(req) {
                    Some(slot) => {
                        let resp = slot.wait(backstop);
                        send(&mut stream, resp, shared);
                    }
                    None => {
                        shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                        counters::OVERLOADED.incr();
                        send(
                            &mut stream,
                            Response::Overloaded {
                                retry_after_ms: shared.config.retry_after_ms,
                            },
                            shared,
                        );
                    }
                }
            }
        }
    }
}

/// Guarantees every dequeued job is answered and accounted: dropped on
/// every exit path from a worker iteration — including an unwind that
/// somehow escapes the isolation layers — it balances the in-flight
/// gauge and fills the job's slot, so the parked connection thread
/// always wakes with a response and the worker pool never shrinks
/// silently.
struct FinishJob<'a> {
    shared: &'a Shared,
    slot: &'a ResponseSlot,
    resp: Option<Response>,
}

impl Drop for FinishJob<'_> {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        let resp = self.resp.take().unwrap_or_else(|| Response::Error {
            error: MantaError::Panic {
                stage: "serve.worker".to_string(),
                message: "worker unwound mid-request".to_string(),
            },
        });
        if matches!(resp, Response::Error { .. }) {
            self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.slot.fill(resp);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.next_job() {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let mut finish = FinishJob {
            shared,
            slot: &job.slot,
            resp: None,
        };
        // The whole job — including parsing the untrusted module text —
        // runs inside an isolation boundary: a panic anywhere becomes a
        // structured error on this client's wire, never a dead worker.
        finish.resp = Some(
            isolate("serve.worker", || run_job(shared, &job.request))
                .unwrap_or_else(|error| Response::Error { error }),
        );
    }
}

/// Clamps a request's budget under the server's ceilings: a tenant may
/// ask for less than the cap, never more (or nothing, which reads as
/// "as much as allowed").
fn clamp_budget(requested: BudgetSpec, config: &ServeConfig) -> BudgetSpec {
    let take_min = |req: Option<u64>, cap: Option<u64>| match (req, cap) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, cap) => cap,
    };
    BudgetSpec {
        fuel: take_min(requested.fuel, config.fuel_cap),
        deadline_ms: take_min(requested.deadline_ms, config.deadline_cap_ms),
    }
}

/// Parses module source the same way the CLI does: textual IR uses
/// `func name(w64, …)`, assembly uses `func name(2)`.
fn parse_module_text(text: &str) -> Result<Module, MantaError> {
    let parse_err = |message: String| MantaError::Parse {
        line: 0,
        col: 0,
        message,
    };
    let is_ir = text.lines().any(|l| {
        let l = l.trim_start();
        l.starts_with("func ") && (l.contains("(w") || l.contains("()"))
    });
    if is_ir {
        return manta_ir::parser::parse_module(text).map_err(|e| parse_err(e.to_string()));
    }
    let image = manta_isa::assemble(text).map_err(|e| parse_err(e.to_string()))?;
    manta_isa::lift::lift(&image).map_err(|e| parse_err(e.to_string()))
}

fn run_job(shared: &Shared, request: &Request) -> Response {
    let Request::Analyze {
        module_text,
        sensitivity,
        ..
    } = request
    else {
        // Only Analyze jobs are ever enqueued.
        return Response::Error {
            error: MantaError::Verify {
                message: "non-analyze job reached a worker".to_string(),
            },
        };
    };
    let budget = clamp_budget(request.budget(), &shared.config);
    // A per-request engine: same config and shared cache, this
    // request's sensitivity and clamped budget.
    let mut builder = Engine::builder()
        .config(*shared.engine.config())
        .sensitivity(*sensitivity)
        .budget(budget)
        .strict(shared.engine.strict());
    if let Some(cache) = shared.engine.cache_handle() {
        builder = builder.cache(cache);
    }
    let session = match builder.build() {
        Ok(engine) => engine,
        Err(e) => {
            return Response::Error {
                error: MantaError::Verify {
                    message: e.to_string(),
                },
            }
        }
    };

    let outcome = isolate("serve.dispatch", || {
        fault_point("serve.dispatch");
        if take_pending_exhaustion() {
            return Err(MantaError::Budget {
                stage: "serve.dispatch".to_string(),
                kind: BudgetKind::Injected,
            });
        }
        // Parsing untrusted network bytes happens inside the isolation
        // boundary: a parser panic must answer this client, not unwind
        // the worker thread.
        let module = parse_module_text(module_text)?;
        session.analyze_module(module).map(|(_, result)| result)
    });
    match outcome {
        Ok(Ok(result)) => {
            shared.stats.analyzed.fetch_add(1, Ordering::Relaxed);
            counters::ANALYZED.incr();
            // The GC trigger decision must come from the value this
            // increment produced: a separate load would let two
            // concurrent successes stride past the multiple and skip
            // the cycle.
            let analyzed = shared.analyze_count.fetch_add(1, Ordering::Relaxed) + 1;
            let degraded = result.is_degraded();
            if degraded {
                shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
                counters::DEGRADED.incr();
            }
            let counts = result.final_counts();
            let summary = format!(
                "sensitivity={sensitivity:?} precise={} over={} unknown={} degradations={}",
                counts.precise,
                counts.over,
                counts.unknown,
                result.degradations.len()
            );
            // GC before the response is released to the connection
            // thread: a client observing its answer may rely on the
            // post-analysis sweep having happened (the fault-matrix
            // suite asserts exactly that).
            maybe_gc(shared, analyzed);
            Response::Analyzed {
                result: encode_result(&result),
                summary,
                degraded,
            }
        }
        Ok(Err(error)) | Err(error) => Response::Error { error },
    }
}

/// Runs a GC pass every `gc_every` analyses when a byte budget is
/// configured; `analyzed` is the 1-based success count produced by the
/// caller's own increment, so concurrent workers each decide from a
/// distinct value and no cycle is skipped (and failed jobs never
/// trigger a pass). The pass is fault-isolated: an injected `serve.gc`
/// failure is swallowed (GC is advisory) and the daemon keeps serving.
fn maybe_gc(shared: &Shared, analyzed: u64) {
    let Some(max_bytes) = shared.config.gc_max_bytes else {
        return;
    };
    let Some(cache) = shared.engine.cache() else {
        return;
    };
    let every = shared.config.gc_every.max(1);
    if !analyzed.is_multiple_of(every) {
        return;
    }
    let swept = isolate("serve.gc", || {
        fault_point("serve.gc");
        cache.store().gc(max_bytes)
    });
    let _ = take_pending_exhaustion();
    if let Ok(report) = swept {
        shared.stats.gc_runs.fetch_add(1, Ordering::Relaxed);
        counters::GC_RUNS.incr();
        shared
            .stats
            .gc_evicted
            .fetch_add(report.evicted as u64, Ordering::Relaxed);
        counters::GC_EVICTED.add(report.evicted as u64);
    }
}
