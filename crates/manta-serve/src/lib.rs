//! manta-serve: a fault-isolated, multi-tenant analysis daemon.
//!
//! One daemon process owns a single [`manta::Engine`] (and its attached
//! [`manta::cache::AnalysisCache`], shared across every session) and
//! serves analysis jobs over a length-prefixed TCP protocol
//! ([`proto`]). The design goals, in order:
//!
//! 1. **Fault isolation** — a panic or injected fault while handling one
//!    request becomes a structured [`manta_resilience::MantaError`] on
//!    that client's wire; the worker and the daemon keep serving.
//! 2. **Admission control** — a bounded job queue; when it is full the
//!    daemon answers [`proto::Response::Overloaded`] immediately instead
//!    of queueing unboundedly, and clients retry with seeded,
//!    capped-exponential backoff ([`manta_resilience::Backoff`]).
//! 3. **Tenant budgets** — each request carries an optional fuel /
//!    deadline budget; the server clamps it under its own caps, so an
//!    abusive request degrades to a tiered partial result instead of
//!    starving its neighbours.
//! 4. **Store hygiene** — periodic size-capped LRU GC of the shared
//!    analysis store, itself fault-isolated and advisory.
//!
//! See `DESIGN.md` §12 for the architecture and failure-mode matrix.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use server::{ServeConfig, ServeStats, Server};

/// Telemetry counters published by the daemon (visible in `manta stats`
/// when telemetry is enabled in-process).
pub mod counters {
    use manta_telemetry::Counter;

    /// Frames decoded into well-formed requests.
    pub static REQUESTS: Counter = Counter::new("serve.requests");
    /// Analyses completed (including degraded ones).
    pub static ANALYZED: Counter = Counter::new("serve.analyzed");
    /// Analyses that completed degraded.
    pub static DEGRADED: Counter = Counter::new("serve.degraded");
    /// Jobs rejected by admission control.
    pub static OVERLOADED: Counter = Counter::new("serve.overloaded");
    /// Frames that failed to read or decode.
    pub static FRAME_ERRORS: Counter = Counter::new("serve.frame_errors");
    /// Store GC passes run by the daemon.
    pub static GC_RUNS: Counter = Counter::new("serve.gc_runs");
    /// Entries evicted by daemon GC passes.
    pub static GC_EVICTED: Counter = Counter::new("serve.gc_evicted");
    /// Payload bytes received from clients.
    pub static BYTES_IN: Counter = Counter::new("serve.bytes_in");
    /// Payload bytes sent to clients.
    pub static BYTES_OUT: Counter = Counter::new("serve.bytes_out");
}
