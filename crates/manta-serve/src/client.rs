//! A blocking client for the daemon, with deterministic retry.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use manta_resilience::{Backoff, BackoffPolicy};
use manta_store::DecodeError;

use crate::proto::{read_frame, write_frame, Request, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection died or could not be established.
    Io(io::Error),
    /// The server's reply did not decode.
    Decode(DecodeError),
    /// The server closed the stream without replying.
    ClosedEarly,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Decode(e) => write!(f, "malformed server reply: {e}"),
            ClientError::ClosedEarly => write!(f, "server closed the stream without replying"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection to a daemon. Requests on a connection are pipelined
/// strictly one-at-a-time: `call` writes a frame and blocks for the
/// reply frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// I/O errors resolving or connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connection failure, [`ClientError::Decode`]
    /// on a malformed reply, [`ClientError::ClosedEarly`] if the server
    /// hung up without answering.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or(ClientError::ClosedEarly)?;
        Response::decode(&payload).map_err(ClientError::Decode)
    }

    /// Raw stream access, for tests that need to send malformed bytes.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Calls `request` against `addr`, retrying with seeded backoff when
/// the daemon answers `Overloaded` or the connection fails. Each retry
/// reconnects (the daemon may have restarted). The jitter sequence is
/// fully determined by `seed`, so tests are reproducible.
///
/// Returns the first non-`Overloaded` response, or the last error once
/// the policy's retries are spent.
///
/// # Errors
///
/// The final [`ClientError`] after retries are exhausted.
pub fn call_with_retry(
    addr: impl ToSocketAddrs + Copy,
    request: &Request,
    policy: BackoffPolicy,
    seed: u64,
) -> Result<Response, ClientError> {
    let mut backoff = Backoff::new(policy, seed);
    loop {
        let attempt: Result<Response, ClientError> =
            Client::connect(addr).and_then(|mut c| c.call(request));
        let delay = match attempt {
            Ok(Response::Overloaded { retry_after_ms }) => match backoff.next_delay() {
                Some(d) => d.max(Duration::from_millis(retry_after_ms.min(50))),
                None => return Ok(Response::Overloaded { retry_after_ms }),
            },
            Ok(resp) => return Ok(resp),
            Err(e) => match backoff.next_delay() {
                Some(d) => d,
                None => return Err(e),
            },
        };
        std::thread::sleep(delay);
    }
}
