//! DIRTY-like data-driven type prediction.
//!
//! "Since these data-driven approaches guess types, they cannot have high
//! recall as MANTA and cannot achieve high precision as the prediction
//! could be incorrect" (§6.1). The reimplementation predicts from usage
//! features with fixed *learned-prior* confidences (standing in for the
//! transformer's calibration): with probability `confidence` the feature's
//! type is emitted, otherwise a deterministic wrong guess. Parameters with
//! no features get a coarse `reg64`-style prediction — a superset that
//! preserves recall but not precision. The model never abstains, so every
//! parameter is typed.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use manta::TypeInterval;
use manta_analysis::ModuleAnalysis;
use manta_ir::{FuncId, Type, Width};

use crate::ghidra::local_evidence;
use crate::tool::{ToolResult, TypeTool};

/// The DIRTY-like tool.
#[derive(Clone, Debug)]
pub struct DirtyLike {
    /// Project names the tool crashes on (the paper's ‡ rows; the real
    /// tool OOM-crashed on vim and python).
    pub crash_on: HashSet<String>,
    /// Confidence of signature-derived predictions.
    pub conf_extern: f64,
    /// Confidence of dereference-derived predictions.
    pub conf_deref: f64,
    /// Confidence of arithmetic-derived predictions.
    pub conf_arith: f64,
    /// Confidence of predictions hopped through one direct call.
    pub conf_hop: f64,
}

impl Default for DirtyLike {
    fn default() -> Self {
        DirtyLike {
            crash_on: ["vim", "python"].into_iter().map(String::from).collect(),
            conf_extern: 0.92,
            conf_deref: 0.86,
            conf_arith: 0.75,
            conf_hop: 0.72,
        }
    }
}

impl DirtyLike {
    /// Deterministic pseudo-probability in `[0, 1)` for a parameter.
    fn noise(module: &str, f: FuncId, idx: usize) -> f64 {
        let mut h = DefaultHasher::new();
        (module, f.0, idx as u64, 0x9e3779b97f4a7c15u64).hash(&mut h);
        (h.finish() % 10_000) as f64 / 10_000.0
    }

    fn wrong_guess(right: &Type) -> Type {
        if right.is_pointer() {
            Type::Int(Width::W64)
        } else {
            Type::byte_ptr()
        }
    }

    fn predict(
        &self,
        analysis: &ModuleAnalysis,
        f: FuncId,
        idx: usize,
        depth: usize,
    ) -> (Type, f64) {
        let func = analysis.module().function(f);
        let Some(&p) = func.params().get(idx) else {
            return (Type::Reg(Width::W64), 0.0);
        };
        self.predict_value(analysis, f, p, depth)
    }

    fn predict_value(
        &self,
        analysis: &ModuleAnalysis,
        f: FuncId,
        p: manta_ir::ValueId,
        depth: usize,
    ) -> (Type, f64) {
        let func = analysis.module().function(f);
        let ev = local_evidence(analysis, func, p);
        if let Some(t) = &ev.extern_sig {
            return (t.clone(), self.conf_extern);
        }
        if ev.deref {
            return (Type::byte_ptr(), self.conf_deref);
        }
        if ev.arith || ev.cmp_const {
            return (Type::Int(func.value(p).width), self.conf_arith);
        }
        if depth > 0 {
            let mut best = (Type::Reg(Width::W64), 0.0);
            for (callee, pos) in &ev.direct_calls {
                let (t, c) = self.predict(analysis, *callee, *pos, depth - 1);
                let c = c.min(self.conf_hop);
                if c > best.1 {
                    best = (t, c);
                }
            }
            if best.1 > 0.0 {
                return best;
            }
        }
        // No features: coarse prediction.
        (Type::Reg(Width::W64), 0.0)
    }
}

impl TypeTool for DirtyLike {
    fn name(&self) -> &str {
        "Dirty"
    }

    fn infer(&self, analysis: &ModuleAnalysis) -> ToolResult {
        let module_name = analysis.module().name().to_string();
        if self.crash_on.contains(&module_name) {
            return ToolResult::crash();
        }
        let mut out = ToolResult::default();
        for func in analysis.module().functions() {
            let param_pos: std::collections::HashMap<manta_ir::ValueId, usize> = func
                .params()
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i))
                .collect();
            for (v, data) in func.values() {
                if matches!(data.kind, manta_ir::ValueKind::Const(_)) {
                    continue;
                }
                let (ty, conf) = self.predict_value(analysis, func.id(), v, 2);
                let interval = if conf == 0.0 {
                    // Coarse superset prediction: a range, not a singleton.
                    TypeInterval {
                        upper: ty,
                        lower: Type::Bottom,
                    }
                } else if Self::noise(&module_name, func.id(), v.index()) < conf {
                    TypeInterval::exact(ty)
                } else {
                    TypeInterval::exact(Self::wrong_guess(&ty))
                };
                if let Some(&i) = param_pos.get(&v) {
                    out.params.insert((func.id(), i), interval.clone());
                }
                out.vars
                    .insert(manta_analysis::VarRef::new(func.id(), v), interval);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::ModuleBuilder;

    #[test]
    fn crashes_on_configured_projects() {
        let mb = ModuleBuilder::new("vim");
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = DirtyLike::default().infer(&analysis);
        assert!(r.crashed);
        assert!(!r.usable());
    }

    #[test]
    fn always_predicts_something() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64, Width::W64], Some(Width::W64));
        let p = fb.param(0);
        fb.load(p, Width::W64);
        fb.ret(Some(p));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = DirtyLike::default().infer(&analysis);
        assert!(r.params.contains_key(&(fid, 0)));
        assert!(
            r.params.contains_key(&(fid, 1)),
            "featureless param still predicted"
        );
        // The featureless one is a coarse range.
        assert_eq!(r.params[&(fid, 1)].upper, Type::Reg(Width::W64));
    }

    #[test]
    fn predictions_are_deterministic() {
        let build = || {
            let mut mb = ModuleBuilder::new("m");
            let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
            let p = fb.param(0);
            fb.load(p, Width::W64);
            fb.ret(Some(p));
            mb.finish_function(fb);
            ModuleAnalysis::build(mb.finish())
        };
        let r1 = DirtyLike::default().infer(&build());
        let r2 = DirtyLike::default().infer(&build());
        assert_eq!(r1.params, r2.params);
    }

    #[test]
    fn hops_through_direct_calls() {
        let mut mb = ModuleBuilder::new("m");
        let (callee, mut cb) = mb.function("callee", &[Width::W64], Some(Width::W64));
        let q = cb.param(0);
        let v = cb.load(q, Width::W64);
        cb.ret(Some(v));
        mb.finish_function(cb);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let r = fb.call(callee, &[p], Some(Width::W64)).unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = DirtyLike::default().infer(&analysis);
        let predicted = &r.params[&(fid, 0)];
        // Either the hop-derived pointer or the deterministic wrong guess —
        // but never the coarse fallback.
        assert_ne!(predicted.upper, Type::Reg(Width::W64));
    }
}
