//! Retypd-like principled constraint inference.
//!
//! "Its core is a constraint-solving engine performing transitive closure
//! analysis with O(N³) time complexity, which is inefficient when
//! analyzing large binaries" (§6.1). The reimplementation generates
//! subtyping constraints with *coarser* rules than Manta's Table 1 — in
//! particular, `add`/`sub` operands are unified with their results, which
//! merges pointers with their offsets — and solves them by unification
//! (the closure), producing one sketch per class:
//!
//! * a class with consistent hints resolves to that type;
//! * a conflicted class containing arithmetic evidence collapses to an
//!   integer sketch (losing pointers — a recall cost);
//! * other conflicted classes report a coarse range (recall-preserving).
//!
//! A work budget models the 72-hour timeout (the Δ rows of Tables 3/4).

use manta::{FirstLayer, Resolution, TypeInterval, UnionFind};
use manta_analysis::{ModuleAnalysis, VarRef};
use manta_ir::{Callee, InstKind, Terminator, Type, ValueId, Width};

use crate::tool::{ToolResult, TypeTool};

/// The Retypd-like tool.
#[derive(Clone, Copy, Debug)]
pub struct RetypdLike {
    /// Instruction budget standing in for the 72-hour wall-clock limit.
    pub budget_insts: usize,
}

impl Default for RetypdLike {
    fn default() -> Self {
        RetypdLike { budget_insts: 1200 }
    }
}

impl TypeTool for RetypdLike {
    fn name(&self) -> &str {
        "Retypd"
    }

    fn infer(&self, analysis: &ModuleAnalysis) -> ToolResult {
        let module = analysis.module();
        if module.total_insts() > self.budget_insts {
            return ToolResult::timeout();
        }
        let ddg = &analysis.ddg;
        let pts = &analysis.pointsto;
        let n_vars = ddg.node_count();
        let mut uf = UnionFind::new(n_vars + pts.object_count());
        let key = |v: VarRef| ddg.node(v).index();
        // Track which classes saw arithmetic merging.
        let mut arith_class = vec![false; n_vars + pts.object_count()];

        for func in module.functions() {
            let fid = func.id();
            let var = |v: ValueId| VarRef::new(fid, v);
            for inst in func.insts() {
                match &inst.kind {
                    InstKind::Copy { dst, src } => {
                        uf.union(key(var(*dst)), key(var(*src)));
                    }
                    InstKind::Phi { dst, incomings } => {
                        for (_, v) in incomings {
                            uf.union(key(var(*dst)), key(var(*v)));
                        }
                    }
                    InstKind::Load { dst, addr, .. } => {
                        for &o in pts.pts_var(var(*addr)) {
                            uf.union(key(var(*dst)), n_vars + o.index());
                        }
                    }
                    InstKind::Store { addr, val } => {
                        for &o in pts.pts_var(var(*addr)) {
                            uf.union(n_vars + o.index(), key(var(*val)));
                        }
                    }
                    InstKind::Cmp { lhs, rhs, .. } => {
                        uf.union(key(var(*lhs)), key(var(*rhs)));
                    }
                    // The coarse rule: *every* arithmetic instruction's
                    // operands share a sketch with its result.
                    InstKind::BinOp { dst, lhs, rhs, .. } => {
                        uf.union(key(var(*dst)), key(var(*lhs)));
                        uf.union(key(var(*dst)), key(var(*rhs)));
                        let root = uf.find(key(var(*dst)));
                        arith_class[root] = true;
                    }
                    InstKind::Call {
                        dst,
                        callee: Callee::Direct(t),
                        args,
                    } => {
                        if analysis.pre.is_broken_call(fid, inst.id) {
                            continue;
                        }
                        let tf = module.function(*t);
                        for (i, &a) in args.iter().enumerate() {
                            if let Some(&p) = tf.params().get(i) {
                                uf.union(key(var(a)), key(VarRef::new(*t, p)));
                            }
                        }
                        if let Some(d) = dst {
                            for b in tf.blocks() {
                                if let Terminator::Ret(Some(r)) = b.term {
                                    uf.union(key(var(*d)), key(VarRef::new(*t, r)));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // Absorb the same reveal set Manta uses (the constraint *sources*
        // are shared; the sensitivity machinery is what differs).
        let reveals = manta::RevealMap::collect(analysis);
        for func in module.functions() {
            for r in reveals.in_func(func.id()) {
                uf.absorb(key(VarRef::new(func.id(), r.value)), &r.ty);
            }
        }
        // The arith flag may predate later unions; recompute per root.
        let flags: Vec<usize> = (0..arith_class.len()).filter(|&i| arith_class[i]).collect();
        for i in flags {
            let root = uf.find(i);
            arith_class[root] = true;
        }

        let mut out = ToolResult::default();
        for func in module.functions() {
            let param_pos: std::collections::HashMap<ValueId, usize> = func
                .params()
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i))
                .collect();
            for (p, data) in func.values() {
                if matches!(data.kind, manta_ir::ValueKind::Const(_)) {
                    continue;
                }
                let k = key(VarRef::new(func.id(), p));
                let interval = uf.interval(k).clone();
                let root = uf.find(k);
                if interval.is_unknown() {
                    continue;
                }
                let sketch = match interval.resolution() {
                    Resolution::Precise(t) => TypeInterval::exact(t),
                    Resolution::Over if arith_class[root] => {
                        // Conflicted + arithmetic: numeric sketch wins,
                        // pointers are lost.
                        TypeInterval::exact(Type::Int(Width::W64))
                    }
                    _ => {
                        // Conflicted without arithmetic: coarse range.
                        let fl = FirstLayer::of(&interval.upper);
                        let upper = if fl == FirstLayer::Bottom {
                            Type::Reg(Width::W64)
                        } else {
                            interval.upper.clone()
                        };
                        TypeInterval {
                            upper,
                            lower: Type::Bottom,
                        }
                    }
                };
                if let Some(&i) = param_pos.get(&p) {
                    out.params.insert((func.id(), i), sketch.clone());
                }
                out.vars.insert(VarRef::new(func.id(), p), sketch);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::{BinOp, ModuleBuilder};

    #[test]
    fn times_out_over_budget() {
        let mut mb = ModuleBuilder::new("big");
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let mut v = fb.param(0);
        for _ in 0..40 {
            v = fb.copy(v);
        }
        fb.ret(Some(v));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let small_budget = RetypdLike { budget_insts: 10 };
        assert!(small_budget.infer(&analysis).timed_out);
        assert!(!RetypdLike::default().infer(&analysis).timed_out);
    }

    #[test]
    fn consistent_hints_resolve() {
        let mut mb = ModuleBuilder::new("m");
        let strlen = mb.extern_fn("strlen", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let n = fb.call_extern(strlen, &[p], Some(Width::W64)).unwrap();
        fb.ret(Some(n));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = RetypdLike::default().infer(&analysis);
        assert!(r.params[&(fid, 0)].upper.is_pointer());
    }

    #[test]
    fn pointer_plus_offset_collapses_to_int_sketch() {
        // The coarse add rule merges the pointer with its numeric offset;
        // the conflicted arithmetic class collapses to int (recall loss).
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let printf_d = mb.extern_fn("printf_d", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        fb.load(p, Width::W64); // pointer evidence on p
        let k = fb.const_int(8, Width::W64);
        let buf = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let off = fb.copy(p);
        let fmt = fb.alloca(8);
        fb.call_extern(printf_d, &[fmt, off], Some(Width::W32)); // int evidence
        let r = fb.binop(BinOp::Add, buf, off, Width::W64);
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = RetypdLike::default().infer(&analysis);
        assert_eq!(r.params[&(fid, 0)].upper, Type::Int(Width::W64));
    }
}
