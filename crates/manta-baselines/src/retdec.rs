//! RetDec-like type inference.
//!
//! "It does not produce unknown type since its output should be a valid
//! LLVM IR in which all values should have type. As a result, it will mark
//! the value whose type cannot be inferred as `i32`; such treatment
//! introduces low recall as lots of pointer type variables are inferred as
//! integer type" (§6.1). Same regional heuristics as [`crate::GhidraLike`],
//! but every undefined parameter becomes `i32`, so the output never
//! contains ranges or unknowns — precision equals recall.

use manta::TypeInterval;
use manta_analysis::ModuleAnalysis;
use manta_ir::{Type, Width};

use crate::ghidra::GhidraLike;
use crate::tool::{ToolResult, TypeTool};

/// The RetDec-like tool.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetdecLike;

impl TypeTool for RetdecLike {
    fn name(&self) -> &str {
        "RetDec"
    }

    fn infer(&self, analysis: &ModuleAnalysis) -> ToolResult {
        let mut base = GhidraLike.infer(analysis);
        for func in analysis.module().functions() {
            for (i, _) in func.params().iter().enumerate() {
                base.params
                    .entry((func.id(), i))
                    .or_insert_with(|| TypeInterval::exact(Type::Int(Width::W32)));
            }
            for (v, data) in func.values() {
                if matches!(data.kind, manta_ir::ValueKind::Const(_)) {
                    continue;
                }
                base.vars
                    .entry(manta_analysis::VarRef::new(func.id(), v))
                    .or_insert_with(|| TypeInterval::exact(Type::Int(Width::W32)));
            }
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::ModuleBuilder;

    #[test]
    fn unknowns_default_to_i32() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        fb.ret(Some(p)); // no usable evidence
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = RetdecLike.infer(&analysis);
        assert_eq!(r.params[&(fid, 0)].upper, Type::Int(Width::W32));
        assert_eq!(r.params[&(fid, 0)].lower, Type::Int(Width::W32));
    }

    #[test]
    fn every_parameter_is_typed() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64, Width::W64, Width::W64], None);
        let p = fb.param(0);
        fb.load(p, Width::W64);
        fb.ret(None);
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = RetdecLike.infer(&analysis);
        for i in 0..3 {
            assert!(r.params.contains_key(&(fid, i)), "param {i} must be typed");
        }
        assert!(r.params[&(fid, 0)].upper.is_pointer());
    }
}
