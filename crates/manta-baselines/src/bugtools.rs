//! Bug-detection baselines for the Table 5 comparison: cwe_checker-like,
//! SaTC-like and Arbiter-like detectors.
//!
//! Reports are at `(class, function)` granularity — the same key the
//! evaluation uses to match reports against injected ground truth.

use std::collections::HashSet;

use manta_analysis::ModuleAnalysis;
use manta_clients::BugKind;
use manta_ir::{Callee, ExternEffect, InstKind};

/// One report from a baseline tool.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ToolBugReport {
    /// Vulnerability class.
    pub class: BugKind,
    /// Function blamed.
    pub func: String,
}

/// A bug-finding tool under comparison.
pub trait BugTool {
    /// Display name.
    fn name(&self) -> &str;

    /// Runs detection; `None` models a crash (the paper's NA cells).
    fn detect(&self, analysis: &ModuleAnalysis) -> Option<Vec<ToolBugReport>>;
}

/// cwe_checker-like: local, intraprocedural pattern checks with no type
/// information and no interprocedural feasibility reasoning (§6.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct CweCheckerLike;

impl BugTool for CweCheckerLike {
    fn name(&self) -> &str {
        "cwe_checker"
    }

    fn detect(&self, analysis: &ModuleAnalysis) -> Option<Vec<ToolBugReport>> {
        let module = analysis.module();
        let mut out = HashSet::new();
        for func in module.functions() {
            let name = func.name().to_string();
            let mut calls_free = false;
            let mut derefs = false;
            let mut mallocs = false;
            let mut null_check = false;
            let mut returns_alloca_chain = false;
            let mut alloca_vals: HashSet<manta_ir::ValueId> = HashSet::new();
            for inst in func.insts() {
                match &inst.kind {
                    InstKind::Load { .. } | InstKind::Store { .. } => derefs = true,
                    InstKind::Alloca { dst, .. } => {
                        alloca_vals.insert(*dst);
                    }
                    InstKind::Copy { dst, src } if alloca_vals.contains(src) => {
                        alloca_vals.insert(*dst);
                    }
                    InstKind::BinOp { dst, lhs, rhs, .. }
                        if alloca_vals.contains(lhs) || alloca_vals.contains(rhs) =>
                    {
                        // No types: pointer differences look like escaping
                        // frame addresses too.
                        alloca_vals.insert(*dst);
                    }
                    InstKind::Cmp { lhs, rhs, .. } => {
                        let f = |v: &manta_ir::ValueId| {
                            module.function(func.id()).value(*v).is_zero_const()
                        };
                        if f(lhs) || f(rhs) {
                            null_check = true;
                        }
                    }
                    InstKind::Call {
                        callee: Callee::Extern(e),
                        args,
                        ..
                    } => match module.extern_decl(*e).effect {
                        ExternEffect::FreeHeap => calls_free = true,
                        ExternEffect::AllocHeap => mallocs = true,
                        ExternEffect::CommandSink => {
                            let non_const = args
                                .first()
                                .map(|&a| !func.value(a).is_const())
                                .unwrap_or(false);
                            if non_const {
                                out.insert(ToolBugReport {
                                    class: BugKind::Cmi,
                                    func: name.clone(),
                                });
                            }
                        }
                        ExternEffect::StrCopy => {
                            let non_const_src = args
                                .get(1)
                                .map(|&a| !func.value(a).is_const())
                                .unwrap_or(false);
                            if non_const_src {
                                out.insert(ToolBugReport {
                                    class: BugKind::Bof,
                                    func: name.clone(),
                                });
                            }
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
            for b in func.blocks() {
                if let manta_ir::Terminator::Ret(Some(v)) = b.term {
                    if alloca_vals.contains(&v) {
                        returns_alloca_chain = true;
                    }
                }
            }
            if calls_free && derefs {
                out.insert(ToolBugReport {
                    class: BugKind::Uaf,
                    func: name.clone(),
                });
            }
            if mallocs && derefs && !null_check {
                out.insert(ToolBugReport {
                    class: BugKind::Npd,
                    func: name.clone(),
                });
            }
            if returns_alloca_chain {
                out.insert(ToolBugReport {
                    class: BugKind::Rsa,
                    func: name.clone(),
                });
            }
        }
        let mut v: Vec<_> = out.into_iter().collect();
        v.sort_by(|a, b| (a.class, &a.func).cmp(&(b.class, &b.func)));
        Some(v)
    }
}

/// SaTC-like: input-keyword driven taint with no feasibility validation —
/// any function touching a taint source or a dangerous sink is flagged
/// (§6.3's 97.4% FPR).
#[derive(Clone, Copy, Debug, Default)]
pub struct SatcLike;

impl BugTool for SatcLike {
    fn name(&self) -> &str {
        "SaTC"
    }

    fn detect(&self, analysis: &ModuleAnalysis) -> Option<Vec<ToolBugReport>> {
        let module = analysis.module();
        let any_taint = module.functions().any(|f| {
            f.insts().any(|i| {
                matches!(
                    &i.kind,
                    InstKind::Call { callee: Callee::Extern(e), .. }
                        if module.extern_decl(*e).effect == ExternEffect::TaintSource
                )
            })
        });
        if !any_taint {
            return Some(Vec::new());
        }
        let mut out = Vec::new();
        for func in module.functions() {
            let mut has_sink_cmi = false;
            let mut has_sink_bof = false;
            let mut touches_input_keyword = false;
            for inst in func.insts() {
                if let InstKind::Call {
                    callee: Callee::Extern(e),
                    ..
                } = &inst.kind
                {
                    match module.extern_decl(*e).effect {
                        ExternEffect::CommandSink => has_sink_cmi = true,
                        ExternEffect::StrCopy => has_sink_bof = true,
                        // Keyword matching, no dataflow: any function that
                        // handles configuration/input strings shares the
                        // keywords the image-wide sources use.
                        _ => touches_input_keyword = true,
                    }
                }
            }
            if has_sink_cmi {
                out.push(ToolBugReport {
                    class: BugKind::Cmi,
                    func: func.name().into(),
                });
            }
            if has_sink_bof {
                out.push(ToolBugReport {
                    class: BugKind::Bof,
                    func: func.name().into(),
                });
            }
            if touches_input_keyword && !has_sink_cmi && !has_sink_bof {
                out.push(ToolBugReport {
                    class: BugKind::Cmi,
                    func: func.name().into(),
                });
            }
        }
        out.sort_by(|a, b| (a.class, &a.func).cmp(&(b.class, &b.func)));
        out.dedup();
        Some(out)
    }
}

/// Arbiter-like: under-constrained symbolic execution whose constraint
/// pruning discards everything on these images; crashes on configured
/// models (§6.3: "ARBITER could not produce any bugs in these benchmarks").
#[derive(Clone, Debug)]
pub struct ArbiterLike {
    /// Image names the tool crashes on (the paper's NA rows).
    pub crash_on: HashSet<String>,
}

impl Default for ArbiterLike {
    fn default() -> Self {
        ArbiterLike {
            crash_on: [
                "Netgear_SXR80",
                "Tenda_A15",
                "TRENDNet_TEW755AP",
                "ASUS_RT_AX56U",
                "TPLink_WR940N",
                "H3C_MagicR200",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        }
    }
}

impl BugTool for ArbiterLike {
    fn name(&self) -> &str {
        "Arbiter"
    }

    fn detect(&self, analysis: &ModuleAnalysis) -> Option<Vec<ToolBugReport>> {
        if self.crash_on.contains(analysis.module().name()) {
            return None;
        }
        // The under-constrained stage prunes every candidate.
        Some(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_workloads::{generate_firmware, FirmwareSpec};

    fn image(name: &str) -> ModuleAnalysis {
        let g = generate_firmware(&FirmwareSpec {
            name: name.into(),
            real_bugs_per_class: 2,
            decoys_per_class: 2,
            noise_functions: 8,
            seed: 5,
        });
        ModuleAnalysis::build(g.module)
    }

    #[test]
    fn satc_floods_reports() {
        let a = image("fw");
        let reports = SatcLike.detect(&a).unwrap();
        // Every real CMI, every decoy CMI, every BOF-ish function and the
        // guarded noise copies are all reported.
        assert!(reports.len() >= 8, "got {}", reports.len());
        assert!(reports.iter().any(|r| r.func.starts_with("cmi_real")));
        assert!(reports.iter().any(|r| r.func.starts_with("cmi_decoy")));
        assert!(
            reports.iter().any(|r| r.func.starts_with("svc_")),
            "noise flagged too"
        );
    }

    #[test]
    fn cwe_checker_reports_locals_without_types() {
        let a = image("fw");
        let reports = CweCheckerLike.detect(&a).unwrap();
        assert!(reports
            .iter()
            .any(|r| r.class == BugKind::Cmi && r.func == "cmi_real0"));
        // The sanitized decoy is also flagged: no types.
        assert!(reports
            .iter()
            .any(|r| r.class == BugKind::Cmi && r.func == "cmi_decoy0"));
        assert!(reports
            .iter()
            .any(|r| r.class == BugKind::Rsa && r.func == "rsa_real0"));
        // Pointer-difference decoy flagged too.
        assert!(reports
            .iter()
            .any(|r| r.class == BugKind::Rsa && r.func == "rsa_decoy0"));
    }

    #[test]
    fn arbiter_crashes_or_reports_nothing() {
        let a = image("Netgear_SXR80");
        assert!(ArbiterLike::default().detect(&a).is_none(), "NA row");
        let b = image("Zyxel_NR7101");
        assert_eq!(ArbiterLike::default().detect(&b), Some(Vec::new()));
    }
}
