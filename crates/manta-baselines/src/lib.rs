//! # manta-baselines
//!
//! Behavioural reimplementations of the tools the paper compares against.
//! None of the real tools (DIRTY's trained model, Ghidra, RetDec, Retypd,
//! cwe_checker, SaTC, Arbiter) are available offline, so each baseline
//! reproduces the *mechanism* the paper describes for it (§6.1 "Analysis
//! of Other Tools", §6.3 "Comparison with Other Tools") and therefore its
//! characteristic precision/recall signature:
//!
//! * [`dirty`] — data-driven: always predicts a concrete type from usage
//!   features with learned-prior confidence; wrong guesses cost recall.
//! * [`ghidra`] — heuristic, regional propagation; `undefined` when no
//!   local hint; treats comparison constants as integer evidence.
//! * [`retdec`] — like Ghidra but must emit typed IR: everything
//!   unresolved becomes `i32` (precision == recall).
//! * [`retypd`] — principled subtyping constraints solved by transitive
//!   closure (no upper/lower interval tracking, coarser arithmetic rules)
//!   with an `O(N³)` work budget that times out on large binaries.
//! * [`bugtools`] — cwe_checker-, SaTC- and Arbiter-like bug detectors for
//!   the Table 5 comparison.
//!
//! All type baselines implement [`TypeTool`], the common interface the
//! evaluation harness consumes (Manta's ablations are adapted onto the
//! same interface by `manta-eval`).

#![warn(missing_docs)]

pub mod bugtools;
pub mod dirty;
pub mod ghidra;
pub mod retdec;
pub mod retypd;
mod tool;

pub use bugtools::{ArbiterLike, BugTool, CweCheckerLike, SatcLike, ToolBugReport};
pub use dirty::DirtyLike;
pub use ghidra::GhidraLike;
pub use retdec::RetdecLike;
pub use retypd::RetypdLike;
pub use tool::{ToolResult, TypeTool};
