//! Ghidra-like heuristic type inference.
//!
//! "It performs a heuristic rule-based analysis by modeling some access
//! patterns and only performs regional type propagation. […] many
//! variables are inferred as undefined when there are no hints collected"
//! (§6.1). This reimplementation is *regional*: only direct intraprocedural
//! uses of a parameter are consulted — no memory, no interprocedural
//! unification — and heuristics favor arithmetic evidence, which misfires
//! on parameters that are cast to integers on some path.

use manta::TypeInterval;
use manta_analysis::ModuleAnalysis;
use manta_ir::{BinOp, Callee, ConstKind, Function, InstKind, Type, ValueId, ValueKind};

use crate::tool::{ToolResult, TypeTool};

/// Usage evidence Ghidra-like heuristics look at, in priority order.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct LocalEvidence {
    /// Dereferenced (load/store address or gep base).
    pub deref: bool,
    /// Used in any arithmetic instruction.
    pub arith: bool,
    /// Compared against a non-zero integer constant.
    pub cmp_const: bool,
    /// Passed to a modeled external with a known signature: the revealed
    /// parameter type.
    pub extern_sig: Option<Type>,
    /// Passed to an *unmodeled* external.
    pub unknown_extern_arg: bool,
    /// Direct (module) calls receiving this value, with argument position.
    pub direct_calls: Vec<(manta_ir::FuncId, usize)>,
}

/// Extracts direct-use evidence for `v` inside `func` (shared by the
/// Ghidra-, RetDec- and DIRTY-like tools).
pub(crate) fn local_evidence(
    analysis: &ModuleAnalysis,
    func: &Function,
    v: ValueId,
) -> LocalEvidence {
    let module = analysis.module();
    let mut ev = LocalEvidence::default();
    for inst in func.insts() {
        match &inst.kind {
            InstKind::Load { addr, .. } if *addr == v => ev.deref = true,
            InstKind::Store { addr, .. } if *addr == v => ev.deref = true,
            InstKind::Gep { base, .. } if *base == v => ev.deref = true,
            InstKind::BinOp { op, lhs, rhs, .. }
                if (*lhs == v || *rhs == v)
                // Pointer arithmetic (`add`/`sub`) is not integer
                // evidence; everything else is.
                && !matches!(op, BinOp::Add | BinOp::Sub) =>
            {
                ev.arith = true;
            }
            InstKind::Cmp { lhs, rhs, .. } if *lhs == v || *rhs == v => {
                let other = if *lhs == v { *rhs } else { *lhs };
                if matches!(
                    func.value(other).kind,
                    ValueKind::Const(ConstKind::Int(k)) if k != 0
                ) {
                    ev.cmp_const = true;
                }
            }
            InstKind::Call { callee, args, .. } => {
                if let Some(pos) = args.iter().position(|&a| a == v) {
                    match callee {
                        Callee::Extern(e) => {
                            let decl = module.extern_decl(*e);
                            match decl.sig.as_ref().and_then(|s| s.params.get(pos)) {
                                Some(t) => {
                                    ev.extern_sig.get_or_insert_with(|| t.clone());
                                }
                                None => ev.unknown_extern_arg = true,
                            }
                        }
                        Callee::Direct(f) => ev.direct_calls.push((*f, pos)),
                        Callee::Indirect(_) => {}
                    }
                }
            }
            _ => {}
        }
    }
    ev
}

/// The Ghidra-like tool.
#[derive(Clone, Copy, Debug, Default)]
pub struct GhidraLike;

impl TypeTool for GhidraLike {
    fn name(&self) -> &str {
        "Ghidra"
    }

    fn infer(&self, analysis: &ModuleAnalysis) -> ToolResult {
        let mut out = ToolResult::default();
        for func in analysis.module().functions() {
            let param_pos: std::collections::HashMap<manta_ir::ValueId, usize> = func
                .params()
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i))
                .collect();
            for (p, data) in func.values() {
                if matches!(data.kind, ValueKind::Const(_)) {
                    continue;
                }
                let ev = local_evidence(analysis, func, p);
                let width = func.value(p).width;
                // Heuristic priority: arithmetic/compare patterns are
                // trusted over access patterns (the documented misfire),
                // then the modeled-extern signature, then dereference,
                // then the call-argument-defaults-to-int rule.
                let ty = if ev.arith || ev.cmp_const {
                    Some(Type::Int(width))
                } else if let Some(t) = &ev.extern_sig {
                    Some(t.clone())
                } else if ev.deref {
                    Some(Type::ptr(Type::Bottom))
                } else if ev.unknown_extern_arg {
                    Some(Type::Int(width))
                } else {
                    None // `undefined`
                };
                if let Some(t) = ty {
                    let interval = TypeInterval::exact(t);
                    if let Some(&i) = param_pos.get(&p) {
                        out.params.insert((func.id(), i), interval.clone());
                    }
                    out.vars
                        .insert(manta_analysis::VarRef::new(func.id(), p), interval);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::{ModuleBuilder, Width};

    #[test]
    fn deref_yields_pointer_and_absence_yields_undefined() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64, Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let v = fb.load(p, Width::W64);
        fb.ret(Some(v));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = GhidraLike.infer(&analysis);
        assert!(r.params[&(fid, 0)].upper.is_pointer());
        assert!(
            !r.params.contains_key(&(fid, 1)),
            "unused param is undefined"
        );
    }

    #[test]
    fn arithmetic_overrides_deref_evidence() {
        // The misfire: a pointer also used in a multiply is typed int.
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        fb.load(p, Width::W64);
        let two = fb.const_int(2, Width::W64);
        let r = fb.binop(BinOp::Mul, p, two, Width::W64);
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = GhidraLike.infer(&analysis);
        assert_eq!(r.params[&(fid, 0)].upper, Type::Int(Width::W64));
    }

    #[test]
    fn extern_signature_used_when_no_arith() {
        let mut mb = ModuleBuilder::new("m");
        let strlen = mb.extern_fn("strlen", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let n = fb.call_extern(strlen, &[p], Some(Width::W64)).unwrap();
        fb.ret(Some(n));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let r = GhidraLike.infer(&analysis);
        assert!(r.params[&(fid, 0)].upper.is_pointer());
    }
}
