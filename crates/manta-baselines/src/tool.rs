//! The common type-inference tool interface.

use std::collections::HashMap;

use manta::{MapTypes, TypeInterval};
use manta_analysis::{ModuleAnalysis, VarRef};
use manta_ir::FuncId;

/// A tool's inference output over function parameters (the quantity §6.1
/// evaluates).
#[derive(Clone, Debug, Default)]
pub struct ToolResult {
    /// Whether the tool finished within its budget (Retypd's Δ rows).
    pub timed_out: bool,
    /// Whether the tool crashed (DIRTY's ‡ rows).
    pub crashed: bool,
    /// Inferred interval per `(function, parameter index)`. Parameters
    /// absent from the map are *unknown*.
    pub params: HashMap<(FuncId, usize), TypeInterval>,
    /// Inferred interval per variable (used to drive the §5 clients when
    /// comparing tools on downstream tasks).
    pub vars: HashMap<VarRef, TypeInterval>,
}

impl ToolResult {
    /// A result marking a timeout.
    pub fn timeout() -> ToolResult {
        ToolResult {
            timed_out: true,
            ..Default::default()
        }
    }

    /// A result marking a crash.
    pub fn crash() -> ToolResult {
        ToolResult {
            crashed: true,
            ..Default::default()
        }
    }

    /// Whether usable results exist.
    pub fn usable(&self) -> bool {
        !self.timed_out && !self.crashed
    }

    /// The variable-level types as a [`manta::TypeQuery`] adapter.
    pub fn as_types(&self) -> MapTypes {
        MapTypes(self.vars.clone())
    }
}

/// A binary type-inference tool under evaluation.
pub trait TypeTool {
    /// Display name (table column header).
    fn name(&self) -> &str;

    /// Runs the tool over a prepared module analysis.
    fn infer(&self, analysis: &ModuleAnalysis) -> ToolResult;
}
