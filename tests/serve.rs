//! Torture suite for the `manta-serve` daemon.
//!
//! Contracts exercised here:
//!
//! * **Fault matrix** — every server-side fault site (`serve.accept`,
//!   `serve.decode`, `serve.dispatch`, `serve.respond`, `serve.gc`) ×
//!   every fault kind (panic, injected budget exhaustion) yields a
//!   structured error on the client's wire (or, for the advisory GC
//!   site, no client impact at all), and the daemon keeps serving
//!   afterwards.
//! * **Wire robustness** — truncated frames, garbage payloads and
//!   oversized length prefixes never wedge or kill the daemon.
//! * **Admission control** — a full queue answers `Overloaded`
//!   deterministically; seeded client backoff retries to success once
//!   capacity returns.
//! * **Tenant budgets** — an over-budget request degrades to a
//!   structured result/error while its neighbours complete normally.
//! * **Crash recovery** — SIGKILLing a daemon mid-request loses no
//!   committed store entries: the store reopens `Recovered` (stale
//!   lock swept) and warm re-analysis is byte-identical.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use manta::cache::encode_result;
use manta::{AnalysisCache, Engine, MantaConfig, Sensitivity};
use manta_resilience::{BackoffPolicy, BudgetKind, Fault, FaultArming, FaultPlan, MantaError};
use manta_serve::client::{call_with_retry, Client};
use manta_serve::proto::{Request, Response};
use manta_serve::{ServeConfig, Server};
use manta_store::{OpenOutcome, Store};
use manta_workloads::generator::{generate, GenSpec};
use manta_workloads::PhenomenonMix;

/// Serializes tests: fault plans and telemetry switches are process
/// globals, and the store's advisory lock is per-directory.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("manta-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn module_text(seed: u64, functions: usize) -> String {
    let project = generate(&GenSpec {
        name: format!("serve_it_{seed}"),
        functions,
        mix: PhenomenonMix::balanced(),
        seed,
    });
    manta_ir::printer::print_module(&project.module)
}

fn analyze_req(seed: u64, functions: usize) -> Request {
    Request::Analyze {
        module_text: module_text(seed, functions),
        sensitivity: Sensitivity::FiCsFs,
        fuel: None,
        deadline_ms: None,
    }
}

/// Spawns a daemon on an ephemeral port with a cache at `dir`.
fn spawn_server(dir: &PathBuf, config: ServeConfig) -> Server {
    let cache = Arc::new(AnalysisCache::open(dir).expect("open serve cache"));
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .cache(cache)
        .build()
        .expect("engine build with open cache");
    Server::spawn(engine, config).expect("bind daemon")
}

fn call_once(addr: std::net::SocketAddr, req: &Request) -> Response {
    let mut client = Client::connect(addr).expect("connect");
    client.call(req).expect("call")
}

/// What the daemon must answer for this module: the engine's own
/// canonical result bytes, computed locally without any cache.
fn expected_bytes(seed: u64, functions: usize) -> Vec<u8> {
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .build()
        .expect("engine build without cache");
    let module =
        manta_ir::parser::parse_module(&module_text(seed, functions)).expect("reparse module");
    let (_, result) = engine.analyze_module(module).expect("local analyze");
    encode_result(&result)
}

#[test]
fn analyze_over_the_wire_matches_local_analysis_byte_for_byte() {
    let _guard = lock();
    let dir = temp_dir("roundtrip");
    let server = spawn_server(&dir, ServeConfig::default());
    let addr = server.addr();

    assert_eq!(call_once(addr, &Request::Ping), Response::Pong);

    let want = expected_bytes(11, 4);
    // Cold, then warm: both must be byte-identical to the local run.
    for pass in ["cold", "warm"] {
        match call_once(addr, &analyze_req(11, 4)) {
            Response::Analyzed {
                result, degraded, ..
            } => {
                assert!(!degraded, "{pass}: un-budgeted analysis must not degrade");
                assert_eq!(result, want, "{pass}: wire bytes must equal local bytes");
            }
            other => panic!("{pass}: expected Analyzed, got {other:?}"),
        }
    }

    match call_once(addr, &Request::Stats) {
        Response::Stats { text } => {
            assert!(text.contains("serve.analyzed 2"), "stats: {text}");
            assert!(
                text.contains("store."),
                "stats must include store counters: {text}"
            );
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_matrix_every_site_yields_a_structured_error_and_the_daemon_survives() {
    let _guard = lock();
    let dir = temp_dir("matrix");
    let server = spawn_server(
        &dir,
        ServeConfig {
            // GC armed on every analysis so the serve.gc site is hit.
            gc_max_bytes: Some(u64::MAX),
            gc_every: 1,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    let sites = [
        "serve.accept",
        "serve.decode",
        "serve.dispatch",
        "serve.respond",
        "serve.gc",
    ];
    for site in sites {
        for fault in [Fault::Panic, Fault::ExhaustBudget] {
            let guard = FaultPlan::new()
                .arm(site, fault, FaultArming::Always)
                .install();
            let response = call_once(addr, &analyze_req(23, 3));
            match site {
                // GC is advisory: the client's analysis must succeed
                // even while every GC pass is failing.
                "serve.gc" => match &response {
                    Response::Analyzed { .. } => {}
                    other => panic!("{site}/{fault:?}: expected Analyzed, got {other:?}"),
                },
                _ => match &response {
                    Response::Error { error } => match (fault, error) {
                        (Fault::Panic, MantaError::Panic { stage, .. }) => {
                            assert_eq!(stage, site, "panic must name its site");
                        }
                        (Fault::ExhaustBudget, MantaError::Budget { stage, kind }) => {
                            assert_eq!(stage, site, "exhaustion must name its site");
                            assert_eq!(*kind, BudgetKind::Injected);
                        }
                        other => panic!("{site}/{fault:?}: wrong error shape {other:?}"),
                    },
                    other => panic!("{site}/{fault:?}: expected Error, got {other:?}"),
                },
            }
            assert!(
                guard.fired(site) > 0,
                "{site}/{fault:?}: the armed site must actually fire"
            );
            drop(guard);

            // The same daemon keeps serving clean requests afterwards.
            match call_once(addr, &analyze_req(23, 3)) {
                Response::Analyzed { .. } => {}
                other => panic!("{site}/{fault:?}: daemon wedged after fault: {other:?}"),
            }
        }
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_truncated_frames_never_wedge_the_daemon() {
    let _guard = lock();
    let dir = temp_dir("frames");
    let server = spawn_server(&dir, ServeConfig::default());
    let addr = server.addr();

    // 1. A length prefix promising more bytes than ever arrive.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&100u32.to_le_bytes()).expect("write len");
        raw.write_all(&[0xAB; 10]).expect("write partial");
        // Drop mid-frame: the server must discard the connection.
    }
    // 2. A complete frame whose payload is garbage: structured parse
    //    error back, connection stays usable.
    {
        use std::io::{Read as _, Write as _};
        let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
        let garbage = [0xFFu8; 8];
        raw.write_all(&(garbage.len() as u32).to_le_bytes())
            .expect("write len");
        raw.write_all(&garbage).expect("write payload");
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).expect("read reply len");
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        raw.read_exact(&mut payload).expect("read reply payload");
        match Response::decode(&payload).expect("decode reply") {
            Response::Error {
                error: MantaError::Parse { .. },
            } => {}
            other => panic!("expected a Parse error for garbage, got {other:?}"),
        }
    }
    // 3. An absurd length prefix (over MAX_FRAME): dropped, not allocated.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&u32::MAX.to_le_bytes()).expect("write len");
    }

    // After all three abuses the daemon still answers.
    assert_eq!(call_once(addr, &Request::Ping), Response::Pong);
    match call_once(addr, &analyze_req(31, 3)) {
        Response::Analyzed { .. } => {}
        other => panic!("daemon wedged after malformed frames: {other:?}"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_rejects_deterministically_and_retry_succeeds() {
    let _guard = lock();

    // Phase 1: a zero-capacity queue rejects every analysis, always.
    let dir = temp_dir("admission-zero");
    let server = spawn_server(
        &dir,
        ServeConfig {
            queue_cap: 0,
            retry_after_ms: 5,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    for _ in 0..3 {
        match call_once(addr, &analyze_req(41, 3)) {
            Response::Overloaded { retry_after_ms } => assert_eq!(retry_after_ms, 5),
            other => panic!("zero-capacity queue must reject, got {other:?}"),
        }
    }
    // Control requests are not admission-controlled.
    assert_eq!(call_once(addr, &Request::Ping), Response::Pong);
    assert!(server.stats().overloaded >= 3);
    // Retry with a finite policy still ends in Overloaded — and the
    // same seed yields the same deterministic delay sequence.
    let policy = BackoffPolicy {
        base: Duration::from_millis(1),
        cap: Duration::from_millis(8),
        max_retries: 2,
    };
    match call_with_retry(addr, &analyze_req(41, 3), policy, 0xA11CE) {
        Ok(Response::Overloaded { .. }) => {}
        other => panic!("retries against a full queue must end Overloaded: {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 2: a small but real queue under a concurrent burst — every
    // client must eventually succeed via retry, and all answers must be
    // byte-identical to the local result.
    let dir = temp_dir("admission-burst");
    let server = spawn_server(
        &dir,
        ServeConfig {
            workers: 1,
            queue_cap: 1,
            retry_after_ms: 5,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let want = expected_bytes(47, 4);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let policy = BackoffPolicy {
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(50),
                    max_retries: 40,
                };
                call_with_retry(addr, &analyze_req(47, 4), policy, 0xBEEF + i)
            })
        })
        .collect();
    for handle in handles {
        match handle.join().expect("client thread") {
            Ok(Response::Analyzed { result, .. }) => {
                assert_eq!(result, want, "burst answers must stay byte-identical");
            }
            other => panic!("burst client must eventually succeed: {other:?}"),
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_budget_request_degrades_while_neighbours_complete() {
    let _guard = lock();
    let dir = temp_dir("budget");
    let server = spawn_server(&dir, ServeConfig::default());
    let addr = server.addr();

    // The abusive tenant: zero fuel. The substrate cannot even start,
    // so the floor of tiered degradation is a structured Budget error —
    // never a hang, never a daemon crash.
    let starved = Request::Analyze {
        module_text: module_text(53, 4),
        sensitivity: Sensitivity::FiCsFs,
        fuel: Some(0),
        deadline_ms: None,
    };
    match call_once(addr, &starved) {
        Response::Error {
            error: MantaError::Budget { kind, .. },
        } => assert_eq!(kind, BudgetKind::Fuel),
        Response::Analyzed { degraded, .. } => {
            assert!(
                degraded,
                "a starved request that completes must be degraded"
            );
        }
        other => panic!("starved request must degrade structurally: {other:?}"),
    }

    // Its neighbour is unaffected: full-fidelity, byte-identical.
    let want = expected_bytes(53, 4);
    match call_once(addr, &analyze_req(53, 4)) {
        Response::Analyzed {
            result, degraded, ..
        } => {
            assert!(!degraded);
            assert_eq!(result, want);
        }
        other => panic!("neighbour must complete normally: {other:?}"),
    }

    // Server-side clamp: a daemon with a fuel cap starves the request
    // even when the client asks for unlimited fuel.
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let dir = temp_dir("budget-cap");
    let server = spawn_server(
        &dir,
        ServeConfig {
            fuel_cap: Some(0),
            ..ServeConfig::default()
        },
    );
    match call_once(server.addr(), &analyze_req(53, 4)) {
        Response::Error {
            error: MantaError::Budget { kind, .. },
        } => assert_eq!(kind, BudgetKind::Fuel),
        Response::Analyzed { degraded, .. } => {
            assert!(degraded, "capped request that completes must be degraded");
        }
        other => panic!("server cap must bound every tenant: {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_inflight_requests() {
    let _guard = lock();
    let dir = temp_dir("drain");
    let server = spawn_server(&dir, ServeConfig::default());
    let addr = server.addr();

    // A client-initiated shutdown drains and joins.
    let worker = std::thread::spawn(move || call_once(addr, &analyze_req(61, 4)));
    // Wait for the job to be admitted before asking for shutdown. The
    // job may also start *and finish* between two polls, so "already
    // analyzed" counts as admitted too.
    let start = Instant::now();
    while server.in_flight() == 0
        && server.queue_depth() == 0
        && server.stats().analyzed == 0
        && server.stats().errors == 0
    {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "analysis never started"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut ctl = Client::connect(addr).expect("connect control");
    match ctl.call(&Request::Shutdown).expect("shutdown call") {
        Response::ShuttingDown => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    // The in-flight analysis still completes with a real answer.
    match worker.join().expect("in-flight client") {
        Response::Analyzed { .. } => {}
        other => panic!("draining daemon must finish in-flight work: {other:?}"),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    // `join()` entered *before* any Shutdown arrives (the CLI's
    // `manta serve` path) must still return once a client asks for one:
    // the drain has to wake the parked accept loop on its own.
    let dir = temp_dir("drain-join-first");
    let server = spawn_server(&dir, ServeConfig::default());
    let addr = server.addr();
    let stop = std::thread::spawn(move || {
        // Give join() time to park in the accept thread first.
        std::thread::sleep(Duration::from_millis(100));
        call_once(addr, &Request::Shutdown)
    });
    server.join();
    match stop.join().expect("shutdown client") {
        Response::ShuttingDown => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// --- SIGKILL crash recovery -------------------------------------------------

const CHILD_ENV: &str = "MANTA_SERVE_TORTURE_CHILD";
const CHILD_DIR_ENV: &str = "MANTA_SERVE_TORTURE_DIR";
const CHILD_ADDR_FILE_ENV: &str = "MANTA_SERVE_TORTURE_ADDR_FILE";

/// Not a test of its own: when re-executed with [`CHILD_ENV`] set, this
/// becomes the daemon child process that the crash-recovery test
/// SIGKILLs. Without the env var it is an immediate no-op pass.
#[test]
fn serve_torture_child_daemon() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    let dir = PathBuf::from(std::env::var(CHILD_DIR_ENV).expect("child dir env"));
    let addr_file = PathBuf::from(std::env::var(CHILD_ADDR_FILE_ENV).expect("child addr env"));
    let server = spawn_server(&dir, ServeConfig::default());
    // Publish the ephemeral port atomically (write + rename).
    let tmp = addr_file.with_extension("tmp");
    std::fs::write(&tmp, server.addr().to_string()).expect("write addr");
    std::fs::rename(&tmp, &addr_file).expect("publish addr");
    // Serve until SIGKILLed; a clean Shutdown request also ends us,
    // but the torture parent never sends one.
    server.join();
}

#[test]
fn sigkill_mid_request_loses_no_committed_entries_and_reopens_recovered() {
    let _guard = lock();
    let dir = temp_dir("sigkill");
    let addr_file = std::env::temp_dir().join(format!(
        "manta-serve-it-{}-sigkill.addr",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&addr_file);

    let exe = std::env::current_exe().expect("current test binary");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "serve_torture_child_daemon", "--nocapture"])
        .env(CHILD_ENV, "1")
        .env(CHILD_DIR_ENV, &dir)
        .env(CHILD_ADDR_FILE_ENV, &addr_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn daemon child");

    // Wait for the child to publish its port.
    let start = Instant::now();
    let addr: std::net::SocketAddr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "daemon child never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    // Commit two entries through the daemon and keep their bytes.
    let committed = [(71u64, 4usize), (72, 4)];
    let mut served: Vec<Vec<u8>> = Vec::new();
    for (seed, functions) in committed {
        match call_once(addr, &analyze_req(seed, functions)) {
            Response::Analyzed { result, .. } => served.push(result),
            other => panic!("pre-kill analyze failed: {other:?}"),
        }
    }
    let entries_before = count_entries(&dir);
    assert!(entries_before >= 2, "committed entries must be on disk");

    // Fire one more request and SIGKILL the daemon while it is in
    // flight — the response will never come.
    let kill_addr = addr;
    let orphan = std::thread::spawn(move || {
        let mut client = match Client::connect(kill_addr) {
            Ok(c) => c,
            Err(_) => return,
        };
        // The daemon dies mid-call; any outcome but a panic is fine.
        let _ = client.call(&analyze_req(73, 6));
    });
    std::thread::sleep(Duration::from_millis(30));
    child.kill().expect("SIGKILL daemon");
    let _ = child.wait();
    let _ = orphan.join();

    // The dead daemon left its LOCK behind: reopening must recover,
    // keep every committed entry, and serve byte-identical warm results.
    let (store, outcome) = {
        let store = Store::open(&dir).expect("reopen after SIGKILL");
        let outcome = store.open_outcome();
        (store, outcome)
    };
    assert_eq!(
        outcome,
        OpenOutcome::Recovered,
        "a SIGKILLed daemon's store must reopen Recovered"
    );
    drop(store);
    // The in-flight request may have committed extra entries before the
    // kill landed; recovery must keep at least everything committed.
    assert!(
        count_entries(&dir) >= entries_before,
        "recovery must not drop committed entries"
    );

    // Warm re-analysis from the recovered store matches what the dead
    // daemon served.
    let cache = Arc::new(AnalysisCache::open(&dir).expect("reopen cache"));
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .cache(cache)
        .build()
        .expect("engine over recovered store");
    for ((seed, functions), want) in committed.iter().zip(&served) {
        let module = manta_ir::parser::parse_module(&module_text(*seed, *functions))
            .expect("reparse module");
        let (_, result) = engine.analyze_module(module).expect("warm analyze");
        assert_eq!(
            &encode_result(&result),
            want,
            "warm result after recovery must equal the daemon's answer"
        );
    }

    let _ = std::fs::remove_file(&addr_file);
    let _ = std::fs::remove_dir_all(&dir);
}

fn count_entries(dir: &PathBuf) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "entry"))
                .count()
        })
        .unwrap_or(0)
}
