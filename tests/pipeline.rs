//! End-to-end pipeline integration: bytes → decode → lift → preprocess →
//! points-to → DDG → hybrid inference → clients.

use manta::{Manta, MantaConfig, Sensitivity, TypeQuery};
use manta_analysis::{ModuleAnalysis, VarRef};
use manta_clients::{
    detect_bugs, indirect_call_sites, resolve_targets_manta, BugKind, CheckerConfig,
};

const PROGRAM: &str = r#"
module pipeline_it
extern malloc, 1, ret
extern strlen, 1, ret
extern printf_s, 2, ret
extern free, 1

func consume(1) -> ret {
    mov r7, r1
    salloc r2, 8
    mov r1, r7
    ecall strlen, 1
    ret
}

func main(0) -> ret {
    movi r1, 48
    ecall malloc, 1
    mov r7, r0
    mov r1, r7
    call consume, 1
    mov r6, r0
    mov r1, r7
    ecall free, 1
    ld.w64 r5, [r7+0]
    mov r0, r5
    ret
}
"#;

fn lifted_analysis() -> ModuleAnalysis {
    let image = manta_isa::assemble(PROGRAM).expect("assembles");
    let bytes = manta_isa::encode(&image);
    let decoded = manta_isa::decode(&bytes).expect("decodes");
    let module = manta_isa::lift::lift(&decoded).expect("lifts");
    ModuleAnalysis::build(module)
}

#[test]
fn bytes_to_types_roundtrip() {
    let analysis = lifted_analysis();
    let result = Manta::new(MantaConfig::full()).infer(&analysis);
    // `consume`'s parameter is dereferenced via strlen: pointer.
    let consume = analysis.module().function_by_name("consume").unwrap();
    let p = VarRef::new(consume.id(), consume.params()[0]);
    let t = result.precise_type(p).expect("consume arg typed");
    assert!(t.is_pointer(), "strlen argument must be a pointer, got {t}");
}

#[test]
fn bytes_to_bug_detection() {
    // main() loads through the freed buffer: a UAF the detector must find.
    let analysis = lifted_analysis();
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    let (reports, _) = detect_bugs(
        &analysis,
        Some(&inference as &dyn TypeQuery),
        &[BugKind::Uaf],
        CheckerConfig::default(),
    );
    assert!(
        reports.iter().any(|r| r.kind == BugKind::Uaf),
        "use-after-free must be detected: {reports:?}"
    );
}

#[test]
fn generated_workload_full_stack() {
    let g = manta_workloads::generate(&manta_workloads::generator::GenSpec {
        name: "it".into(),
        functions: 24,
        mix: manta_workloads::PhenomenonMix::balanced(),
        seed: 31,
    });
    let analysis = ModuleAnalysis::build(g.module);
    // Every sensitivity runs to completion and classifies every variable.
    for s in Sensitivity::ALL {
        let r = Manta::new(MantaConfig::with_sensitivity(s)).infer(&analysis);
        let c = r.final_counts();
        assert!(c.total() > 0, "{s:?} classified nothing");
    }
    // Indirect-call resolution returns within the candidate set.
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    let at = analysis.module().address_taken_functions();
    for site in indirect_call_sites(&analysis) {
        for t in resolve_targets_manta(&analysis, &inference as &dyn TypeQuery, &site) {
            assert!(at.contains(&t), "target outside candidate set");
        }
    }
}

#[test]
fn preprocessing_makes_everything_acyclic() {
    let g = manta_workloads::generate(&manta_workloads::generator::GenSpec {
        name: "loops".into(),
        functions: 20,
        mix: manta_workloads::PhenomenonMix {
            loop_rate: 1.0,
            ..manta_workloads::PhenomenonMix::balanced()
        },
        seed: 8,
    });
    let analysis = ModuleAnalysis::build(g.module);
    for f in analysis.module().functions() {
        assert!(
            !manta_ir::cfg::Cfg::new(f).has_cycle(),
            "{} still cyclic after preprocessing",
            f.name()
        );
    }
    assert!(
        analysis.pre.stats.cyclic_functions > 0,
        "loops were generated"
    );
}
