//! Robustness contracts of the persistent analysis cache.
//!
//! The store may *never* change an answer or take down a run: any
//! corruption — truncation, bit flips, wrong magic, future versions,
//! a vandalized manifest — must degrade to a recompute that yields the
//! exact result an uncached run produces. These tests drive a 500-seed
//! corruption fuzz over real entry files, round-trip the inference
//! codec across every sensitivity, and pin warm-equals-cold equality
//! across thread counts and fuel budgets.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use manta::cache::{config_hash, decode_result, encode_result};
use manta::{AnalysisCache, Engine, Manta, MantaConfig, Sensitivity};
use manta_analysis::ModuleAnalysis;
use manta_eval::run_suite;
use manta_resilience::BudgetSpec;
use manta_store::hash::SplitMix64;
use manta_workloads::generator::{generate, GenSpec};
use manta_workloads::{PhenomenonMix, ProjectSpec};

/// Serializes tests that flip the process-global pool size.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the auto thread count even when an assertion panics.
struct ThreadGuard;

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        manta_parallel::set_threads(0);
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("manta-store-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn analysis(seed: u64, functions: usize) -> ModuleAnalysis {
    ModuleAnalysis::build(
        generate(&GenSpec {
            name: format!("store_it_{seed}"),
            functions,
            mix: PhenomenonMix::balanced(),
            seed,
        })
        .module,
    )
}

fn tiny_specs() -> Vec<ProjectSpec> {
    ["ash", "birch", "cedar"]
        .iter()
        .enumerate()
        .map(|(i, name)| ProjectSpec {
            name: (*name).to_string(),
            kloc: 1.0,
            functions: 4,
            mix: PhenomenonMix::balanced(),
            seed: 400 + i as u64,
        })
        .collect()
}

/// 500 seeds of file-level vandalism: truncation, single-bit flips,
/// wrong magic, future format versions, and manifest corruption — in
/// every case the cache must silently recompute the exact uncached
/// answer and never panic or serve stale bytes.
#[test]
fn corrupt_file_fuzz_always_recomputes_the_clean_answer() {
    let a = analysis(0xF422, 6);
    let engine = Engine::new(MantaConfig::full());
    let clean = encode_result(&engine.analyze(&a).expect("non-strict analyze cannot fail"));

    let dir = temp_dir("fuzz");
    let mut rng = SplitMix64(0x5EED_F00D);
    for round in 0..500 {
        // (Re)populate: open fresh, compute once so the entry exists.
        {
            let cache = AnalysisCache::open(&dir).expect("open cache");
            let r = engine
                .analyze_with_cache(&a, &cache)
                .expect("non-strict analyze cannot fail");
            assert_eq!(encode_result(&r), clean, "round {round}: populate");
        }

        // Pick any file in the store — entries or the manifest alike.
        let files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("store dir exists")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        assert!(!files.is_empty(), "round {round}: store must have files");
        let target = &files[(rng.next() % files.len() as u64) as usize];
        let mut bytes = std::fs::read(target).expect("read target");

        match rng.next() % 4 {
            // Truncate at a random offset (possibly to zero).
            0 => bytes.truncate((rng.next() as usize) % (bytes.len() + 1)),
            // Flip one random bit.
            1 => {
                if !bytes.is_empty() {
                    let i = (rng.next() as usize) % bytes.len();
                    bytes[i] ^= 1 << (rng.next() % 8);
                }
            }
            // Stomp the magic.
            2 => {
                for (i, b) in b"BADMAGIC".iter().enumerate() {
                    if i < bytes.len() {
                        bytes[i] = *b;
                    }
                }
            }
            // Claim a future format/codec version.
            _ => {
                if bytes.len() >= 12 {
                    bytes[8] = 0xFF;
                    bytes[11] = 0x7F;
                }
            }
        }
        std::fs::write(target, &bytes).expect("write corruption");

        // Reopen and query: the only acceptable outcome is the clean
        // answer (served from an intact entry or recomputed).
        let cache = AnalysisCache::open(&dir).expect("open survives corruption");
        let r = engine
            .analyze_with_cache(&a, &cache)
            .expect("non-strict analyze cannot fail");
        assert_eq!(
            encode_result(&r),
            clean,
            "round {round}: corrupting {} must not change the answer",
            target.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The inference-result codec round-trips bit-identically for every
/// sensitivity over a spread of generated programs.
#[test]
fn inference_payload_roundtrips_for_every_sensitivity() {
    for seed in [1u64, 77, 4242] {
        let a = analysis(seed, 5);
        for sens in [
            Sensitivity::Fi,
            Sensitivity::Fs,
            Sensitivity::FiFs,
            Sensitivity::FiCsFs,
            Sensitivity::FiFsCs,
        ] {
            let r = Manta::new(MantaConfig::with_sensitivity(sens)).infer(&a);
            let bytes = encode_result(&r);
            let back = decode_result(&bytes)
                .unwrap_or_else(|e| panic!("seed {seed} {sens:?}: decode failed: {e}"));
            assert_eq!(
                encode_result(&back),
                bytes,
                "seed {seed} {sens:?}: re-encode must be bit-identical"
            );
        }
    }
}

/// A warm suite evaluation is bit-identical to the cold run that
/// populated the cache, at 1, 2 and 8 pool threads.
#[test]
fn warm_eval_is_bit_identical_to_cold_at_every_thread_count() {
    let _l = lock();
    let _restore = ThreadGuard;
    let dir = temp_dir("threads");
    let cache = Arc::new(AnalysisCache::open(&dir).expect("open cache"));
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .cache(cache.clone())
        .build()
        .expect("prebuilt cache cannot fail to attach");
    let cold = run_suite(tiny_specs(), &engine);
    assert!(cold.failures.is_empty());
    for threads in [1usize, 2, 8] {
        manta_parallel::set_threads(threads);
        let warm = run_suite(tiny_specs(), &engine);
        assert_eq!(
            warm.skipped_builds,
            cold.rows.len(),
            "threads={threads}: every project must be served warm"
        );
        assert_eq!(
            warm.render_rows(),
            cold.render_rows(),
            "threads={threads}: warm rows must match cold bit for bit"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fuel budgets key separately from unbudgeted runs (a fuel-limited
/// result may legitimately differ), and a generous fuel budget warms to
/// exactly its own cold result.
#[test]
fn fuel_budgets_key_separately_and_warm_to_their_own_cold_result() {
    let dir = temp_dir("fuel");
    let cache = Arc::new(AnalysisCache::open(&dir).expect("open cache"));
    let plenty = BudgetSpec {
        fuel: Some(100_000_000),
        deadline_ms: None,
    };
    let engine_for = |budget: BudgetSpec| {
        Engine::builder()
            .config(MantaConfig::full())
            .budget(budget)
            .cache(cache.clone())
            .build()
            .expect("prebuilt cache cannot fail to attach")
    };

    let cold_unbudgeted = run_suite(tiny_specs(), &engine_for(BudgetSpec::default()));
    // A different fuel budget is a different key: nothing is served warm.
    let cold_fueled = run_suite(tiny_specs(), &engine_for(plenty));
    assert_eq!(
        cold_fueled.skipped_builds, 0,
        "a fuel budget must not reuse unbudgeted entries"
    );
    // But each key warms to its own cold rows.
    let warm_fueled = run_suite(tiny_specs(), &engine_for(plenty));
    assert_eq!(warm_fueled.skipped_builds, cold_fueled.rows.len());
    assert_eq!(warm_fueled.render_rows(), cold_fueled.render_rows());
    // Generous fuel completes the full cascade, so the rows agree with
    // the unbudgeted ones even though they were computed separately.
    assert_eq!(warm_fueled.render_rows(), cold_unbudgeted.render_rows());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The config hash must not see the pool size: results are
/// thread-invariant, so cache keys have to be too — otherwise test or
/// CI ordering (MANTA_THREADS, a leaked `--threads`) would silently
/// fork the cache into per-thread-count universes.
#[test]
fn config_hash_is_invariant_under_thread_count() {
    let _l = lock();
    let _restore = ThreadGuard;
    let config = MantaConfig::full();
    manta_parallel::set_threads(1);
    let at_1 = config_hash(&config, None);
    manta_parallel::set_threads(8);
    assert_eq!(config_hash(&config, None), at_1);
    // Fuel, by contrast, is part of the key.
    assert_ne!(config_hash(&config, Some(7)), at_1);
}

/// Editing one function invalidates its dependents' cached entries and
/// the next cached inference matches a from-scratch computation.
#[test]
fn module_edit_recomputes_exactly_the_fresh_answer() {
    let dir = temp_dir("edit");
    let cache = AnalysisCache::open(&dir).expect("open cache");
    let engine = Engine::new(MantaConfig::full());

    let before = analysis(0xED17, 6);
    cache.sync_module(&before);
    let _ = engine.analyze_with_cache(&before, &cache);

    // A different seed regenerates every function body: the sync must
    // notice the changes and the cached path must agree with a fresh,
    // cache-free inference of the edited module.
    let after = analysis(0xED18, 6);
    let sync = cache.sync_module(&after);
    assert!(
        !sync.changed.is_empty(),
        "regenerated functions must be detected as changed"
    );
    let via_cache = engine
        .analyze_with_cache(&after, &cache)
        .expect("non-strict analyze cannot fail");
    let fresh = engine
        .analyze(&after)
        .expect("non-strict analyze cannot fail");
    assert_eq!(
        encode_result(&via_cache),
        encode_result(&fresh),
        "cached inference after an edit must equal the uncached result"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite contract for the serve work: N sessions hammering one
/// shared `Arc<AnalysisCache>` concurrently must leave the store in a
/// state where every module's warm answer is bit-identical to a
/// sequential warm run — no torn entries, no cross-talk between
/// sessions, no lock-file corruption.
#[test]
fn concurrent_sessions_share_one_cache_without_cross_talk() {
    let _guard = lock();
    manta_parallel::set_threads(1);
    let _restore = ThreadGuard;

    let modules: Vec<ModuleAnalysis> = (0..6).map(|i| analysis(0xC0C0 + i, 4)).collect();
    let config = MantaConfig::full();

    // Ground truth: a sequential engine with its own store.
    let seq_dir = temp_dir("concurrent-seq");
    let expected: Vec<Vec<u8>> = {
        let cache = Arc::new(AnalysisCache::open(&seq_dir).expect("open sequential cache"));
        let engine = Engine::builder()
            .config(config)
            .cache(Arc::clone(&cache))
            .build()
            .expect("engine build with open cache");
        modules
            .iter()
            .map(|m| {
                let cold = engine.analyze(m).expect("cold analyze");
                let warm = engine.analyze(m).expect("warm analyze");
                assert_eq!(
                    encode_result(&cold),
                    encode_result(&warm),
                    "sequential warm must equal its own cold"
                );
                encode_result(&warm)
            })
            .collect()
    };

    // Contended run: one cache, one engine, N OS threads analyzing all
    // modules each (every entry is raced by every session).
    let dir = temp_dir("concurrent");
    let cache = Arc::new(AnalysisCache::open(&dir).expect("open shared cache"));
    let engine = Arc::new(
        Engine::builder()
            .config(config)
            .cache(Arc::clone(&cache))
            .build()
            .expect("engine build with open cache"),
    );
    let modules = Arc::new(modules);
    let handles: Vec<_> = (0..4)
        .map(|session| {
            let engine = Arc::clone(&engine);
            let modules = Arc::clone(&modules);
            std::thread::spawn(move || {
                let mut encoded = Vec::new();
                // Stagger the per-session order so sessions race
                // different entries, not the same one in lockstep.
                for k in 0..modules.len() {
                    let i = (k + session) % modules.len();
                    let r = engine.analyze(&modules[i]).expect("contended analyze");
                    encoded.push((i, encode_result(&r)));
                }
                encoded
            })
        })
        .collect();
    for handle in handles {
        for (i, bytes) in handle.join().expect("session thread panicked") {
            assert_eq!(
                bytes, expected[i],
                "session result for module {i} must match the sequential run"
            );
        }
    }

    // And the store the melee left behind serves the same bytes warm.
    for (i, m) in modules.iter().enumerate() {
        let r = engine.analyze(m).expect("post-melee warm analyze");
        assert_eq!(
            encode_result(&r),
            expected[i],
            "post-contention warm result for module {i}"
        );
    }
    let _ = std::fs::remove_dir_all(&seq_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
