//! Cross-crate behavioral invariants of the §5 clients.

use manta::{Manta, MantaConfig, Sensitivity, TypeQuery};
use manta_analysis::ModuleAnalysis;
use manta_clients::{
    ddg_prune, detect_bugs, BugKind, CheckerConfig, CustomChecker, SinkSpec, SlicerConfig,
    SourceSpec,
};
use manta_workloads::{generate_firmware, generator, FirmwareSpec, PhenomenonMix};

fn workload(seed: u64) -> ModuleAnalysis {
    let g = generator::generate(&generator::GenSpec {
        name: format!("inv{seed}"),
        functions: 30,
        mix: PhenomenonMix::balanced(),
        seed,
    });
    ModuleAnalysis::build(g.module)
}

#[test]
fn more_precise_types_prune_at_least_as_many_dependencies() {
    // Table 2 pruning fires only on precisely-resolved types, so a more
    // precise inference can never prune fewer edges.
    for seed in [1u64, 2, 3] {
        let analysis = workload(seed);
        let fi = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
        let full = Manta::new(MantaConfig::full()).infer(&analysis);
        let (_, s_fi) = ddg_prune::pruned_ddg(&analysis, &fi);
        let (_, s_full) = ddg_prune::pruned_ddg(&analysis, &full);
        assert!(
            s_full.removed >= s_fi.removed,
            "seed {seed}: full pruned {} < FI {}",
            s_full.removed,
            s_fi.removed
        );
        assert_eq!(s_full.examined, s_fi.examined);
    }
}

#[test]
fn typed_detection_reports_a_subset_of_untyped_reports() {
    // Type guards and DDG pruning only *remove* candidate flows; every
    // typed report must also exist untyped (at (kind, sink) granularity).
    let g = generate_firmware(&FirmwareSpec {
        name: "subset_fw".into(),
        real_bugs_per_class: 2,
        decoys_per_class: 3,
        noise_functions: 15,
        seed: 77,
    });
    let analysis = ModuleAnalysis::build(g.module);
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    let (typed, _) = detect_bugs(
        &analysis,
        Some(&inference as &dyn TypeQuery),
        &BugKind::ALL,
        CheckerConfig::default(),
    );
    let (untyped, _) = detect_bugs(&analysis, None, &BugKind::ALL, CheckerConfig::default());
    let untyped_keys: std::collections::BTreeSet<(BugKind, manta_ir::FuncId)> =
        untyped.iter().map(|r| (r.kind, r.func)).collect();
    for r in &typed {
        assert!(
            untyped_keys.contains(&(r.kind, r.func)),
            "typed-only report {:?} in {:?}",
            r.kind,
            r.func
        );
    }
    assert!(
        typed.len() < untyped.len(),
        "types must remove some reports"
    );
}

#[test]
fn typed_slicing_visits_fewer_ddg_nodes() {
    // The paper's timing observation: inferred types stop slicing on
    // incorrect paths, so the typed detector does less traversal work.
    let g = generate_firmware(&FirmwareSpec {
        name: "work_fw".into(),
        real_bugs_per_class: 3,
        decoys_per_class: 3,
        noise_functions: 25,
        seed: 13,
    });
    let analysis = ModuleAnalysis::build(g.module);
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    let (_, typed_visits) = detect_bugs(
        &analysis,
        Some(&inference as &dyn TypeQuery),
        &BugKind::ALL,
        CheckerConfig::default(),
    );
    let (_, untyped_visits) = detect_bugs(&analysis, None, &BugKind::ALL, CheckerConfig::default());
    assert!(
        typed_visits < untyped_visits,
        "typed {typed_visits} vs untyped {untyped_visits}"
    );
}

#[test]
fn custom_checker_composes_with_generated_firmware() {
    // A user-defined "taint reaches strcpy destination" checker runs over
    // the same images as the built-ins.
    let g = generate_firmware(&FirmwareSpec {
        name: "custom_fw".into(),
        real_bugs_per_class: 2,
        decoys_per_class: 1,
        noise_functions: 8,
        seed: 5,
    });
    let analysis = ModuleAnalysis::build(g.module);
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    let checker = CustomChecker {
        name: "TAINT->STRCPY".into(),
        sources: SourceSpec::ExternReturn("nvram_get".into()),
        sinks: SinkSpec::ExternArg {
            name: "strcpy".into(),
            index: 1,
        },
        numeric_guard: true,
    };
    let reports = checker.detect(
        &analysis,
        Some(&inference as &dyn TypeQuery),
        SlicerConfig::default(),
    );
    // Both real BOFs reach strcpy's source argument.
    let funcs: std::collections::BTreeSet<&str> = reports
        .iter()
        .map(|r| analysis.module().function(r.func).name())
        .collect();
    assert!(funcs.contains("bof_real0"), "{funcs:?}");
    assert!(funcs.contains("bof_real1"), "{funcs:?}");
    // The atol-sanitized decoy is type-pruned.
    assert!(!funcs.contains("bof_decoy0"), "{funcs:?}");
}

#[test]
fn detection_is_deterministic() {
    let run = || {
        let g = generate_firmware(&FirmwareSpec {
            name: "det_fw".into(),
            real_bugs_per_class: 2,
            decoys_per_class: 2,
            noise_functions: 10,
            seed: 21,
        });
        let analysis = ModuleAnalysis::build(g.module);
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let (reports, _) = detect_bugs(
            &analysis,
            Some(&inference as &dyn TypeQuery),
            &BugKind::ALL,
            CheckerConfig::default(),
        );
        reports
            .into_iter()
            .map(|r| {
                (
                    r.kind,
                    analysis.module().function(r.func).name().to_string(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
