//! Resilience integration tests spanning the whole pipeline.
//!
//! Two suites, both deterministic:
//!
//! * **Parser round-trip fuzzing** — 1000 seeded mutations (truncation,
//!   line deletion/duplication, character noise) of printed IR. The
//!   strict parser must return a structured error or a module, the
//!   recovering parser must always return something, and every mutant
//!   that still verifies must run through the budgeted analysis and the
//!   resilient inference cascade without panicking.
//! * **Fault-injection matrix** — every isolation site in the substrate,
//!   the cascade and the eval runner, armed with each fault kind. The
//!   pipeline must convert the fault into a structured error or a
//!   degradation record while keeping the last completed tier usable.
//!
//! The fault plan and the telemetry collector are process-global, so all
//! tests in this file serialize on one lock.

use std::sync::{Mutex, MutexGuard, PoisonError};

use manta::{Engine, Manta, MantaConfig, Sensitivity};
use manta_analysis::{ModuleAnalysis, PreprocessConfig};
use manta_ir::parser::{parse_module, parse_module_recovering};
use manta_ir::printer::print_module;
use manta_ir::verify::verify_module;
use manta_resilience::{
    Budget, BudgetSpec, DegradationKind, Fault, FaultArming, FaultPlan, MantaError,
};
use manta_workloads::generator::{self, GenSpec};
use manta_workloads::rng::ChaCha8Rng;
use manta_workloads::{PhenomenonMix, ProjectSpec};

/// Serializes every test here: they share the process-global fault plan
/// and telemetry collector.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small generated workload whose printed IR seeds the fuzzer.
fn fuzz_program() -> generator::GeneratedProgram {
    generator::generate(&GenSpec {
        name: "fuzz".to_string(),
        functions: 3,
        mix: PhenomenonMix::balanced(),
        seed: 0xF00D,
    })
}

/// Characters the mutation operators splice in: IR punctuation and
/// identifier fragments, biased toward "almost valid" corruption.
const GARBAGE: &[char] = &[
    '{', '}', '(', ')', '=', ',', ':', '0', '9', 'v', 'x', '@', '*', ' ', '\n', '%', '-',
];

fn truncate_at(rng: &mut ChaCha8Rng, text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    chars[..rng.gen_range(0..chars.len())].iter().collect()
}

fn drop_line(rng: &mut ChaCha8Rng, text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return text.to_string();
    }
    let cut = rng.gen_range(0..lines.len());
    lines
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != cut)
        .map(|(_, l)| *l)
        .collect::<Vec<_>>()
        .join("\n")
}

fn dup_line(rng: &mut ChaCha8Rng, text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return text.to_string();
    }
    let dup = rng.gen_range(0..lines.len());
    let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
    for (i, line) in lines.iter().enumerate() {
        out.push(line);
        if i == dup {
            out.push(line);
        }
    }
    out.join("\n")
}

fn overwrite_char(rng: &mut ChaCha8Rng, text: &str) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let i = rng.gen_range(0..chars.len());
    chars[i] = GARBAGE[rng.gen_range(0..GARBAGE.len())];
    chars.into_iter().collect()
}

fn swap_chars(rng: &mut ChaCha8Rng, text: &str) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    if chars.len() < 2 {
        return text.to_string();
    }
    let i = rng.gen_range(0..chars.len());
    let j = rng.gen_range(0..chars.len());
    chars.swap(i, j);
    chars.into_iter().collect()
}

fn insert_char(rng: &mut ChaCha8Rng, text: &str) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    let i = rng.gen_range(0..=chars.len());
    chars.insert(i, GARBAGE[rng.gen_range(0..GARBAGE.len())]);
    chars.into_iter().collect()
}

/// Applies 1–3 random mutation operators to `base`.
fn mutate(rng: &mut ChaCha8Rng, base: &str) -> String {
    let mut text = base.to_string();
    for _ in 0..rng.gen_range(1..=3usize) {
        text = match rng.gen_range(0..6u32) {
            0 => truncate_at(rng, &text),
            1 => drop_line(rng, &text),
            2 => dup_line(rng, &text),
            3 => overwrite_char(rng, &text),
            4 => swap_chars(rng, &text),
            _ => insert_char(rng, &text),
        };
    }
    text
}

/// Runs one IR text through the full pipeline: strict parse, recovering
/// parse, verify, budgeted analysis, resilient inference. Returns what
/// stage the text reached. Every failure mode must be a structured
/// `Err`/degradation — a panic anywhere fails the test.
fn drive(rng: &mut ChaCha8Rng, text: &str) -> &'static str {
    // The recovering parser must always produce a module + diagnostics.
    let (_recovered, _errors) = parse_module_recovering(text);
    let module = match parse_module(text) {
        Ok(m) => m,
        Err(_) => return "parse-error",
    };
    if verify_module(&module).is_err() {
        return "verify-reject";
    }
    // Half the survivors run under a tight random fuel budget so the
    // degradation paths get fuzzed too, not just the happy path.
    let budget = if rng.gen_bool(0.5) {
        Budget::unlimited()
    } else {
        Budget::with_fuel(rng.gen_range(0..4096u64))
    };
    let analysis =
        match ModuleAnalysis::build_budgeted(module, PreprocessConfig::default(), &budget) {
            Ok(a) => a,
            Err(_) => return "analysis-degraded",
        };
    let result = Engine::new(MantaConfig::full())
        .analyze_with_budget(&analysis, &budget)
        .expect("non-strict analyze cannot fail");
    if result.is_degraded() {
        "inference-degraded"
    } else {
        "complete"
    }
}

#[test]
fn mutated_ir_never_panics_through_the_pipeline() {
    let _l = lock();
    let base = print_module(&fuzz_program().module);
    // The pristine text must survive end to end, proving the harness
    // exercises the real pipeline and not just early parse rejections.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    assert_eq!(drive(&mut rng, &base), "complete");

    let mut outcomes: std::collections::BTreeMap<&str, usize> = Default::default();
    for seed in 0..1000u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let text = mutate(&mut rng, &base);
        *outcomes.entry(drive(&mut rng, &text)).or_default() += 1;
    }
    // Sanity on the mutation space: the operators must actually break
    // parsing some of the time, or the fuzz is a no-op.
    assert!(
        outcomes.get("parse-error").copied().unwrap_or(0) > 0,
        "no mutant broke the parser: {outcomes:?}"
    );
    assert_eq!(outcomes.values().sum::<usize>(), 1000, "{outcomes:?}");
}

#[test]
fn injected_faults_in_every_analysis_stage_surface_as_structured_errors() {
    let _l = lock();
    for site in [
        "analysis.preprocess",
        "analysis.callgraph",
        "analysis.pointsto",
        "analysis.ddg",
    ] {
        for fault in [Fault::Panic, Fault::ExhaustBudget] {
            let _guard = FaultPlan::new()
                .arm(site, fault, FaultArming::Always)
                .install();
            let budget = Budget::unlimited();
            let module = fuzz_program().module;
            let err = ModuleAnalysis::build_budgeted(module, PreprocessConfig::default(), &budget)
                .expect_err("armed fault must fail the build");
            match fault {
                Fault::Panic => {
                    assert!(matches!(err, MantaError::Panic { .. }), "{site}: {err:?}")
                }
                Fault::ExhaustBudget => {
                    assert!(matches!(err, MantaError::Budget { .. }), "{site}: {err:?}")
                }
            }
            let (MantaError::Panic { stage, .. } | MantaError::Budget { stage, .. }) = &err else {
                unreachable!()
            };
            assert_eq!(stage, site, "fault attributed to the armed stage");
            assert_eq!(
                DegradationKind::from_error(&err),
                DegradationKind::InjectedFault
            );
        }
    }
}

#[test]
fn injected_faults_in_refinement_keep_the_last_completed_tier() {
    let _l = lock();
    let analysis = ModuleAnalysis::build(fuzz_program().module);
    let engine = Engine::new(MantaConfig::full());
    let fi_baseline = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
    for (site, completed) in [("infer.cs", "FI"), ("infer.fs", "FI+CS")] {
        for fault in [Fault::Panic, Fault::ExhaustBudget] {
            let _guard = FaultPlan::new()
                .arm(site, fault, FaultArming::Always)
                .install();
            let result = engine
                .analyze_with_budget(&analysis, &Budget::unlimited())
                .expect("non-strict analyze cannot fail");
            assert_eq!(result.degradations.len(), 1, "{site}/{fault:?}");
            let d = &result.degradations[0];
            assert_eq!(d.stage, site);
            assert_eq!(d.completed, completed);
            assert_eq!(d.kind, DegradationKind::InjectedFault);
            // The result stays usable: the tiers below the faulted stage
            // are intact, so the totals match a clean lower-tier run.
            assert_eq!(
                result.final_counts().total(),
                fi_baseline.final_counts().total(),
                "{site}/{fault:?}"
            );
            if site == "infer.cs" {
                // CS faulted on its first step: the kept maps are the
                // flow-insensitive tier, bit for bit.
                assert_eq!(result.stage_counts, fi_baseline.stage_counts);
            }
        }
    }
}

#[test]
fn injected_fault_in_the_base_stage_yields_an_empty_degraded_result() {
    let _l = lock();
    let analysis = ModuleAnalysis::build(fuzz_program().module);
    let engine = Engine::new(MantaConfig::full());
    for fault in [Fault::Panic, Fault::ExhaustBudget] {
        let _guard = FaultPlan::new()
            .arm("infer.fi", fault, FaultArming::Always)
            .install();
        let result = engine
            .analyze_with_budget(&analysis, &Budget::unlimited())
            .expect("non-strict analyze cannot fail");
        assert_eq!(result.degradations.len(), 1, "{fault:?}");
        assert_eq!(result.degradations[0].stage, "infer.fi");
        assert_eq!(result.degradations[0].completed, "none");
        assert_eq!(result.degradations[0].kind, DegradationKind::InjectedFault);
        assert_eq!(result.final_counts().total(), 0, "{fault:?}");
    }
}

#[test]
fn strict_mode_propagates_an_injected_fault_as_an_error() {
    let _l = lock();
    let analysis = ModuleAnalysis::build(fuzz_program().module);
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .strict(true)
        .build()
        .expect("cacheless engine cannot fail to build");
    let _guard = FaultPlan::new()
        .arm("infer.cs", Fault::Panic, FaultArming::Always)
        .install();
    let err = engine
        .analyze_with_budget(&analysis, &Budget::unlimited())
        .expect_err("strict mode must not degrade");
    match err {
        MantaError::Panic { stage, .. } => assert_eq!(stage, "infer.cs"),
        other => panic!("expected a caught panic, got {other}"),
    }
}

#[test]
fn budget_exhaustion_in_one_eval_project_spares_the_rest() {
    let _l = lock();
    let specs: Vec<ProjectSpec> = ["alpha", "beta", "gamma"]
        .iter()
        .enumerate()
        .map(|(i, name)| ProjectSpec {
            name: (*name).to_string(),
            kloc: 1.0,
            functions: 4,
            mix: PhenomenonMix::balanced(),
            seed: 31 + i as u64,
        })
        .collect();
    let _guard = FaultPlan::new()
        .arm(
            "eval.project:beta",
            Fault::ExhaustBudget,
            FaultArming::Always,
        )
        .install();
    let load = manta_eval::load_specs_checked(specs, BudgetSpec::default());
    assert_eq!(load.projects.len(), 2, "alpha and gamma must survive");
    assert_eq!(load.failures.len(), 1);
    let f = &load.failures[0];
    assert_eq!(f.name, "beta");
    // The exhaustion lands on the first budgeted stage inside the build.
    assert!(
        matches!(f.error, MantaError::Budget { .. }),
        "{:?}",
        f.error
    );
    assert_eq!(f.degradation.kind, DegradationKind::InjectedFault);
}

#[test]
fn degradations_and_caught_panics_reach_the_telemetry_counters() {
    let _l = lock();
    manta_telemetry::set_enabled(true);
    manta_telemetry::reset();
    let analysis = ModuleAnalysis::build(fuzz_program().module);
    let engine = Engine::new(MantaConfig::full());
    {
        let _guard = FaultPlan::new()
            .arm("infer.cs", Fault::Panic, FaultArming::Always)
            .install();
        let r = engine
            .analyze_with_budget(&analysis, &Budget::unlimited())
            .expect("non-strict analyze cannot fail");
        assert!(r.is_degraded());
    }
    let r = engine
        .analyze_with_budget(&analysis, &Budget::with_fuel(0))
        .expect("non-strict analyze cannot fail");
    assert!(r.is_degraded());
    let report = manta_telemetry::report();
    let count = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    assert!(
        count("resilience.degradations") >= 2,
        "{:?}",
        report.counters
    );
    assert!(
        count("resilience.panics_caught") >= 1,
        "{:?}",
        report.counters
    );
    assert!(
        count("resilience.budget_exhausted") >= 1,
        "{:?}",
        report.counters
    );
    assert!(
        count("resilience.faults_fired") >= 1,
        "{:?}",
        report.counters
    );
    manta_telemetry::set_enabled(false);
}
