//! Bit-identity of the compositional summary path against whole-module
//! solves, and precision of its invalidation.
//!
//! A summary-mode engine must be a pure performance feature: for every
//! sensitivity (including the ineligible standalone-FS, which falls
//! through to the full pipeline), every fuel budget (which bypasses the
//! summary path entirely), and every pool size, its results must be
//! byte-for-byte the results of a fresh whole-module solve. On top of
//! identity, the edit storm pins *precision*: across 200 seeded
//! single-function edits, only the chunks whose recorded footprints
//! actually cover a changed input may recompute — everything else
//! replays.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use manta::cache::results_identical;
use manta::{summaries, AnalysisCache, Engine, Manta, MantaConfig, Sensitivity};
use manta_analysis::ModuleAnalysis;
use manta_ir::{BinOp, ModuleBuilder, Width};
use manta_resilience::{Budget, BudgetSpec};

const SENSITIVITIES: [Sensitivity; 5] = [
    Sensitivity::Fi,
    Sensitivity::Fs,
    Sensitivity::FiFs,
    Sensitivity::FiCsFs,
    Sensitivity::FiFsCs,
];

/// Serializes tests that flip the process-global pool size.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the auto thread count even when an assertion panics.
struct ThreadGuard;

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        manta_parallel::set_threads(0);
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("manta-summ-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The same workload shape the summary benchmark uses, small: `CLUSTERS`
/// independent call clusters, each a `DEPTH`-deep relay chain fed by
/// `USERS` polymorphic callers. Cluster membership is the function-name
/// prefix, which is what lets every test predict the exact summary-dirty
/// set of an edit: perturbing the constant in `u{k}_0` dirties cluster
/// `k` and nothing else.
const CLUSTERS: usize = 8;
const DEPTH: usize = 6;
const USERS: usize = 2;

fn module(edit: Option<(usize, u64)>) -> manta_ir::Module {
    let mut mb = ModuleBuilder::new("summparity");
    let malloc = mb.extern_fn("malloc", &[], None);
    for k in 0..CLUSTERS {
        let mut next = None;
        for i in (0..DEPTH).rev() {
            let (f, mut fb) = mb.function(&format!("w{k}_{i}"), &[Width::W64], Some(Width::W64));
            let x = fb.param(0);
            let _ = fb.binop(BinOp::Add, x, x, Width::W64);
            let out = match next {
                Some(callee) => fb.call(callee, &[x], Some(Width::W64)).unwrap(),
                None => x,
            };
            fb.ret(Some(out));
            mb.finish_function(fb);
            next = Some(f);
        }
        let head = next.expect("DEPTH > 0");
        for u in 0..USERS {
            let (_, mut ub) = mb.function(&format!("u{k}_{u}"), &[Width::W64], None);
            if u % 2 == 0 {
                let c = match edit {
                    Some((ek, v)) if ek == k => 7 + v,
                    _ => 7,
                };
                let n = ub.const_int(c as i64, Width::W64);
                let p = ub.param(0);
                let n2 = ub.binop(BinOp::Mul, n, p, Width::W64);
                let r = ub.call(head, &[n2], Some(Width::W64)).unwrap();
                let s = ub.alloca(8);
                ub.store(s, r);
            } else {
                let sz = ub.const_int(16, Width::W64);
                let buf = ub.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
                let r = ub.call(head, &[buf], Some(Width::W64)).unwrap();
                let _ = ub.load(r, Width::W64);
            }
            ub.ret(None);
            mb.finish_function(ub);
        }
    }
    mb.finish()
}

fn analysis(edit: Option<(usize, u64)>) -> ModuleAnalysis {
    ModuleAnalysis::build(module(edit))
}

fn summary_engine(config: MantaConfig, dir: &PathBuf) -> Engine {
    let cache = Arc::new(AnalysisCache::open(dir).expect("open cache"));
    Engine::builder()
        .config(config)
        .cache(cache)
        .summaries(true)
        .build()
        .expect("prebuilt cache cannot fail to attach")
}

/// Cold run, then two successive edits, for every sensitivity — each
/// result must be byte-identical to a fresh whole-module solve. The
/// standalone-FS row exercises the ineligibility fall-through (its
/// global alias classes cannot be chunked), not the summary codec.
#[test]
fn summary_engine_matches_plain_solve_across_sensitivities() {
    for sens in SENSITIVITIES {
        let config = MantaConfig::with_sensitivity(sens);
        let dir = temp_dir(&format!("sens-{sens:?}"));
        let engine = summary_engine(config, &dir);
        let manta = Manta::new(config);
        for edit in [None, Some((0, 3)), Some((5, 9))] {
            let a = analysis(edit);
            let via_summary = engine.analyze(&a).expect("non-strict cannot fail");
            assert!(
                results_identical(&via_summary, &manta.infer(&a)),
                "{sens:?} edit {edit:?}: summary engine diverged from Manta::infer"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Fuel-limited budgets must bypass the summary path (a blown budget
/// has to trip exactly where the full pipeline would) while staying
/// byte-identical to the legacy resilient solve — cold and warm, across
/// exhaustion regimes from trivially blown to effectively unlimited.
#[test]
fn fuel_budgets_bypass_summaries_but_stay_correct() {
    let a = analysis(None);
    let plain = Engine::new(MantaConfig::full());
    for fuel in [0u64, 500, 50_000, u64::MAX] {
        let dir = temp_dir(&format!("fuel-{fuel}"));
        let cache = Arc::new(AnalysisCache::open(&dir).expect("open cache"));
        let engine = Engine::builder()
            .config(MantaConfig::full())
            .budget(BudgetSpec {
                fuel: Some(fuel),
                deadline_ms: None,
            })
            .cache(cache)
            .summaries(true)
            .build()
            .expect("prebuilt cache cannot fail to attach");
        let legacy = plain
            .analyze_with_budget(&a, &Budget::with_fuel(fuel))
            .expect("non-strict cannot fail");
        for round in ["cold", "warm"] {
            let r = engine.analyze(&a).expect("non-strict cannot fail");
            assert!(
                results_identical(&r, &legacy),
                "fuel {fuel} ({round}): fueled summary engine diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One summary engine carried across pool sizes: recompute wavefronts
/// dispatched over 1, 2 and 8 threads must replay and recompute to the
/// same bytes a fresh single-path solve produces.
#[test]
fn summary_results_are_thread_count_invariant() {
    let _l = lock();
    let _restore = ThreadGuard;
    let config = MantaConfig::full();
    let dir = temp_dir("threads");
    let engine = summary_engine(config, &dir);
    let manta = Manta::new(config);
    let base = analysis(None);
    engine.analyze(&base).expect("non-strict cannot fail");
    for (i, threads) in [1usize, 2, 8].into_iter().enumerate() {
        manta_parallel::set_threads(threads);
        let a = analysis(Some((i % CLUSTERS, 20 + i as u64)));
        let r = engine.analyze(&a).expect("non-strict cannot fail");
        assert!(
            results_identical(&r, &manta.infer(&a)),
            "threads={threads}: summary engine diverged after an edit"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The edit storm: 200 seeded single-function edits chained through one
/// evolving summary state, like an editing session. Moving from the
/// previous edit (cluster `j`) to the next (cluster `k`) changes two
/// functions' text — `u{j}_0` reverts, `u{k}_0` retunes — so the
/// summary-dirty set is exactly clusters `j` and `k`. Every seed
/// asserts the recompute set stays inside that bound, that the edited
/// function itself recomputed, that every other cluster replayed, and
/// that the result matches a fresh whole-module solve byte for byte.
#[test]
fn edit_storm_recomputes_only_the_dirty_clusters() {
    let config = MantaConfig::full();
    let manta = Manta::new(config);
    let (_, mut state, _) = summaries::solve(&analysis(None), &config, None);
    let mut prev_cluster: Option<usize> = None;
    for seed in 0..200u64 {
        // A multiplicative stride walks the clusters in a scrambled
        // order so consecutive seeds exercise both near and far
        // cluster pairs.
        let cluster = ((seed * 5 + 3) % CLUSTERS as u64) as usize;
        let a = analysis(Some((cluster, seed + 1)));
        let (result, new_state, report) = summaries::solve(&a, &config, Some(&state));

        assert!(
            !report.reused.is_empty(),
            "seed {seed}: clean clusters must replay"
        );
        let dirty_ok = |name: &str| {
            let in_cluster = |k: usize| {
                name.starts_with(&format!("w{k}_")) || name.starts_with(&format!("u{k}_"))
            };
            in_cluster(cluster) || prev_cluster.is_some_and(in_cluster)
        };
        for name in &report.recomputed {
            assert!(
                dirty_ok(name),
                "seed {seed}: recompute leaked outside the dirty clusters \
                 ({cluster} and {prev_cluster:?}): {name}"
            );
        }
        assert!(
            report
                .recomputed
                .iter()
                .any(|n| n == &format!("u{cluster}_0")),
            "seed {seed}: the edited function must recompute: {report:?}"
        );
        for name in &report.reused {
            assert!(
                !name.starts_with(&format!("w{cluster}_")),
                "seed {seed}: a chain link of the edited cluster replayed stale data: {name}"
            );
        }
        assert!(
            results_identical(&result, &manta.infer(&a)),
            "seed {seed}: summary solve diverged from the whole-module solve"
        );

        state = new_state;
        prev_cluster = Some(cluster);
    }
}
