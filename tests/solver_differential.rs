//! Differential testing of the delta-propagation points-to solver against
//! the retained whole-set reference solver.
//!
//! Object *ids* are not comparable across the two solvers — field objects
//! materialize in solver-visit order — so every points-to relation is
//! compared through canonical object names derived from [`ObjectKind`]
//! parent chains (`stack:f0:i3+8+0` names the field at offset 0 of the
//! field at offset 8 of an alloca).

use std::collections::{BTreeMap, BTreeSet};

use manta_analysis::{
    preprocess, CallGraph, ObjectId, ObjectKind, PointsTo, PreprocessConfig, Preprocessed, VarRef,
};
use manta_ir::{ModuleBuilder, Width};
use manta_workloads::generator::{generate, GenSpec};
use manta_workloads::{project_suite, PhenomenonMix};

/// Canonical, solver-independent name for an object.
fn canon(pts: &PointsTo, o: ObjectId) -> String {
    match pts.object_kind(o) {
        ObjectKind::Stack { func, site, size } => format!("stack:{func:?}:{site:?}:{size}"),
        ObjectKind::Heap { func, site } => format!("heap:{func:?}:{site:?}"),
        ObjectKind::Global(g) => format!("global:{g:?}"),
        ObjectKind::ExternBuf { func, site } => format!("externbuf:{func:?}:{site:?}"),
        ObjectKind::Field { parent, offset } => format!("{}+{offset}", canon(pts, parent)),
    }
}

type Shape = (
    BTreeMap<String, BTreeSet<String>>,
    BTreeMap<String, BTreeSet<String>>,
);

/// All non-empty points-to relations, keyed canonically: one map for
/// variables, one for object contents. Empty sets are dropped on both
/// sides because a solver may or may not materialize a node it never
/// populated.
fn shape(pre: &Preprocessed, pts: &PointsTo) -> Shape {
    let mut vars = BTreeMap::new();
    for func in pre.module.functions() {
        for (v, _) in func.values() {
            let set: BTreeSet<String> = pts
                .pts_var(VarRef::new(func.id(), v))
                .iter()
                .map(|&o| canon(pts, o))
                .collect();
            if !set.is_empty() {
                vars.insert(format!("{:?}:{v:?}", func.id()), set);
            }
        }
    }
    let mut objs = BTreeMap::new();
    for (o, _) in pts.objects() {
        let set: BTreeSet<String> = pts.pts_obj(o).iter().map(|&x| canon(pts, x)).collect();
        if !set.is_empty() {
            objs.insert(canon(pts, o), set);
        }
    }
    (vars, objs)
}

fn assert_equivalent(module: manta_ir::Module, label: &str) {
    let pre = preprocess(module, PreprocessConfig::default());
    let cg = CallGraph::build(&pre);
    let delta = PointsTo::solve(&pre, &cg);
    let reference = PointsTo::solve_reference(&pre, &cg);
    assert_eq!(
        shape(&pre, &delta),
        shape(&pre, &reference),
        "delta and reference solvers diverge on {label}"
    );
}

#[test]
fn delta_matches_reference_on_200_seeded_random_modules() {
    for seed in 0..200u64 {
        let spec = GenSpec {
            name: format!("diff_{seed}"),
            functions: 4 + (seed as usize % 12),
            mix: PhenomenonMix::balanced(),
            seed: 0xD1FF ^ (seed * 0x9E37_79B9),
        };
        assert_equivalent(generate(&spec).module, &spec.name);
    }
}

#[test]
fn delta_matches_reference_on_the_full_project_suite() {
    for spec in project_suite() {
        assert_equivalent(spec.generate().module, &spec.name);
    }
}

/// Deep store/load relays with wide fan-in: the shape where the two
/// solvers' visit orders differ the most (this is also the benchmark's
/// stress project, scaled down).
#[test]
fn delta_matches_reference_on_pointer_chain_stress() {
    let mut mb = ModuleBuilder::new("stress");
    for i in 0..16 {
        let (_, mut fb) = mb.function(&format!("chain_{i}"), &[], None);
        let slots: Vec<_> = (0..8).map(|_| fb.alloca(8)).collect();
        let cells: Vec<_> = (0..12).map(|_| fb.alloca(8)).collect();
        for &s in &slots {
            fb.store(cells[0], s);
        }
        let mut v = fb.load(cells[0], Width::W64);
        for &cell in &cells[1..] {
            fb.store(cell, v);
            v = fb.load(cell, Width::W64);
        }
        // A cyclic inclusion: the chain tail feeds back into the head
        // cell, exercising online copy-SCC collapse.
        fb.store(cells[0], v);
        fb.ret(None);
        mb.finish_function(fb);
    }
    assert_equivalent(mb.finish(), "pointer_chain_stress");
}
