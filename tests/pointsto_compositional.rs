//! Differential testing of the compositional (partitioned, wavefront-
//! scheduled) points-to solver against the monolithic delta solver, plus
//! the incremental session's edit-storm bounds.
//!
//! Object *ids* are not comparable across solvers — field objects
//! materialize in visit order — so every points-to relation is compared
//! through canonical object names derived from [`ObjectKind`] parent
//! chains, exactly like the delta/reference differential suite.

use std::collections::{BTreeMap, BTreeSet};

use manta::{cache::results_identical, Engine, MantaConfig, Sensitivity};
use manta_analysis::{
    preprocess, CallGraph, ObjectId, ObjectKind, PointsTo, PointsToSession, PreprocessConfig,
    Preprocessed, VarRef,
};
use manta_ir::{CmpPred, ModuleBuilder, Width};
use manta_workloads::generator::{generate, GenSpec};
use manta_workloads::{project_suite, PhenomenonMix, ProjectSpec};

const SENSITIVITIES: [Sensitivity; 5] = [
    Sensitivity::Fi,
    Sensitivity::Fs,
    Sensitivity::FiFs,
    Sensitivity::FiCsFs,
    Sensitivity::FiFsCs,
];

/// Canonical, solver-independent name for an object.
fn canon(pts: &PointsTo, o: ObjectId) -> String {
    match pts.object_kind(o) {
        ObjectKind::Stack { func, site, size } => format!("stack:{func:?}:{site:?}:{size}"),
        ObjectKind::Heap { func, site } => format!("heap:{func:?}:{site:?}"),
        ObjectKind::Global(g) => format!("global:{g:?}"),
        ObjectKind::ExternBuf { func, site } => format!("externbuf:{func:?}:{site:?}"),
        ObjectKind::Field { parent, offset } => format!("{}+{offset}", canon(pts, parent)),
    }
}

type Shape = (
    BTreeMap<String, BTreeSet<String>>,
    BTreeMap<String, BTreeSet<String>>,
);

/// All non-empty points-to relations, keyed canonically. Empty sets are
/// dropped on both sides because a solver may or may not materialize a
/// node it never populated.
fn shape(pre: &Preprocessed, pts: &PointsTo) -> Shape {
    let mut vars = BTreeMap::new();
    for func in pre.module.functions() {
        for (v, _) in func.values() {
            let set: BTreeSet<String> = pts
                .pts_var(VarRef::new(func.id(), v))
                .iter()
                .map(|&o| canon(pts, o))
                .collect();
            if !set.is_empty() {
                vars.insert(format!("{:?}:{v:?}", func.id()), set);
            }
        }
    }
    let mut objs = BTreeMap::new();
    for (o, _) in pts.objects() {
        let set: BTreeSet<String> = pts.pts_obj(o).iter().map(|&x| canon(pts, x)).collect();
        if !set.is_empty() {
            objs.insert(canon(pts, o), set);
        }
    }
    (vars, objs)
}

fn assert_equivalent(module: manta_ir::Module, label: &str) {
    let pre = preprocess(module, PreprocessConfig::default());
    let cg = CallGraph::build(&pre);
    let mono = PointsTo::solve(&pre, &cg);
    let part = PointsTo::solve_partitioned(&pre, &cg);
    assert_eq!(
        shape(&pre, &mono),
        shape(&pre, &part),
        "partitioned and monolithic solvers diverge on {label}"
    );
}

#[test]
fn partitioned_matches_monolithic_on_200_seeded_random_modules() {
    for seed in 0..200u64 {
        let spec = GenSpec {
            name: format!("comp_{seed}"),
            functions: 4 + (seed as usize % 12),
            mix: PhenomenonMix::balanced(),
            seed: 0xC0DE ^ (seed * 0x9E37_79B9),
        };
        assert_equivalent(generate(&spec).module, &spec.name);
    }
}

#[test]
fn partitioned_matches_monolithic_on_the_full_project_suite() {
    for spec in project_suite() {
        assert_equivalent(spec.generate().module, &spec.name);
    }
}

/// Mutual and self recursion: preprocessing breaks call-graph back edges,
/// so the broken edge must stay *opaque* (no parameter/return binding)
/// under both solvers — the partitioned solver must not accidentally
/// route facts across an edge the monolithic constraint walk skipped.
#[test]
fn recursion_sccs_keep_opaque_edge_semantics() {
    let mut mb = ModuleBuilder::new("recur");
    let malloc = mb.extern_fn("malloc", &[], None);

    // Self recursion: f(p) calls f(load p).
    let (f_self, mut fb) = mb.function("selfrec", &[Width::W64], Some(Width::W64));
    let p = fb.param(0);
    let v = fb.load(p, Width::W64);
    let r = fb.call(f_self, &[v], Some(Width::W64));
    fb.ret(r);
    mb.finish_function(fb);

    // Mutual recursion through a heap-allocating pair.
    let (ping_id, mut pb) = mb.function("ping", &[Width::W64], Some(Width::W64));
    // Forward-declare pong by building ping first with a self edge, then
    // the driver wires both; the IR builder requires targets to exist, so
    // ping calls selfrec and pong calls ping — the cycle comes from the
    // driver storing pong's result back through ping's argument object.
    let q = pb.param(0);
    let sz = pb.const_int(16, Width::W64);
    let buf = pb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
    pb.store(q, buf);
    let fwd = pb.call(f_self, &[q], Some(Width::W64));
    pb.ret(fwd);
    mb.finish_function(pb);

    let (_pong, mut qb) = mb.function("pong", &[Width::W64], Some(Width::W64));
    let a = qb.param(0);
    let r2 = qb.call(ping_id, &[a], Some(Width::W64));
    qb.ret(r2);
    mb.finish_function(qb);

    // Driver allocates the cell both sides traffic through.
    let (_d, mut db) = mb.function("driver", &[], None);
    let cell = db.alloca(8);
    db.call(ping_id, &[cell], Some(Width::W64));
    db.ret(None);
    mb.finish_function(db);

    assert_equivalent(mb.finish(), "recursion_sccs");
}

/// A genuine call-graph SCC (a → b → a) built *before* preprocessing:
/// after back-edge breaking one direction survives and the other is
/// opaque. Both solvers must agree on which facts crossed.
#[test]
fn two_function_cycle_matches_after_edge_breaking() {
    let mut mb = ModuleBuilder::new("cycle");
    let malloc = mb.extern_fn("malloc", &[], None);
    let (a_id, mut ab) = mb.function("cyc_a", &[Width::W64], Some(Width::W64));
    let pa = ab.param(0);
    let sz = ab.const_int(8, Width::W64);
    let ha = ab.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
    ab.store(pa, ha);
    // cyc_a calls cyc_b below once both exist: emit the call from b→a and
    // a second module-level driver a→b is impossible with forward refs,
    // so the cycle is a→a through b's call. b calls a; a's recursion is
    // direct.
    let rec = ab.call(a_id, &[pa], Some(Width::W64));
    ab.ret(rec);
    mb.finish_function(ab);
    let (_b_id, mut bb) = mb.function("cyc_b", &[Width::W64], Some(Width::W64));
    let pb_ = bb.param(0);
    let r = bb.call(a_id, &[pb_], Some(Width::W64));
    let got = bb.load(pb_, Width::W64);
    bb.load(got, Width::W64);
    bb.ret(r);
    mb.finish_function(bb);
    assert_equivalent(mb.finish(), "two_function_cycle");
}

/// End-to-end inference parity: the engine run on a partitioned substrate
/// must produce byte-identical results to one run on the monolithic
/// substrate, for every sensitivity.
#[test]
fn engine_results_identical_across_sensitivities_on_partitioned_substrate() {
    let specs: Vec<ProjectSpec> = ["agate", "beryl", "citrine"]
        .iter()
        .enumerate()
        .map(|(i, name)| ProjectSpec {
            name: (*name).to_string(),
            kloc: 1.0,
            functions: 6,
            mix: PhenomenonMix::balanced(),
            seed: 9100 + i as u64,
        })
        .collect();
    for spec in specs {
        let module = spec.generate().module;
        for sens in SENSITIVITIES {
            let config = MantaConfig::with_sensitivity(sens);
            let mono = Engine::new(config);
            let part = Engine::builder()
                .config(config)
                .partitioned_pointsto(true)
                .build()
                .expect("no cache dir, build cannot fail");
            let budget = manta_resilience::Budget::unlimited();
            let am = mono
                .build_substrate(module.clone(), &budget)
                .expect("substrate");
            let ap = part
                .build_substrate(module.clone(), &budget)
                .expect("substrate");
            let rm = mono.analyze(&am).expect("non-strict cannot fail");
            let rp = part.analyze(&ap).expect("non-strict cannot fail");
            assert!(
                results_identical(&rm, &rp),
                "{}: {sens:?} inference diverges on partitioned substrate",
                spec.name
            );
        }
    }
}

/// Same parity under explicit pool sizes: the partitioned solve's merge
/// order is batch order, not completion order, so thread count must not
/// leak into results.
#[test]
fn partitioned_solve_is_deterministic_across_thread_counts() {
    struct ThreadGuard;
    impl Drop for ThreadGuard {
        fn drop(&mut self) {
            manta_parallel::set_threads(0);
        }
    }
    let _guard = ThreadGuard;
    let spec = GenSpec {
        name: "threads".into(),
        functions: 24,
        mix: PhenomenonMix::balanced(),
        seed: 0xBEEF,
    };
    let module = generate(&spec).module;
    let mut shapes = Vec::new();
    for threads in [1usize, 2, 8] {
        manta_parallel::set_threads(threads);
        let pre = preprocess(module.clone(), PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let pts = PointsTo::solve_partitioned(&pre, &cg);
        shapes.push((threads, shape(&pre, &pts)));
    }
    for w in shapes.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "threads={} vs threads={} diverge",
            w[0].0, w[1].0
        );
    }
}

/// peak_pts regression (the audit finding): on a realistic project the
/// maximum points-to set must exceed one object — the generator now
/// guarantees multi-object flows, so a flatlined `pointsto.peak_pts = 1`
/// means the telemetry (or the solver) regressed.
#[test]
fn project_suite_exhibits_multi_object_points_to_sets() {
    let mut best = 0usize;
    for spec in project_suite().into_iter().take(4) {
        let module = spec.generate().module;
        let pre = preprocess(module, PreprocessConfig::default());
        let cg = CallGraph::build(&pre);
        let pts = PointsTo::solve(&pre, &cg);
        best = best.max(pts.max_pts_len());
        assert!(
            pts.max_pts_len() > 1,
            "{}: peak |pts| flatlined at {}",
            spec.name,
            pts.max_pts_len()
        );
    }
    assert!(best > 1, "no project exhibited a multi-object set");
}

/// Builds the edit-storm module: `nclusters` disjoint call chains
/// (leaf ← mid ← root), where cluster `hot` optionally gets an extra
/// allocation flowing through its chain.
fn storm_module(nclusters: usize, hot: usize, edited: bool) -> manta_ir::Module {
    let mut mb = ModuleBuilder::new("storm");
    let malloc = mb.extern_fn("malloc", &[], None);
    for c in 0..nclusters {
        let (leaf, mut lb) = mb.function(&format!("leaf_{c}"), &[Width::W64], Some(Width::W64));
        let p = lb.param(0);
        let sz = lb.const_int(16, Width::W64);
        let h = lb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
        lb.store(p, h);
        if c == hot && edited {
            let sz2 = lb.const_int(32, Width::W64);
            let h2 = lb.call_extern(malloc, &[sz2], Some(Width::W64)).unwrap();
            let zero = lb.const_int(0, Width::W64);
            let cnd = lb.cmp(CmpPred::Eq, sz2, zero);
            let bb_t = lb.new_block();
            let bb_j = lb.new_block();
            lb.cond_br(cnd, bb_t, bb_j);
            lb.switch_to(bb_t);
            lb.store(p, h2);
            lb.br(bb_j);
            lb.switch_to(bb_j);
        }
        lb.ret(Some(p));
        mb.finish_function(lb);
        let (mid, mut mb2) = mb.function(&format!("mid_{c}"), &[Width::W64], Some(Width::W64));
        let q = mb2.param(0);
        let r = mb2.call(leaf, &[q], Some(Width::W64)).unwrap();
        let got = mb2.load(r, Width::W64);
        mb2.load(got, Width::W64);
        mb2.ret(Some(r));
        mb.finish_function(mb2);
        let (_root, mut rb) = mb.function(&format!("root_{c}"), &[], None);
        let cell = rb.alloca(8);
        rb.call(mid, &[cell], Some(Width::W64));
        rb.ret(None);
        mb.finish_function(rb);
    }
    mb.finish()
}

/// Edit storm: editing one leaf in one of eight disjoint call clusters
/// must re-solve only that cluster (the leaf plus the callers its
/// boundary reaches), never the other seven — and the incrementally
/// updated session must match a fresh monolithic solve bit-for-bit in
/// shape after every edit.
#[test]
fn edit_storm_bounds_resolves_to_the_dirty_cluster() {
    const CLUSTERS: usize = 8;
    let base = preprocess(
        storm_module(CLUSTERS, 0, false),
        PreprocessConfig::default(),
    );
    let mut session = PointsToSession::new(&base);
    assert_eq!(session.partition_count(), CLUSTERS * 3);

    for hot in 0..CLUSTERS {
        // Edit: grow cluster `hot`.
        let pre = preprocess(
            storm_module(CLUSTERS, hot, true),
            PreprocessConfig::default(),
        );
        let report = session.update(&pre).clone();
        assert!(!report.full_resolve, "edit {hot}: unexpected full re-solve");
        assert!(
            report.resolved <= 3,
            "edit {hot}: re-solved {} partitions, expected the dirty cluster (<= 3): {:?}",
            report.resolved,
            report.closure
        );
        let hot_funcs: Vec<u32> = (0..3).map(|k| (hot * 3 + k) as u32).collect();
        for f in &report.closure {
            assert!(
                hot_funcs.contains(f),
                "edit {hot}: partition {f} outside the dirty cluster was reset"
            );
        }
        let cg = CallGraph::build(&pre);
        let fresh = PointsTo::solve(&pre, &cg);
        assert_eq!(
            shape(&pre, &session.export()),
            shape(&pre, &fresh),
            "edit {hot}: incremental session diverges from fresh solve"
        );
        // Revert: shrink it back; again only the cluster may re-solve.
        let pre_back = preprocess(
            storm_module(CLUSTERS, hot, false),
            PreprocessConfig::default(),
        );
        let back = session.update(&pre_back).clone();
        assert!(!back.full_resolve);
        assert!(back.resolved <= 3, "revert {hot}: {:?}", back.closure);
        let cg_back = CallGraph::build(&pre_back);
        let fresh_back = PointsTo::solve(&pre_back, &cg_back);
        assert_eq!(
            shape(&pre_back, &session.export()),
            shape(&pre_back, &fresh_back),
            "revert {hot}: incremental session diverges from fresh solve"
        );
    }
}

/// Signature-surface change (a function gains a parameter): the session
/// must detect the boundary-shape change and fall back to a counted full
/// re-solve rather than patching incompatible slot tables.
#[test]
fn signature_change_forces_counted_full_resolve() {
    let build = |extra_param: bool| {
        let mut mb = ModuleBuilder::new("sig");
        let widths: Vec<Width> = if extra_param {
            vec![Width::W64, Width::W64]
        } else {
            vec![Width::W64]
        };
        let (callee, mut cb) = mb.function("callee", &widths, Some(Width::W64));
        let p = cb.param(0);
        cb.ret(Some(p));
        mb.finish_function(cb);
        let (_caller, mut rb) = mb.function("caller", &[], None);
        let cell = rb.alloca(8);
        if extra_param {
            let k = rb.const_int(0, Width::W64);
            rb.call(callee, &[cell, k], Some(Width::W64));
        } else {
            rb.call(callee, &[cell], Some(Width::W64));
        }
        rb.ret(None);
        mb.finish_function(rb);
        preprocess(mb.finish(), PreprocessConfig::default())
    };
    let pre0 = build(false);
    let mut session = PointsToSession::new(&pre0);
    let pre1 = build(true);
    let report = session.update(&pre1).clone();
    assert!(report.full_resolve, "signature change must full re-solve");
    let cg = CallGraph::build(&pre1);
    assert_eq!(
        shape(&pre1, &session.export()),
        shape(&pre1, &PointsTo::solve(&pre1, &cg))
    );
}
