//! The paper's two motivating examples (§2.2, Figures 3 and 4), written as
//! IR text and asserted to behave exactly as the paper describes under
//! each sensitivity.

use manta::{Manta, MantaConfig, Sensitivity, TypeQuery, VarClass};
use manta_analysis::{ModuleAnalysis, VarRef};
use manta_clients::{detect_bugs, BugKind, CheckerConfig};
use manta_ir::parser::parse_module;

/// Figure 3: a union instantiated as int64 on one branch and char* on the
/// other, each printed accordingly, with two indirect call sites.
const FIGURE3: &str = r#"
module figure3
extern printf_d, 2, ret
extern printf_s, 2, ret
extern malloc, 1, ret

func tint(1) -> ret {
    salloc r2, 8
    mov r2, r1
    ecall printf_d, 2
    ret
}

func tstr(1) -> ret {
    mov r2, r1
    salloc r1, 8
    ecall printf_s, 2
    ret
}

func branches(2) -> ret {
    salloc r7, 8          ; the union slot v
    brz r2, elsebr
    movi r3, 41
    st.w64 [r7+0], r3     ; v.i = 41
    ld.w64 r4, [r7+0]
    salloc r2, 8
    mov r1, r4
    mov r2, r1
    salloc r1, 8
    ecall printf_d, 2
    lea.f r5, tint
    ld.w64 r1, [r7+0]
    icall r5, 1, ret
    jmp done
elsebr:
    movi r1, 24
    ecall malloc, 1
    st.w64 [r7+0], r0     ; v.s = malloc(..)
    ld.w64 r4, [r7+0]
    mov r2, r4
    salloc r1, 8
    ecall printf_s, 2
    lea.f r6, tstr
    ld.w64 r1, [r7+0]
    icall r6, 1, ret
done:
    ret
}
"#;

fn fig3_analysis() -> ModuleAnalysis {
    let image = manta_isa::assemble(FIGURE3).expect("assembles");
    let module = manta_isa::lift::lift(&image).expect("lifts");
    ModuleAnalysis::build(module)
}

#[test]
fn figure3_flow_insensitive_over_approximates_the_union() {
    let analysis = fig3_analysis();
    let fi = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
    // The values loaded from the union slot merge int64 and char*.
    let f = analysis.module().function_by_name("branches").unwrap();
    let mut loads_over = 0;
    for inst in f.insts() {
        if let manta_ir::InstKind::Load { dst, .. } = inst.kind {
            if fi.class_of(VarRef::new(f.id(), dst)) == VarClass::Over {
                loads_over += 1;
            }
        }
    }
    assert!(
        loads_over >= 2,
        "union loads must be over-approximated under FI"
    );
}

#[test]
fn figure3_full_cascade_types_each_branch() {
    let analysis = fig3_analysis();
    let full = Manta::new(MantaConfig::full()).infer(&analysis);
    let f = analysis.module().function_by_name("branches").unwrap();
    // Each icall's argument resolves per its own branch at the call site.
    let mut precise = Vec::new();
    for inst in f.insts() {
        if let manta_ir::InstKind::Call {
            callee: manta_ir::Callee::Indirect(_),
            args,
            ..
        } = &inst.kind
        {
            let v = VarRef::new(f.id(), args[0]);
            if let Some(t) = full.precise_at(v, inst.id) {
                precise.push(t);
            }
        }
    }
    assert_eq!(
        precise.len(),
        2,
        "both icall args should be precise at their sites"
    );
    assert!(
        precise.iter().any(|t| t.is_numeric()),
        "int branch: {precise:?}"
    );
    assert!(
        precise.iter().any(|t| t.is_pointer()),
        "ptr branch: {precise:?}"
    );
}

/// Figure 4: `parsestr(s, ...)`: s printed in a guard branch, and
/// `pchr = s + offset` dereferenced on the other path — the false NPD the
/// type-based pruning removes.
const FIGURE4: &str = r#"
module figure4
func checkstr(w64) -> w64 {
bb0:
  v0 = load.w8 p0
  ret v0
}

func parsestr(w64, w1) -> w64 {
bb0:
  v0 = alloca 8
  store v0, 0:i64
  condbr p1, bb1, bb2
bb1:
  v1 = phi.w64 [bb0: p0]
  v2 = call.w32 !printf_s(v1, p0)
  ret 0:i64
bb2:
  v3 = mul.w64 2:i64, 3:i64
  store v0, v3
  v4 = load.w64 v0
  v5 = add.w64 p0, v4
  v6 = call.w64 @checkstr(v5)
  ret v6
}
"#;

fn fig4_module() -> manta_ir::Module {
    let mut text = String::from(FIGURE4);
    // Register the extern used above.
    text = text.replace(
        "module figure4",
        "module figure4\nextern printf_s(w64, w64) -> w32",
    );
    parse_module(&text).expect("parses")
}

#[test]
fn figure4_flow_sensitive_alone_misses_the_parameter() {
    let analysis = ModuleAnalysis::build(fig4_module());
    let fs = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fs)).infer(&analysis);
    let full = Manta::new(MantaConfig::full()).infer(&analysis);
    let f = analysis.module().function_by_name("parsestr").unwrap();
    let s = VarRef::new(f.id(), f.params()[0]);
    // The hybrid cascade types `s` as a pointer (the printf_s hint is
    // captured globally even though it sits on the opposite branch).
    let t = full.precise_type(s).expect("hybrid types s");
    assert!(t.is_pointer(), "s should be a pointer, got {t}");
    // Standalone flow-sensitive inference cannot do better than the
    // hybrid: its hint set for `s` is branch-limited.
    assert!(
        fs.precise_type(s).map(|t| t.is_pointer()).unwrap_or(true),
        "FS must not contradict the pointer type"
    );
}

#[test]
fn figure4_type_pruning_removes_the_false_npd() {
    let analysis = ModuleAnalysis::build(fig4_module());
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    let (untyped, _) = detect_bugs(&analysis, None, &[BugKind::Npd], CheckerConfig::default());
    assert!(
        !untyped.is_empty(),
        "without types the 0-offset flows into the dereference (false NPD)"
    );
    let (typed, _) = detect_bugs(
        &analysis,
        Some(&inference as &dyn TypeQuery),
        &[BugKind::Npd],
        CheckerConfig::default(),
    );
    assert!(
        typed.is_empty(),
        "Table 2 pruning removes the offset edge: {typed:?}"
    );
}

/// Serializes the provenance-enabled runs below — they flip a
/// process-global recording switch.
fn prov_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs the full cascade with provenance recording and returns the graph.
fn prov_graph(analysis: &ModuleAnalysis) -> manta::provenance::ProvenanceGraph {
    let engine = manta::Engine::builder()
        .config(MantaConfig::full())
        .provenance(true)
        .build()
        .expect("cacheless engine cannot fail to build");
    let outcome = engine.analyze_explained(analysis);
    manta_telemetry::set_provenance_enabled(false);
    let (_, graph) = outcome.expect("non-strict cannot fail");
    graph.expect("provenance-enabled engine returns a graph")
}

/// `manta explain` acceptance on Figure 3: the union-juggling function's
/// variables carry derivation trees that bottom out at reveal leaves.
#[test]
fn figure3_explain_derives_the_union_variables() {
    let _l = prov_lock();
    let analysis = fig3_analysis();
    let graph = prov_graph(&analysis);
    let module = analysis.module();
    // Sweep the function's printable names (`manta lift` tokens): at
    // least one variable must explain, and at least one must carry a
    // multi-step derivation (a stage fact stacked on reveal leaves).
    let mut explained = 0;
    let mut derived = 0;
    let mut revealed = 0;
    let tokens: Vec<String> = (0..4)
        .map(|n| format!("p{n}"))
        .chain((0..16).map(|n| format!("v{n}")))
        .collect();
    for token in &tokens {
        let Some(v) = manta::provenance::resolve_var(module, "branches", token) else {
            continue;
        };
        if let Some(t) = graph.render_explain(module, v, None) {
            assert!(t.contains(&format!("branches:{token}")), "{t}");
            explained += 1;
            if t.lines().count() >= 2 {
                derived += 1;
            }
            if t.contains("reveal") {
                revealed += 1;
            }
        }
    }
    assert!(explained > 0, "some variable in `branches` must explain");
    assert!(derived > 0, "union loads must carry multi-step derivations");
    assert!(
        revealed > 0,
        "some chain must bottom out at a revealing site (the printf hints)"
    );
}

/// `manta explain` acceptance on Figure 4: `parsestr`'s string parameter
/// (the variable the false NPD hinges on) explains down to the
/// `printf_s` reveal even though the hint sits on the opposite branch.
#[test]
fn figure4_explain_derives_the_parsestr_argument() {
    let _l = prov_lock();
    let analysis = ModuleAnalysis::build(fig4_module());
    let graph = prov_graph(&analysis);
    let module = analysis.module();
    let s = manta::provenance::resolve_var(module, "parsestr", "p0").expect("p0 exists");
    let tree = graph
        .render_explain(module, s, None)
        .expect("derivation recorded for s");
    assert!(tree.contains("parsestr:p0"), "{tree}");
    assert!(tree.contains("reveal"), "{tree}");
}
