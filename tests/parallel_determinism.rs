//! Determinism and resilience contracts of intra-module parallelism.
//!
//! The `manta-parallel` pool must be invisible in every output: `infer`
//! at any thread count is bit-identical to the serial run (including
//! `stage_counts`), budget exhaustion degrades to exactly the same tier,
//! and injected worker panics surface as the same structured failures.
//!
//! The pool thread count and the fault plan are process-global, so all
//! tests in this file serialize on one lock.

use std::sync::{Mutex, MutexGuard, PoisonError};

use manta::{InferenceResult, Manta, MantaConfig};
use manta_analysis::{ModuleAnalysis, VarRef};
use manta_resilience::{Budget, BudgetSpec, DegradationKind, Fault, FaultArming, FaultPlan};
use manta_workloads::generator::{generate, GenSpec};
use manta_workloads::{PhenomenonMix, ProjectSpec};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the auto thread count even when a test panics mid-way.
struct ThreadGuard;

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        manta_parallel::set_threads(0);
    }
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ThreadGuard;
    manta_parallel::set_threads(n);
    f()
}

fn program(functions: usize, seed: u64) -> ModuleAnalysis {
    ModuleAnalysis::build(
        generate(&GenSpec {
            name: format!("par_{seed}"),
            functions,
            mix: PhenomenonMix::balanced(),
            seed,
        })
        .module,
    )
}

/// A canonical, exhaustive rendering of an inference result: every
/// variable, site and object interval in a fixed order, plus the
/// per-stage classification counts. Two results with equal dumps are
/// bit-identical for every observable query.
fn dump(analysis: &ModuleAnalysis, r: &InferenceResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("stage_counts: {:?}\n", r.stage_counts));
    out.push_str(&format!("final: {:?}\n", r.final_counts()));
    for d in &r.degradations {
        out.push_str(&format!(
            "degraded: {} kept {} ({:?})\n",
            d.stage, d.completed, d.kind
        ));
    }
    for func in analysis.pre.module.functions() {
        for (value, _) in func.values() {
            let v = VarRef::new(func.id(), value);
            out.push_str(&format!(
                "{:?}:{value:?} = {:?} / {:?}\n",
                func.id(),
                r.interval(v),
                r.class_of(v),
            ));
            for inst in func.insts() {
                if let Some(iv) = r.interval_at(v, inst.id) {
                    out.push_str(&format!("  @{:?}: {iv:?}\n", inst.id));
                }
            }
        }
    }
    for (o, kind) in analysis.pointsto.objects() {
        if let Some(iv) = r.obj_interval(o) {
            out.push_str(&format!("{kind:?} = {iv:?}\n"));
        }
    }
    out
}

#[test]
fn infer_is_bit_identical_across_thread_counts() {
    let _l = lock();
    let analysis = program(40, 0x0DD5);
    let manta = Manta::new(MantaConfig::full());
    let serial = with_threads(1, || manta.infer(&analysis));
    for threads in [2, 8] {
        let parallel = with_threads(threads, || manta.infer(&analysis));
        assert_eq!(
            serial.stage_counts, parallel.stage_counts,
            "stage_counts diverge at {threads} threads"
        );
        assert_eq!(
            dump(&analysis, &serial),
            dump(&analysis, &parallel),
            "inference output diverges at {threads} threads"
        );
    }
}

#[test]
fn budget_exhaustion_degrades_identically_under_the_pool() {
    let _l = lock();
    let analysis = program(12, 0xB0D6);
    let engine = manta::Engine::new(MantaConfig::full());
    // Sweep fuel levels so exhaustion lands in different stages; each
    // level must cut the cascade at the same tier regardless of the
    // thread count, with the surviving maps bit-identical.
    for fuel in [0, 60, 600, 6_000, 60_000] {
        let serial = with_threads(1, || {
            engine
                .analyze_with_budget(&analysis, &Budget::with_fuel(fuel))
                .expect("non-strict analyze cannot fail")
        });
        let pooled = with_threads(4, || {
            engine
                .analyze_with_budget(&analysis, &Budget::with_fuel(fuel))
                .expect("non-strict analyze cannot fail")
        });
        let tiers = |r: &InferenceResult| {
            r.degradations
                .iter()
                .map(|d| (d.stage.clone(), d.completed.clone(), d.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(tiers(&serial), tiers(&pooled), "fuel {fuel}");
        assert_eq!(
            dump(&analysis, &serial),
            dump(&analysis, &pooled),
            "degraded output diverges at fuel {fuel}"
        );
    }
}

#[test]
fn injected_worker_panic_is_isolated_with_four_pool_threads() {
    let _l = lock();
    // Project builds run on pool workers; the armed panic fires inside
    // one worker and must surface as that project's structured failure
    // (with its degradation record) while its siblings complete.
    let specs: Vec<ProjectSpec> = ["north", "east", "south", "west"]
        .iter()
        .enumerate()
        .map(|(i, name)| ProjectSpec {
            name: (*name).to_string(),
            kloc: 1.0,
            functions: 4,
            mix: PhenomenonMix::balanced(),
            seed: 77 + i as u64,
        })
        .collect();
    let _guard = FaultPlan::new()
        .arm("eval.project:east", Fault::Panic, FaultArming::Always)
        .install();
    let load = with_threads(4, || {
        manta_eval::load_specs_checked(specs, BudgetSpec::default())
    });
    assert_eq!(load.projects.len(), 3, "north, south and west must survive");
    assert_eq!(load.failures.len(), 1, "the panic must not be lost");
    assert_eq!(load.failures[0].name, "east");
    assert_eq!(
        load.failures[0].degradation.kind,
        DegradationKind::InjectedFault
    );
    // Survivors come back in spec order despite out-of-order completion.
    let names: Vec<&str> = load.projects.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["north", "south", "west"]);
}

#[test]
fn eval_budget_exhaustion_under_the_pool_loses_no_records() {
    let _l = lock();
    let specs: Vec<ProjectSpec> = (0..6)
        .map(|i| ProjectSpec {
            name: format!("p{i}"),
            kloc: 1.0,
            functions: 3,
            mix: PhenomenonMix::balanced(),
            seed: 900 + i as u64,
        })
        .collect();
    let zero_fuel = BudgetSpec {
        fuel: Some(0),
        deadline_ms: None,
    };
    let load = with_threads(4, || manta_eval::load_specs_checked(specs, zero_fuel));
    assert!(load.projects.is_empty(), "zero fuel fails every project");
    assert_eq!(load.failures.len(), 6, "every failure keeps its record");
    let names: Vec<&str> = load.failures.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["p0", "p1", "p2", "p3", "p4", "p5"]);
}
