//! Differential tests of the x86-64 frontend against SB-ISA.
//!
//! The dual emitter ([`manta_workloads::emit_dual`]) lowers one generated
//! IR module to *both* machine encodings from a single decision sequence.
//! These tests pin the property that makes the x86 frontend trustworthy:
//! lifting either encoding reconstructs bit-identical IR, and therefore
//! the whole engine — every sensitivity tier, at every thread count —
//! produces bit-identical inferred types from either binary.
//!
//! Alongside the differential sweep: a seeded decoder fuzz (arbitrary
//! bytes must never panic the decoder, and everything that decodes from
//! real code must re-encode to the same bytes), and hand-written x86
//! assembly exercising the three lifter-specific idioms — eflags
//! materialization at `jcc`, sub-register masking, and `rbp` frame-slot
//! recognition.

use std::sync::{Mutex, MutexGuard, PoisonError};

use manta::cache::results_identical;
use manta::{Engine, MantaConfig, Sensitivity};
use manta_analysis::ModuleAnalysis;
use manta_ir::printer::print_module;
use manta_ir::{Frontend, Module};
use manta_workloads::generator::GenSpec;
use manta_workloads::rng::ChaCha8Rng;
use manta_workloads::{generate, PhenomenonMix};

const SENSITIVITIES: [Sensitivity; 5] = [
    Sensitivity::Fi,
    Sensitivity::Fs,
    Sensitivity::FiFs,
    Sensitivity::FiCsFs,
    Sensitivity::FiFsCs,
];

fn spec(functions: usize, seed: u64) -> GenSpec {
    GenSpec {
        name: format!("fe_{seed}"),
        functions,
        mix: PhenomenonMix::balanced(),
        seed,
    }
}

/// Encodes a generated module both ways and lifts each container back
/// through its registered frontend (bytes in, module out — the same path
/// the CLI takes).
fn lift_both(module: &Module) -> (Module, Module) {
    let dual = manta_workloads::emit_dual(module).expect("generated module lowers");
    let sb_bytes = dual.sb_bytes();
    let x86_bytes = dual.x86_bytes();
    let sb_fe = manta_isa::lift::SbFrontend;
    let x86_fe = manta_x86::X86Frontend;
    assert!(sb_fe.detects(&sb_bytes) && !sb_fe.detects(&x86_bytes));
    assert!(x86_fe.detects(&x86_bytes) && !x86_fe.detects(&sb_bytes));
    (
        sb_fe.lift_bytes(&sb_bytes).expect("sb lift"),
        x86_fe.lift_bytes(&x86_bytes).expect("x86 lift"),
    )
}

// ---------------------------------------------------------------------------
// Decoder fuzz.
// ---------------------------------------------------------------------------

/// 500 seeded buffers of arbitrary bytes: the decoder must reject or
/// accept, never panic, and whatever `decode_all` accepts must re-encode
/// to exactly the input bytes.
#[test]
fn decoder_never_panics_on_500_seeds_of_garbage() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xFEED_FACE);
    for _ in 0..500 {
        let len = rng.gen_range(0..64usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        let _ = manta_x86::decode_one(&bytes);
        if let Ok(insts) = manta_x86::decode_all(&bytes) {
            let mut re = Vec::with_capacity(bytes.len());
            for (inst, _, _) in &insts {
                manta_x86::encode(inst, &mut re);
            }
            assert_eq!(re, bytes, "accepted bytes must re-encode identically");
        }
    }
}

/// Valid machine code (every function body the dual emitter produces
/// across many seeds) decodes, and re-encodes byte-identically.
#[test]
fn real_code_decodes_and_reencodes_byte_identically() {
    for seed in 0..40 {
        let prog = generate(&spec(4, 1000 + seed));
        let dual = prog.encode_dual().expect("generated module lowers");
        for f in &dual.x86.functions {
            let code = &dual.x86.text[f.offset as usize..(f.offset + f.len) as usize];
            let insts = manta_x86::decode_all(code).expect("emitted code decodes");
            let mut re = Vec::with_capacity(code.len());
            for (inst, _, _) in &insts {
                manta_x86::encode(inst, &mut re);
            }
            assert_eq!(re, code, "fn {}: decode/encode must round-trip", f.name);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential lift + inference.
// ---------------------------------------------------------------------------

/// The core differential sweep: 220 seeded programs, each emitted in both
/// encodings, must lift to bit-identical IR text.
#[test]
fn lifted_ir_is_bit_identical_across_220_seeds() {
    for seed in 0..220u64 {
        let prog = generate(&spec(4, seed));
        let (sb, x86) = lift_both(&prog.module);
        assert_eq!(
            print_module(&sb),
            print_module(&x86),
            "seed {seed}: lifted IR diverges between encodings"
        );
    }
}

/// 200 seeds through the full-sensitivity engine: the inference results
/// (canonical encoding, including degradation records) must be
/// bit-identical between the SB-lifted and x86-lifted module.
#[test]
fn inferred_types_are_bit_identical_across_200_seeds() {
    let engine = Engine::new(MantaConfig::full());
    for seed in 0..200u64 {
        let prog = generate(&spec(3, 7000 + seed));
        let (sb, x86) = lift_both(&prog.module);
        let a = engine.analyze(&ModuleAnalysis::build(sb)).unwrap();
        let b = engine.analyze(&ModuleAnalysis::build(x86)).unwrap();
        assert!(
            results_identical(&a, &b),
            "seed {seed}: inferred types diverge between encodings"
        );
    }
}

/// A smaller sweep through every sensitivity tier, including the
/// reversed-cascade ablation.
#[test]
fn every_sensitivity_tier_agrees_between_encodings() {
    for seed in [3, 17, 40, 77, 123, 180, 501, 999] {
        let prog = generate(&spec(4, seed));
        let (sb, x86) = lift_both(&prog.module);
        let sb = ModuleAnalysis::build(sb);
        let x86 = ModuleAnalysis::build(x86);
        for sens in SENSITIVITIES {
            let engine = Engine::new(MantaConfig::with_sensitivity(sens));
            let a = engine.analyze(&sb).unwrap();
            let b = engine.analyze(&x86).unwrap();
            assert!(
                results_identical(&a, &b),
                "seed {seed}, {sens:?}: inferred types diverge"
            );
        }
    }
}

/// Serializes tests that flip the process-global pool size.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the auto thread count even when an assertion panics.
struct ThreadGuard;

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        manta_parallel::set_threads(0);
    }
}

/// Thread-count invariance composed with encoding invariance: one result
/// per (encoding, thread count) cell, all six bit-identical.
#[test]
fn encodings_agree_at_every_thread_count() {
    let _l = lock();
    let _restore = ThreadGuard;
    let engine = Engine::new(MantaConfig::full());
    for seed in [11, 222, 3333] {
        let prog = generate(&spec(4, seed));
        let (sb, x86) = lift_both(&prog.module);
        let sb = ModuleAnalysis::build(sb);
        let x86 = ModuleAnalysis::build(x86);
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            manta_parallel::set_threads(threads);
            results.push((threads, engine.analyze(&sb).unwrap()));
            results.push((threads, engine.analyze(&x86).unwrap()));
        }
        let (_, first) = &results[0];
        for (threads, r) in &results[1..] {
            assert!(
                results_identical(first, r),
                "seed {seed}: divergence at {threads} threads"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Hand-written x86 idioms.
// ---------------------------------------------------------------------------

/// eflags at `jcc`: the compare only materializes as an SSA boolean at
/// the consuming branch, with the fallthrough-inverted predicate.
#[test]
fn jcc_materializes_the_compare_at_the_branch() {
    let asm = "\
module handjcc
func max(2) -> ret {
    mov rax, rdi
    cmp rdi, rsi
    jge done
    mov rax, rsi
done:
    ret
}
";
    let img = manta_x86::assemble(asm).unwrap();
    let module = manta_x86::lift(&img).unwrap();
    let text = print_module(&module);
    // `jge done` falls through when rdi < rsi: the materialized compare
    // carries the fallthrough predicate and feeds the condbr directly.
    assert!(text.contains("cmp.lt"), "{text}");
    assert!(text.contains("condbr"), "{text}");
    // The typed engine still sees an ordinary two-parameter function.
    let analysis = ModuleAnalysis::build(module);
    let r = Engine::new(MantaConfig::full()).analyze(&analysis).unwrap();
    assert_eq!(r.degradations.len(), 0);
}

/// Sub-register writes (`mov eax, edi`, `dword` loads) become explicit
/// width masks in the IR rather than silently widening.
#[test]
fn sub_register_moves_mask_explicitly() {
    let asm = "\
module handsub
func trunc(1) -> ret {
    push rbp
    mov rbp, rsp
    sub rsp, 8
    mov dword [rbp-8], edi
    mov eax, edi
    mov ecx, dword [rbp-8]
    add rax, rcx
    mov rsp, rbp
    pop rbp
    ret
}
";
    let img = manta_x86::assemble(asm).unwrap();
    let module = manta_x86::lift(&img).unwrap();
    let text = print_module(&module);
    assert!(text.contains("and"), "32-bit mov must mask: {text}");
    assert!(text.contains("load.w32"), "dword load keeps width: {text}");
}

/// `rbp`-relative locals: prologue/epilogue disappear, each distinct slot
/// becomes its own alloca sized by its neighbors.
#[test]
fn rbp_locals_become_sized_allocas() {
    let asm = "\
module handframe
func locals(1) -> ret {
    push rbp
    mov rbp, rsp
    sub rsp, 24
    lea rax, [rbp-8]
    mov qword [rax], rdi
    lea rcx, [rbp-24]
    mov qword [rcx+8], rdi
    mov rax, qword [rbp-8]
    mov rsp, rbp
    pop rbp
    ret
}
";
    let img = manta_x86::assemble(asm).unwrap();
    let module = manta_x86::lift(&img).unwrap();
    let text = print_module(&module);
    // Two lea roots -> two slots: 8 bytes at rbp-8, 16 bytes at rbp-24.
    assert!(text.contains("alloca 8"), "{text}");
    assert!(text.contains("alloca 16"), "{text}");
    // No rsp/rbp traffic survives into the IR.
    assert!(!text.contains("rsp") && !text.contains("rbp"), "{text}");
}

/// `movsx` feeding arithmetic (not just a load): the register form lifts
/// as the shift-up/shift-down pair, never a mask — sign extension is not
/// `and` — and the extended value reaches the `add` as an operand.
#[test]
fn movsx_feeding_arithmetic_lifts_as_a_shift_pair() {
    let asm = "\
module handsext
func widen(2) -> ret {
    movsx rax, dil
    add rax, rsi
    ret
}
";
    let img = manta_x86::assemble(asm).unwrap();
    let module = manta_x86::lift(&img).unwrap();
    let text = print_module(&module);
    assert!(text.contains("shl"), "movsx must shift up: {text}");
    assert!(text.contains("shr"), "movsx must shift back down: {text}");
    assert!(
        !text.contains("and."),
        "sign extension must not lift as a mask: {text}"
    );
    // The lifted module still analyzes cleanly end to end.
    let analysis = ModuleAnalysis::build(module);
    let r = Engine::new(MantaConfig::full()).analyze(&analysis).unwrap();
    assert_eq!(r.degradations.len(), 0);
}

/// Dual-emitter coverage for the same idiom: an IR module carrying
/// `(p << 56) >> 56` into arithmetic lowers to `movsx` on x86 and a
/// shift pair on SB, and both encodings lift to bit-identical IR — so
/// every sensitivity tier infers bit-identical types from either binary.
#[test]
fn sign_extension_idiom_agrees_between_encodings() {
    use manta_ir::{BinOp, ModuleBuilder, Width};
    let mut mb = ModuleBuilder::new("sextdual");
    let (_, mut fb) = mb.function("widen", &[Width::W64, Width::W64], Some(Width::W64));
    let p = fb.param(0);
    let q = fb.param(1);
    let c = fb.const_int(56, Width::W64);
    let hi = fb.binop(BinOp::Shl, p, c, Width::W64);
    let lo = fb.binop(BinOp::Shr, hi, c, Width::W64);
    let sum = fb.binop(BinOp::Add, lo, q, Width::W64);
    fb.ret(Some(sum));
    mb.finish_function(fb);
    let module = mb.finish();
    let (sb, x86) = lift_both(&module);
    assert_eq!(print_module(&sb), print_module(&x86));
    let sb = ModuleAnalysis::build(sb);
    let x86 = ModuleAnalysis::build(x86);
    for sens in SENSITIVITIES {
        let engine = Engine::new(MantaConfig::with_sensitivity(sens));
        let a = engine.analyze(&sb).unwrap();
        let b = engine.analyze(&x86).unwrap();
        assert!(
            results_identical(&a, &b),
            "{sens:?}: sext idiom diverges between encodings"
        );
    }
}
