//! Property-based tests spanning crates: text/bytes roundtrips on
//! generated programs, lattice laws exercised through the inference, and
//! metric identities.
//!
//! `proptest` is unavailable offline; the same properties run over a
//! deterministic seeded type/program stream instead (the workload RNG,
//! so every failure reproduces from its printed seed).

use manta::{Manta, MantaConfig, Sensitivity};
use manta_analysis::ModuleAnalysis;
use manta_ir::{parser::parse_module, printer::print_module, Type, Width};
use manta_workloads::rng::ChaCha8Rng;
use manta_workloads::{generator, PhenomenonMix};

/// An arbitrary type of bounded depth, mirroring the old proptest
/// strategy: leaves plus recursive pointer/array/object constructors.
fn arb_type(rng: &mut ChaCha8Rng, depth: usize) -> Type {
    let leaves = [
        Type::Top,
        Type::Bottom,
        Type::Int(Width::W8),
        Type::Int(Width::W32),
        Type::Int(Width::W64),
        Type::Float,
        Type::Double,
        Type::Num(Width::W32),
        Type::Num(Width::W64),
        Type::Reg(Width::W64),
    ];
    if depth == 0 || rng.gen_bool(0.4) {
        return leaves[rng.gen_range(0..leaves.len())].clone();
    }
    match rng.gen_range(0..3) {
        0 => Type::ptr(arb_type(rng, depth - 1)),
        1 => Type::array(arb_type(rng, depth - 1), rng.gen_range(1..8u64)),
        _ => {
            let n = rng.gen_range(0..3usize);
            Type::object(
                (0..n)
                    .map(|_| (rng.gen_range(0..4u64) * 8, arb_type(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// Lattice laws: join/meet are commutative, idempotent, bounded, and
/// consistent with subtyping.
#[test]
fn lattice_laws() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x1a77);
    for case in 0..256 {
        let a = arb_type(&mut rng, 3);
        let b = arb_type(&mut rng, 3);
        assert_eq!(a.join(&b), b.join(&a), "case {case}");
        assert_eq!(a.meet(&b), b.meet(&a), "case {case}");
        assert_eq!(a.join(&a), a.clone(), "case {case}");
        assert_eq!(a.meet(&a), a.clone(), "case {case}");
        assert_eq!(a.join(&Type::Bottom), a.clone(), "case {case}");
        assert_eq!(a.meet(&Type::Top), a.clone(), "case {case}");
        assert_eq!(a.join(&Type::Top), Type::Top, "case {case}");
        assert_eq!(a.meet(&Type::Bottom), Type::Bottom, "case {case}");
        // join is an upper bound, meet a lower bound.
        let j = a.join(&b);
        assert!(a.is_subtype_of(&j), "case {case}: a {} !<: join {}", a, j);
        assert!(b.is_subtype_of(&j), "case {case}: b {} !<: join {}", b, j);
        let m = a.meet(&b);
        assert!(m.is_subtype_of(&a), "case {case}: meet {} !<: a {}", m, a);
        assert!(m.is_subtype_of(&b), "case {case}: meet {} !<: b {}", m, b);
    }
}

/// Subtyping is reflexive and transitive through join.
#[test]
fn subtyping_partial_order() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x2b88);
    for case in 0..256 {
        let a = arb_type(&mut rng, 3);
        let b = arb_type(&mut rng, 3);
        let c = arb_type(&mut rng, 3);
        assert!(a.is_subtype_of(&a), "case {case}");
        if a.is_subtype_of(&b) && b.is_subtype_of(&c) {
            assert!(
                a.is_subtype_of(&c),
                "case {case}: transitivity: {} <: {} <: {}",
                a,
                b,
                c
            );
        }
    }
}

/// Generated programs survive a textual print → parse → print fixpoint
/// and stay verifier-clean.
#[test]
fn generated_ir_text_roundtrip() {
    for seed in 0..32u64 {
        let g = generator::generate(&generator::GenSpec {
            name: "prop".into(),
            functions: 2 + (seed as usize % 8),
            mix: PhenomenonMix::balanced(),
            seed,
        });
        let p1 = print_module(&g.module);
        let parsed = parse_module(&p1).expect("printer output parses");
        manta_ir::verify::verify_module(&parsed).expect("parsed module verifies");
        assert_eq!(p1, print_module(&parsed), "seed {seed}");
    }
}

/// Inference is deterministic and classification counts are consistent
/// with the variable population for every sensitivity.
#[test]
fn inference_deterministic_and_counts_consistent() {
    for seed in 0..16u64 {
        let build = || {
            let g = generator::generate(&generator::GenSpec {
                name: "prop".into(),
                functions: 6,
                mix: PhenomenonMix::balanced(),
                seed,
            });
            ModuleAnalysis::build(g.module)
        };
        let (a1, a2) = (build(), build());
        for s in Sensitivity::ALL {
            let r1 = Manta::new(MantaConfig::with_sensitivity(s)).infer(&a1);
            let r2 = Manta::new(MantaConfig::with_sensitivity(s)).infer(&a2);
            assert_eq!(r1.final_counts(), r2.final_counts(), "seed {seed} {s:?}");
            let non_const: usize = a1
                .module()
                .functions()
                .map(|f| {
                    f.values()
                        .filter(|(_, d)| !matches!(d.kind, manta_ir::ValueKind::Const(_)))
                        .count()
                })
                .sum();
            assert_eq!(r1.final_counts().total(), non_const, "seed {seed} {s:?}");
        }
    }
}

/// The hybrid cascade never classifies fewer variables precisely than
/// plain flow-insensitive inference on the same program.
#[test]
fn cascade_never_loses_precise_count_overall() {
    for seed in 0..16u64 {
        let g = generator::generate(&generator::GenSpec {
            name: "prop".into(),
            functions: 8,
            mix: PhenomenonMix::balanced(),
            seed,
        });
        let analysis = ModuleAnalysis::build(g.module);
        let fi = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
        let full = Manta::new(MantaConfig::full()).infer(&analysis);
        assert!(
            full.final_counts().precise >= fi.final_counts().precise,
            "seed {seed}: {:?} < {:?}",
            full.final_counts(),
            fi.final_counts()
        );
    }
}

/// SBF images roundtrip through bytes for arbitrary generated programs
/// expressed in SB-ISA (via the assembler sample corpus).
#[test]
fn sbf_bytes_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    for case in 0..24 {
        let nfn = rng.gen_range(1..4usize);
        let imm = rng.gen_range(-1000..1000i64);
        let mut text = String::from("module prop\nextern malloc, 1, ret\n");
        for i in 0..nfn {
            text.push_str(&format!(
                "func f{i}(1) -> ret {{\n    movi r2, {imm}\n    add r0, r1, r2\n    brz r0, out\n    mul r0, r0, r2\nout:\n    ret\n}}\n"
            ));
        }
        let img = manta_isa::assemble(&text).expect("assembles");
        let bytes = manta_isa::encode(&img);
        let back = manta_isa::decode(&bytes).expect("decodes");
        assert_eq!(&img, &back, "case {case}");
        let lifted = manta_isa::lift::lift(&back).expect("lifts");
        manta_ir::verify::verify_module(&lifted).expect("verifies");
    }
}
