//! Property-based tests spanning crates: text/bytes roundtrips on
//! generated programs, lattice laws exercised through the inference, and
//! metric identities.

use proptest::prelude::*;

use manta::{Manta, MantaConfig, Sensitivity};
use manta_analysis::ModuleAnalysis;
use manta_ir::{parser::parse_module, printer::print_module, Type, Width};
use manta_workloads::{generator, PhenomenonMix};

fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Top),
        Just(Type::Bottom),
        Just(Type::Int(Width::W8)),
        Just(Type::Int(Width::W32)),
        Just(Type::Int(Width::W64)),
        Just(Type::Float),
        Just(Type::Double),
        Just(Type::Num(Width::W32)),
        Just(Type::Num(Width::W64)),
        Just(Type::Reg(Width::W64)),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Type::ptr),
            (inner.clone(), 1u64..8).prop_map(|(t, n)| Type::array(t, n)),
            prop::collection::vec((0u64..4, inner), 0..3)
                .prop_map(|fields| Type::object(fields.into_iter().map(|(o, t)| (o * 8, t)).collect())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lattice laws: join/meet are commutative, idempotent, bounded, and
    /// consistent with subtyping.
    #[test]
    fn lattice_laws(a in arb_type(), b in arb_type()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.meet(&b), b.meet(&a));
        prop_assert_eq!(a.join(&a), a.clone());
        prop_assert_eq!(a.meet(&a), a.clone());
        prop_assert_eq!(a.join(&Type::Bottom), a.clone());
        prop_assert_eq!(a.meet(&Type::Top), a.clone());
        prop_assert_eq!(a.join(&Type::Top), Type::Top);
        prop_assert_eq!(a.meet(&Type::Bottom), Type::Bottom);
        // join is an upper bound, meet a lower bound.
        let j = a.join(&b);
        prop_assert!(a.is_subtype_of(&j), "a {} !<: join {}", a, j);
        prop_assert!(b.is_subtype_of(&j), "b {} !<: join {}", b, j);
        let m = a.meet(&b);
        prop_assert!(m.is_subtype_of(&a), "meet {} !<: a {}", m, a);
        prop_assert!(m.is_subtype_of(&b), "meet {} !<: b {}", m, b);
    }

    /// Subtyping is reflexive and transitive through join.
    #[test]
    fn subtyping_partial_order(a in arb_type(), b in arb_type(), c in arb_type()) {
        prop_assert!(a.is_subtype_of(&a));
        if a.is_subtype_of(&b) && b.is_subtype_of(&c) {
            prop_assert!(a.is_subtype_of(&c), "transitivity: {} <: {} <: {}", a, b, c);
        }
    }

    /// Generated programs survive a textual print → parse → print fixpoint
    /// and stay verifier-clean.
    #[test]
    fn generated_ir_text_roundtrip(seed in 0u64..64, functions in 2usize..10) {
        let g = generator::generate(&generator::GenSpec {
            name: "prop".into(),
            functions,
            mix: PhenomenonMix::balanced(),
            seed,
        });
        let p1 = print_module(&g.module);
        let parsed = parse_module(&p1).expect("printer output parses");
        manta_ir::verify::verify_module(&parsed).expect("parsed module verifies");
        prop_assert_eq!(p1, print_module(&parsed));
    }

    /// Inference is deterministic and classification counts are consistent
    /// with the variable population for every sensitivity.
    #[test]
    fn inference_deterministic_and_counts_consistent(seed in 0u64..32) {
        let build = || {
            let g = generator::generate(&generator::GenSpec {
                name: "prop".into(),
                functions: 6,
                mix: PhenomenonMix::balanced(),
                seed,
            });
            ModuleAnalysis::build(g.module)
        };
        let (a1, a2) = (build(), build());
        for s in Sensitivity::ALL {
            let r1 = Manta::new(MantaConfig::with_sensitivity(s)).infer(&a1);
            let r2 = Manta::new(MantaConfig::with_sensitivity(s)).infer(&a2);
            prop_assert_eq!(r1.final_counts(), r2.final_counts());
            let non_const: usize = a1
                .module()
                .functions()
                .map(|f| {
                    f.values()
                        .filter(|(_, d)| !matches!(d.kind, manta_ir::ValueKind::Const(_)))
                        .count()
                })
                .sum();
            prop_assert_eq!(r1.final_counts().total(), non_const);
        }
    }

    /// The hybrid cascade never classifies fewer variables precisely than
    /// plain flow-insensitive inference on the same program.
    #[test]
    fn cascade_never_loses_precise_count_overall(seed in 0u64..16) {
        let g = generator::generate(&generator::GenSpec {
            name: "prop".into(),
            functions: 8,
            mix: PhenomenonMix::balanced(),
            seed,
        });
        let analysis = ModuleAnalysis::build(g.module);
        let fi = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
        let full = Manta::new(MantaConfig::full()).infer(&analysis);
        prop_assert!(full.final_counts().precise >= fi.final_counts().precise);
    }

    /// SBF images roundtrip through bytes for arbitrary generated programs
    /// expressed in SB-ISA (via the assembler sample corpus).
    #[test]
    fn sbf_bytes_roundtrip(nfn in 1usize..4, imm in -1000i64..1000) {
        let mut text = String::from("module prop\nextern malloc, 1, ret\n");
        for i in 0..nfn {
            text.push_str(&format!(
                "func f{i}(1) -> ret {{\n    movi r2, {imm}\n    add r0, r1, r2\n    brz r0, out\n    mul r0, r0, r2\nout:\n    ret\n}}\n"
            ));
        }
        let img = manta_isa::assemble(&text).expect("assembles");
        let bytes = manta_isa::encode(&img);
        let back = manta_isa::decode(&bytes).expect("decodes");
        prop_assert_eq!(&img, &back);
        let lifted = manta_isa::lift::lift(&back).expect("lifts");
        manta_ir::verify::verify_module(&lifted).expect("verifies");
    }
}
